"""Tests for the workload drivers (AB, FTP bench, SSH suite, holders)."""

import pytest

from repro.bench.harness import boot_server
from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.holders import ConnectionHolder
from repro.workloads.sshsuite import SshSuite


class TestApacheBench:
    def test_completes_all_requests(self):
        world = boot_server("nginx")
        bench = ApacheBench(8081, requests=40, concurrency=4)
        elapsed_ns = bench.run(world.kernel)
        assert bench.completed == 40
        assert bench.errors == 0
        assert elapsed_ns > 0
        assert len(bench.latencies_ns) == 40

    def test_latencies_positive(self):
        world = boot_server("httpd")
        bench = ApacheBench(80, requests=20, concurrency=2)
        bench.run(world.kernel)
        assert all(latency > 0 for latency in bench.latencies_ns)

    def test_connection_refused_counts_errors(self, kernel):
        bench = ApacheBench(5999, requests=10, concurrency=2)
        bench.run(kernel, max_steps=200_000)
        assert bench.errors > 0 and bench.completed == 0


class TestFtpBench:
    def test_all_users_complete(self):
        world = boot_server("vsftpd")
        bench = FtpBench(users=4, retrievals=2)
        bench.run(world.kernel)
        assert bench.completed == 8
        assert bench.errors == 0

    def test_sessions_forked_per_user(self):
        world = boot_server("vsftpd")
        bench = FtpBench(users=3, retrievals=1)
        bench.run(world.kernel)
        sessions = [
            p for p in world.kernel.processes.values() if p.name == "vsftpd-session"
        ]
        assert len(sessions) == 3


class TestSshSuite:
    def test_all_sessions_complete(self):
        world = boot_server("opensshd")
        suite = SshSuite(sessions=3, commands=2)
        suite.run(world.kernel)
        assert suite.completed == 6
        assert suite.errors == 0

    def test_helpers_exec_and_exit(self):
        world = boot_server("opensshd")
        suite = SshSuite(sessions=2, commands=1)
        suite.run(world.kernel)
        helpers = [
            p for p in world.kernel.processes.values() if p.name == "ssh-helper"
        ]
        assert helpers and all(p.exited for p in helpers)


class TestConnectionHolder:
    @pytest.mark.parametrize("server,kind", [
        ("nginx", "http"), ("vsftpd", "ftp"), ("opensshd", "ssh"),
    ])
    def test_establish_and_release(self, server, kind):
        world = boot_server(server)
        holder = ConnectionHolder(world.port, 3, kind)
        holder.establish(world.kernel)
        assert holder.ready == 3 and holder.errors == 0
        holder.finish(world.kernel)
        assert all(c.exited for c in holder.clients)

    def test_ftp_holders_fork_sessions(self):
        world = boot_server("vsftpd")
        holder = ConnectionHolder(21, 2, "ftp")
        holder.establish(world.kernel)
        live_sessions = [
            p
            for p in world.session.root_process.tree()
            if p.name == "vsftpd-session"
        ]
        assert len(live_sessions) == 2
        holder.finish(world.kernel)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConnectionHolder(80, 1, "gopher")
