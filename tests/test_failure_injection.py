"""Failure injection: updates must be atomic under arbitrary failures.

Paper §3: "Failure to complete the restart phase due to arbitrary run-time
errors simply causes the new version to terminate and the old version to
resume execution from the checkpoint, yielding an atomic and reversible
update strategy that hides any live update and rollback event to the
clients."  These tests inject failures at each stage and assert exactly
that — plus that rollback leaks nothing (processes, ports, listener
refcounts).
"""

import pytest

from repro.errors import ConflictError, SimError, StateTransferError
from repro.kernel import Kernel, sim_function
from repro.mcr.config import MCRConfig
from repro.mcr.controller import LiveUpdateController
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import FaultPlan
from repro.mcr import controller as controller_module
from repro.mcr.tracing.transfer import StateTransfer
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import connect_with_retry, recv_line


def _boot(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    return program, session, root


def _serve_one(kernel, command, expected_prefix):
    replies = []

    @sim_function
    def client(sys):
        fd = yield from connect_with_retry(sys, 8080)
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
        yield from sys.close(fd)

    kernel.spawn_process(client)
    kernel.run(max_steps=300_000, until=lambda: bool(replies))
    assert replies and replies[0].startswith(expected_prefix), replies
    return replies[0]


def _world_snapshot(kernel, root):
    return {
        "live_processes": len(kernel.live_processes()),
        "ports": set(kernel.net._listeners),
        "root_fds": root.fdtable.fds(),
    }


class _FailingTransfer(StateTransfer):
    """StateTransfer that blows up midway through the content pass."""

    def _transfer_object(self, record, new_base, old_proc, new_proc, translate, stats):
        if stats.objects_transferred >= 1:
            raise StateTransferError("injected: shared-memory channel died")
        return super()._transfer_object(
            record, new_base, old_proc, new_proc, translate, stats
        )


class TestInjectedFailures:
    def test_failure_during_state_transfer_rolls_back(self, kernel, monkeypatch):
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 6", "ok 1")
        before = _world_snapshot(kernel, root)
        monkeypatch.setattr(controller_module, "StateTransfer", _FailingTransfer)
        controller = LiveUpdateController(kernel, session, simple.make_program(2))
        result = controller.run_update()
        assert result.rolled_back
        assert isinstance(result.error, StateTransferError)
        # The old version resumes and serves with its state intact.
        assert _serve_one(kernel, "sum", "sum 6") == "sum 6"
        after = _world_snapshot(kernel, root)
        assert after["live_processes"] == before["live_processes"]
        assert after["ports"] == before["ports"]
        assert after["root_fds"] == before["root_fds"]

    def test_failure_during_restart_rolls_back(self, kernel, monkeypatch):
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 3", "ok 1")

        def exploding_restart(self, plan):
            raise SimError("injected: restart environment broken")

        monkeypatch.setattr(LiveUpdateController, "_restart", exploding_restart)
        result = LiveUpdateController(kernel, session, simple.make_program(2)).run_update()
        assert result.rolled_back
        assert _serve_one(kernel, "sum", "sum 3") == "sum 3"

    def test_failure_during_offline_analysis_rolls_back(self, kernel, monkeypatch):
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 9", "ok 1")

        def exploding_analysis(self):
            raise SimError("injected: analysis crashed")

        monkeypatch.setattr(
            LiveUpdateController, "_offline_analysis", exploding_analysis
        )
        result = LiveUpdateController(kernel, session, simple.make_program(2)).run_update()
        assert result.rolled_back
        assert _serve_one(kernel, "sum", "sum 9") == "sum 9"

    def test_repeated_failed_updates_do_not_degrade_v1(self, kernel, monkeypatch):
        """Three consecutive rollbacks; v1 state and resources intact."""
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 5", "ok 1")
        before = _world_snapshot(kernel, root)
        kernel.fs.create("/etc/simple.conf", b"9999")  # forces replay conflict
        ctl = McrCtl(kernel, session)
        for _ in range(3):
            result = ctl.live_update(simple.make_program(2))
            assert result.rolled_back
        kernel.fs.create("/etc/simple.conf", b"8080")
        assert _serve_one(kernel, "sum", "sum 5") == "sum 5"
        after = _world_snapshot(kernel, root)
        assert after == before

    def test_successful_update_after_failed_attempt(self, kernel):
        """Rollback must leave the startup log replayable for retries."""
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 2", "ok 1")
        ctl = McrCtl(kernel, session)
        kernel.fs.create("/etc/simple.conf", b"9999")
        assert ctl.live_update(simple.make_program(2)).rolled_back
        kernel.fs.create("/etc/simple.conf", b"8080")
        result = ctl.live_update(simple.make_program(2))
        assert result.committed, result.error
        assert _serve_one(kernel, "sum", "sum 2") == "sum 2"

    def test_rollback_terminates_new_tree_completely(self, kernel, monkeypatch):
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 1", "ok 1")  # ensure there is dirty state
        monkeypatch.setattr(controller_module, "StateTransfer", _FailingTransfer)
        controller = LiveUpdateController(kernel, session, simple.make_program(2))
        result = controller.run_update()
        assert result.rolled_back
        assert result.new_root is not None
        assert result.new_root.exited
        assert all(p.exited for p in result.new_root.tree()) or not result.new_root.tree()

    def test_failed_update_does_not_leak_new_listener_port(self, kernel):
        """A new version that binds an *extra* port during replay must give
        that port back when the update rolls back — rollback audits and
        closes every descriptor the aborted tree opened."""
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 4", "ok 1")
        v2 = simple.make_program(2)
        inner_main = v2.main

        @sim_function
        def main_with_extra_listener(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 9999)
            yield from sys.listen(fd)
            yield from inner_main(sys)

        v2.main = main_with_extra_listener
        plan = FaultPlan().at("transfer.memory")
        result = McrCtl(kernel, session).live_update(
            v2, config=MCRConfig(faults=plan)
        )
        assert result.rolled_back
        # The aborted version's port is released, not leaked...
        assert 9999 not in kernel.net._listeners
        # ...while the old version's listener is untouched and serving.
        assert 8080 in kernel.net._listeners
        assert not kernel.net._listeners[8080].closed
        assert _serve_one(kernel, "sum", "sum 4") == "sum 4"

    def test_commit_terminates_old_tree_completely(self, kernel):
        _program, session, root = _boot(kernel)
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed
        assert root.exited
        # The port is still owned (by the new version's inherited listener).
        assert 8080 in kernel.net._listeners
        assert not kernel.net._listeners[8080].closed


class TestInFlightRequests:
    def test_request_sent_during_quiescence_served_by_new_version(self, kernel):
        """A request buffered while the world is frozen is answered by v2."""
        _program, session, root = _boot(kernel)
        _serve_one(kernel, "push 8", "ok 1")
        # Freeze v1 at the barrier, then let a client fire a request into
        # the (shared, inherited) connection backlog.
        session.quiescence.request()
        session.quiescence.wait(root)
        replies = []

        @sim_function
        def mid_update_client(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"sum\n")
            line = yield from recv_line(sys, fd)
            replies.append(line.decode().strip())
            yield from sys.close(fd)

        kernel.spawn_process(mid_update_client)
        kernel.run(max_steps=30_000)
        assert not replies  # nobody is serving yet
        session.quiescence.release()  # hand the checkpoint back...
        kernel.run(max_steps=5_000)
        # ...and immediately update for real.
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed, result.error
        kernel.run(max_steps=300_000, until=lambda: bool(replies))
        assert replies == ["sum 8"]
