"""Tests for the benchmark harness plumbing (not the experiments)."""

import pytest

from repro.bench.harness import (
    PRIMARY_SERVERS,
    SERVER_BENCHES,
    boot_server,
    build_ladder,
)
from repro.bench.reporting import paper_vs_measured, render_table
from repro.bench.table3 import PAPER_TABLE3
from repro.bench.table2 import PAPER_TABLE2
from repro.runtime.instrument import BuildConfig


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["xx", "y"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text  # floats formatted
        assert "xx" in text

    def test_render_table_note(self):
        text = render_table("T", ["a"], [[1]], note="compare shapes")
        assert text.endswith("compare shapes")

    def test_paper_vs_measured_rows(self):
        rows = paper_vs_measured({"x": 1, "y": 2}, {"y": 3, "z": 4})
        assert rows == [["x", 1, "-"], ["y", 2, 3], ["z", "-", 4]]


class TestHarness:
    def test_all_subjects_registered(self):
        assert set(SERVER_BENCHES) == {
            "httpd", "nginx", "nginx_reg", "vsftpd", "opensshd", "memcache"
        }
        assert set(PRIMARY_SERVERS) <= set(SERVER_BENCHES)

    def test_default_build_honors_region_flag(self):
        world = boot_server("nginx_reg")
        assert world.root.build.instrument_regions
        world = boot_server("nginx")
        assert not world.root.build.instrument_regions

    def test_boot_baseline_has_no_session(self):
        world = boot_server("nginx", build=BuildConfig.baseline())
        assert world.session is None
        # nginx daemonizes (the root exits) but the daemon tree serves.
        assert world.root.tree()
        assert 8081 in world.kernel.net._listeners

    def test_build_ladder_order(self):
        ladder = build_ladder()
        assert list(ladder) == ["baseline", "Unblock", "+SInstr", "+DInstr", "+QDet"]
        assert ladder["+QDet"]().updatable

    def test_paper_reference_tables_cover_paper_subjects(self):
        # memcache is a repo-added subject; the paper's tables only
        # report the original five configurations.
        paper_subjects = {"httpd", "nginx", "nginx_reg", "vsftpd", "opensshd"}
        assert set(PAPER_TABLE3) == paper_subjects
        assert set(PAPER_TABLE2) == paper_subjects
        assert paper_subjects <= set(SERVER_BENCHES)

    @pytest.mark.parametrize("name", sorted(SERVER_BENCHES))
    def test_every_subject_boots_and_serves(self, name):
        world = boot_server(name)
        assert world.session.startup_complete
        workload = SERVER_BENCHES[name]["workload"]()
        # Tiny run: shrink the workload where supported.
        if hasattr(workload, "requests"):
            workload.requests = 8
        if hasattr(workload, "users"):
            workload.users = 2
        if hasattr(workload, "sessions"):
            workload.sessions = 2
        workload.run(world.kernel)
        assert workload.errors == 0
        assert workload.completed > 0
