"""Tests for quiescence detection (barrier protocol, unblockification)
and the profiler's error paths."""

import pytest

from repro.errors import ProfilerError, QuiescenceTimeout
from repro.kernel import Kernel, sim_function
from repro.mcr.quiescence.profiler import QuiescenceProfiler
from repro.mcr.quiescence.report import QuiescenceReport, ThreadClass
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, load_program
from repro.servers import simple
from repro.servers.common import connect_with_retry

from tests.helpers import boot_test_program, make_test_program


class TestBarrierProtocol:
    def _boot_simple(self, kernel):
        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
        return session, root

    def test_request_wait_release_cycle(self, kernel):
        session, root = self._boot_simple(kernel)
        session.quiescence.request()
        elapsed = session.quiescence.wait(root)
        assert elapsed <= 100_000_000  # paper: < 100 ms
        assert session.quiescence.is_quiescent(root)
        session.quiescence.release()
        kernel.run(max_steps=10_000)
        assert not any(t.at_barrier for t in root.live_threads())

    def test_quiescence_converges_under_load(self, kernel):
        session, root = self._boot_simple(kernel)
        replies = []

        @sim_function
        def chatty(sys):
            fd = yield from connect_with_retry(sys, 8080)
            for i in range(50):
                yield from sys.send(fd, f"push {i}\n".encode())
                replies.append((yield from sys.recv(fd)))
            yield from sys.close(fd)

        kernel.spawn_process(chatty)
        kernel.run(max_steps=3_000)  # mid-flight
        session.quiescence.request()
        elapsed = session.quiescence.wait(root)
        assert elapsed <= 100_000_000
        session.quiescence.release()
        kernel.run(max_steps=500_000)
        assert len(replies) == 50  # no request lost across the pause

    def test_no_events_consumed_while_quiesced(self, kernel):
        session, root = self._boot_simple(kernel)
        session.quiescence.request()
        session.quiescence.wait(root)

        @sim_function
        def impatient(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"push 1\n")
            data = yield from sys.recv(fd, timeout_ns=100_000_000)
            return data

        client = kernel.spawn_process(impatient)
        kernel.run(max_steps=50_000)
        # The server is at the barrier: the request sits unanswered.
        from repro.kernel.syscalls import TIMEOUT

        assert client.threads[1].exit_value is TIMEOUT
        # Release: the pending request is served from the accept queue.
        session.quiescence.release()
        replies = []

        @sim_function
        def follower(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"sum\n")
            replies.append((yield from sys.recv(fd)))

        kernel.spawn_process(follower)
        kernel.run(max_steps=200_000, until=lambda: bool(replies))
        assert replies and replies[0].startswith(b"sum")

    def test_timeout_when_thread_cannot_quiesce(self, kernel):
        # A program whose only thread blocks at a NON-instrumented site
        # can never reach the barrier -> QuiescenceTimeout.
        @sim_function
        def stubborn_main(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 4321)
            yield from sys.listen(fd)
            while True:
                # accept is not in quiescent_points -> not unblockified.
                conn = yield from sys.accept(fd)
                yield from sys.close(conn)

        program = make_test_program([], main=stubborn_main, name="stubborn")
        program.quiescent_points = {("somewhere_else", "accept")}
        kernel_, session, proc = boot_test_program(program)
        # Startup never completes (no QP reached); force the protocol.
        session.quiescence.request()
        with pytest.raises(QuiescenceTimeout):
            session.quiescence.wait(proc, deadline_ns=100_000_000)


class TestUnblockification:
    def test_wrapped_call_preserves_semantics(self, kernel):
        """A QP call still returns real results through the wrapper."""
        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        load_program(kernel, program, build=BuildConfig.full(), session=session)
        replies = []

        @sim_function
        def client(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"version\n")
            replies.append((yield from sys.recv(fd)))

        kernel.spawn_process(client)
        kernel.run(max_steps=300_000, until=lambda: bool(replies))
        assert replies[0].startswith(b"version")

    def test_idle_server_keeps_polling_without_busy_loop(self, kernel):
        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
        steps_before = kernel.steps_executed
        kernel.run(max_ns=500_000_000, max_steps=100_000)  # 0.5 s idle
        # ~25 slices of 20 ms, a handful of steps each: bounded polling.
        assert kernel.steps_executed - steps_before < 1_000


class TestProfilerErrors:
    def test_empty_workload_rejected(self, kernel):
        simple.setup_world(kernel)
        profiler = QuiescenceProfiler(kernel)
        with pytest.raises(ProfilerError):
            profiler.profile(simple.make_program(1), lambda k: [])

    def test_workload_that_never_stalls_rejected(self, kernel):
        simple.setup_world(kernel)
        profiler = QuiescenceProfiler(kernel)

        @sim_function
        def spinner(sys):
            while True:
                yield from sys.sched_yield()

        def workload(k):
            return [k.spawn_process(spinner)]

        with pytest.raises(ProfilerError):
            profiler.profile(simple.make_program(1), workload, workload_steps=20_000)


class TestReport:
    def _report(self):
        report = QuiescenceReport("prog")
        persistent = ThreadClass(1, ["main"])
        persistent.kind = "long"
        persistent.persistent = True
        persistent.quiescent_point = ("loop", "accept")
        persistent.count = 1
        volatile = ThreadClass(2, ["main", "worker"])
        volatile.kind = "long"
        volatile.persistent = False
        volatile.quiescent_point = ("wloop", "recv")
        volatile.count = 3
        short = ThreadClass(3, ["main", "helper"])
        short.kind = "short"
        short.count = 2
        short.exited_count = 2
        for cls in (persistent, volatile, short):
            report.add_class(cls)
        return report

    def test_summary_counts(self):
        summary = self._report().summary()
        assert summary == {"SL": 1, "LL": 2, "QP": 2, "Per": 1, "Vol": 1}

    def test_point_sets(self):
        report = self._report()
        assert report.persistent_points() == {("loop", "accept")}
        assert report.volatile_points() == {("wloop", "recv")}
        assert report.quiescent_points() == {("loop", "accept"), ("wloop", "recv")}

    def test_render_contains_classes(self):
        text = self._report().render()
        assert "persistent" in text and "volatile" in text
        assert "SL=1 LL=2" in text
