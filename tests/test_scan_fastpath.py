"""Equivalence tests for the memory-engine fast path.

The bulk scanning kernels, the interval-indexed resolver, and the
incremental scan cache are pure host-side optimizations: each must be
observationally identical to its reference implementation (identical
``LikelyPointer`` lists, identical ``words_scanned``, identical resolve
results).  These tests pin that equivalence down with randomized memory
images and direct checks of the cache-validity rules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcr.config import MCRConfig
from repro.mcr.tracing.conservative import (
    scan_range,
    scan_range_ref,
    scan_words,
    scan_words_ref,
)
from repro.mcr.tracing.graph import AddressResolver, GraphBuilder
from repro.mcr.tracing.incremental import ScanCache, resolution_fingerprint
from repro.mem.address_space import AddressSpace
from repro.runtime.program import GlobalVar
from repro.types.descriptors import INT32, INT64, PointerType, StructType

from tests.helpers import boot_test_program, make_test_program

NODE = StructType("node", [("value", INT32), ("next", PointerType(None, name="node*"))])

REGION = 0x40000  # the scanned area
TARGETS = 0x80000  # where the synthetic live objects sit


def _booted_world(globals_=(), types=None):
    program = make_test_program(list(globals_), types=types)
    return boot_test_program(program)


def _key(pointers):
    return [(p.slot_address, p.value, p.target_base, p.interior) for p in pointers]


# -- randomized bulk-vs-reference equivalence ---------------------------------

# Objects the synthetic resolver knows: (base, size, align-or-None).
# Aligns of 1/4/8/16 exercise the tag-alignment rejection both ways.
_OBJECTS = [
    (TARGETS + 0x000, 48, None),
    (TARGETS + 0x100, 64, 8),
    (TARGETS + 0x200, 24, 4),
    (TARGETS + 0x300, 128, 16),
]
_BOUNDS = (min(b for b, _, _ in _OBJECTS), max(b + s for b, s, _ in _OBJECTS))


def _resolve(value):
    for base, size, align in _OBJECTS:
        if base <= value < base + size:
            return (base, size, align)
    return None


# A word mix biased toward interesting cases: zeros, wild integers, and
# values in/near the object range (bases, interior, just-past-the-end).
_WORD = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=TARGETS - 16, max_value=TARGETS + 0x400),
    st.sampled_from([b for b, _, _ in _OBJECTS]),
)


class TestBulkEquivalence:
    @given(
        words=st.lists(_WORD, min_size=1, max_size=96),
        start_offset=st.integers(min_value=0, max_value=15),
        tail=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_scan_range_matches_reference(self, words, start_offset, tail):
        space = AddressSpace()
        space.map(8192, address=REGION)
        for index, word in enumerate(words):
            space.write_word(REGION + index * 8, word)
        start = REGION + start_offset  # may be word-unaligned
        size = len(words) * 8 - start_offset + tail
        ref = scan_range_ref(space, start, size, _resolve)
        bulk = scan_range(space, start, size, _resolve)
        bulk_bounded = scan_range(space, start, size, _resolve, bounds=_BOUNDS)
        assert _key(bulk[0]) == _key(ref[0]) and bulk[1] == ref[1]
        assert _key(bulk_bounded[0]) == _key(ref[0]) and bulk_bounded[1] == ref[1]

    @given(
        words=st.lists(_WORD, min_size=1, max_size=64),
        offsets=st.lists(st.integers(min_value=0, max_value=1016), max_size=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_scan_words_matches_reference(self, words, offsets):
        space = AddressSpace()
        space.map(8192, address=REGION)
        for index, word in enumerate(words):
            space.write_word(REGION + index * 8, word)
        ref = scan_words_ref(space, offsets, REGION, _resolve)
        bulk = scan_words(space, offsets, REGION, _resolve)
        bulk_bounded = scan_words(space, offsets, REGION, _resolve, bounds=_BOUNDS)
        assert _key(bulk[0]) == _key(ref[0]) and bulk[1] == ref[1]
        assert _key(bulk_bounded[0]) == _key(ref[0]) and bulk_bounded[1] == ref[1]

    def test_cross_mapping_scan_falls_back(self):
        # Two adjacent mappings: no single view covers the range, so the
        # bulk path must delegate to the reference scanner and still
        # produce its exact result.
        space = AddressSpace()
        space.map(4096, address=REGION)
        space.map(4096, address=REGION + 4096)
        space.write_word(REGION + 4096 - 8, TARGETS + 8)
        space.write_word(REGION + 4096, TARGETS + 0x108)
        ref = scan_range_ref(space, REGION + 4064, 64, _resolve)
        bulk = scan_range(space, REGION + 4064, 64, _resolve)
        assert _key(bulk[0]) == _key(ref[0]) and bulk[1] == ref[1]
        assert len(bulk[0]) == 2


# -- interval index vs resolution cascade -------------------------------------


class TestIntervalIndex:
    def test_indexed_resolution_matches_cascade(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))], types={"node": NODE}
        )
        crt = proc.crt
        thread = proc.threads[1]
        crt.malloc_typed(thread, NODE)
        raw = crt.malloc(80)
        reserved = proc.heap.base + 4096
        proc.heap.reserve_range(reserved, 1024)
        resolver = AddressResolver(proc)
        probes = list(range(proc.heap.base - 64, proc.heap.base + 8192, 4))
        for mapping in proc.space.mappings():
            probes.extend(range(mapping.base, min(mapping.base + 512, mapping.end), 8))
            probes.append(mapping.end - 8)
            probes.append(mapping.end)  # guard gap
        cascade = [resolver.resolve(address) for address in probes]
        resolver.build_index()
        try:
            indexed = [resolver.resolve(address) for address in probes]
        finally:
            resolver.drop_index()
        assert indexed == cascade
        assert any(r is not None for r in cascade)  # sweep hit live objects

    def test_nested_tag_gap_semantics_preserved(self):
        # The cascade checks only the predecessor-by-start tag: an outer
        # tag does NOT cover addresses past a nested inner tag's end (the
        # next level resolves them instead).  The index must reproduce
        # this quirk, not "fix" it.
        kernel, session, proc = _booted_world([], types={"node": NODE})
        raw = proc.crt.malloc(64)
        outer = StructType("outer", [("a", INT64), ("b", INT64)])
        proc.tags.register(raw, outer, origin="heap")
        proc.tags.register(raw + 8, INT32, origin="heap")
        resolver = AddressResolver(proc)
        probes = [raw, raw + 4, raw + 8, raw + 11, raw + 13, raw + 24, raw + 63]
        cascade = [resolver.resolve(address) for address in probes]
        resolver.build_index()
        try:
            indexed = [resolver.resolve(address) for address in probes]
        finally:
            resolver.drop_index()
        assert indexed == cascade
        # Past the inner tag's end the tags level misses and the heap
        # chunk answers: base pointer resolution, no tag.
        base, _size, _align, tag = resolver.resolve(raw + 13)
        assert base == raw and tag is None

    def test_scan_bounds_cover_all_resolvables(self):
        kernel, session, proc = _booted_world([], types={"node": NODE})
        proc.crt.malloc(48)
        resolver = AddressResolver(proc)
        resolver.build_index()
        try:
            lo, hi = resolver.scan_bounds()
            for probe in range(proc.heap.base, proc.heap.base + 4096, 8):
                if resolver.resolve(probe) is not None:
                    assert lo <= probe < hi
        finally:
            resolver.drop_index()


# -- the incremental scan cache ------------------------------------------------


class TestScanCache:
    def _scanned_world(self):
        kernel, session, proc = _booted_world([])
        raw = proc.crt.malloc(64)
        proc.space.write_word(raw, raw + 16)  # a real likely pointer
        return proc, raw

    def test_store_then_hit(self):
        proc, raw = self._scanned_world()
        resolver = AddressResolver(proc)
        cache = ScanCache(proc)
        cache.begin_round()
        start, size = proc.heap.base, 512
        assert cache.lookup(start, size) is None
        found, words = scan_range_ref(proc.space, start, size, resolver.resolve_for_scan)
        cache.store(start, size, found, words)
        hit = cache.lookup(start, size)
        assert hit is not None
        assert hit[0] is found and hit[1] == words
        assert cache.hits == 1 and cache.misses == 1

    def test_write_invalidates(self):
        proc, raw = self._scanned_world()
        cache = ScanCache(proc)
        cache.begin_round()
        start, size = proc.heap.base, 512
        cache.store(start, size, [], 64)
        proc.space.write_word(start + 256, 7)
        assert cache.lookup(start, size) is None

    def test_write_elsewhere_keeps_entry(self):
        proc, raw = self._scanned_world()
        cache = ScanCache(proc)
        cache.begin_round()
        start, size = proc.heap.base, 512
        cache.store(start, size, [], 64)
        # A write several pages away must not invalidate this range.
        proc.space.write_word(start + 16 * 4096, 7)
        assert cache.lookup(start, size) is not None

    def test_fingerprint_change_empties_cache(self):
        proc, raw = self._scanned_world()
        cache = ScanCache(proc)
        cache.begin_round()
        start, size = proc.heap.base + 8192, 256  # pages untouched by malloc
        cache.store(start, size, [], 32)
        proc.crt.malloc(32)  # allocation changes what resolves
        cache.begin_round()
        assert cache.lookup(start, size) is None

    def test_quiet_round_keeps_cache(self):
        proc, raw = self._scanned_world()
        cache = ScanCache(proc)
        cache.begin_round()
        start, size = proc.heap.base + 8192, 256
        cache.store(start, size, [], 32)
        cache.begin_round()  # nothing changed: the second sweep reuses it
        assert cache.lookup(start, size) is not None

    def test_fingerprint_tracks_tags_and_mappings(self):
        proc, raw = self._scanned_world()
        before = resolution_fingerprint(proc)
        proc.tags.register(raw, INT64, origin="heap")
        after_tag = resolution_fingerprint(proc)
        assert after_tag != before
        proc.space.map(4096, name="new", kind="mmap")
        assert resolution_fingerprint(proc) != after_tag


# -- whole-trace equivalence ---------------------------------------------------


class TestGraphBuilderModes:
    def test_fast_and_slow_traces_identical(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))], types={"node": NODE}
        )
        crt = proc.crt
        thread = proc.threads[1]
        n1 = crt.malloc_typed(thread, NODE)
        n2 = crt.malloc_typed(thread, NODE)
        crt.set(n1, NODE, "next", n2)
        crt.gset("head", n1)
        raw = crt.malloc(64)
        proc.space.write_word(raw + 8, n2)  # conservative interior edge

        slow = GraphBuilder(
            proc, config=MCRConfig(fast_scan=False, incremental_scan=False)
        ).build()
        fast = GraphBuilder(proc).build()
        repeat = GraphBuilder(proc).build()  # second sweep: cache hits

        for trace in (fast, repeat):
            assert set(trace.objects) == set(slow.objects)
            assert trace.words_scanned == slow.words_scanned
            assert _key(trace.likely_pointers) == _key(slow.likely_pointers)
            assert len(trace.precise_pointers) == len(slow.precise_pointers)
