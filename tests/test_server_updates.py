"""Live-update tests across the four evaluation servers.

Each test drives a server with real clients, applies one or more updates
from its series, and checks that state, sessions, and connections survive
— plus the failure modes the paper highlights (unprepared httpd, type
conflicts on conservatively-handled objects).
"""

import pytest

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import httpd, nginx, opensshd, vsftpd
from repro.servers.common import connect_with_retry, recv_line


def _boot(kernel, module, version=1, **kwargs):
    module.setup_world(kernel)
    program = module.make_program(version, **kwargs)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    return program, session, root


@sim_function
def _oneshot(sys, port, cmds, out, banner=False):
    fd = yield from connect_with_retry(sys, port)
    if banner:
        line = yield from recv_line(sys, fd)
        out.append(line.decode().strip())
    for cmd in cmds:
        yield from sys.send(fd, (cmd + "\n").encode())
        line = yield from recv_line(sys, fd)
        out.append(line.decode().strip()[:70])
    yield from sys.close(fd)


@sim_function
def _staged(sys, port, stage1, stage2, out1, out2, gate, banner=False):
    """Runs stage1 commands, waits for gate['go'], runs stage2 commands."""
    fd = yield from connect_with_retry(sys, port)
    if banner:
        line = yield from recv_line(sys, fd)
        out1.append(line.decode().strip())
    for cmd in stage1:
        yield from sys.send(fd, (cmd + "\n").encode())
        line = yield from recv_line(sys, fd)
        out1.append(line.decode().strip()[:70])
    while not gate.get("go"):
        yield from sys.nanosleep(10_000_000)
    for cmd in stage2:
        yield from sys.send(fd, (cmd + "\n").encode())
        line = yield from recv_line(sys, fd)
        out2.append(line.decode().strip()[:70])
    yield from sys.close(fd)


class TestNginxUpdates:
    def test_update_preserves_stats(self, kernel):
        _program, session, _root = _boot(kernel, nginx)
        out = []
        kernel.spawn_process(_oneshot, args=(8081, ["GET /index.html", "STATS"], out))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 2)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(nginx.make_program(2))
        assert result.committed, result.error
        after = []
        kernel.spawn_process(_oneshot, args=(8081, ["STATS"], after))
        kernel.run(max_steps=400_000, until=lambda: len(after) == 1)
        assert after == ["stats 3 v2"]  # 2 pre-update requests + this one

    def test_type_changing_update_v3(self, kernel):
        """v3 grows the cycle structure (a region-allocated object)."""
        _program, session, _root = _boot(kernel, nginx)
        kernel.run(max_steps=200_000, until=lambda: session.startup_complete)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(nginx.make_program(3))
        assert result.committed, result.error
        out = []
        kernel.spawn_process(_oneshot, args=(8081, ["GET /big.bin", "STATS"], out))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 2)
        assert out[0] == "200 4096"
        assert out[1].endswith("v3")

    def test_connection_survives_update(self, kernel):
        _program, session, _root = _boot(kernel, nginx)
        out1, out2, gate = [], [], {}
        kernel.spawn_process(
            _staged, args=(8081, ["GET /index.html"], ["STATS"], out1, out2, gate)
        )
        kernel.run(max_steps=400_000, until=lambda: len(out1) == 1)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(nginx.make_program(2))
        assert result.committed, result.error
        gate["go"] = True
        kernel.run(max_steps=400_000, until=lambda: len(out2) == 1)
        assert out2[0].endswith("v2")

    def test_many_chained_updates(self, kernel):
        """Walk several releases of the nginx line in one process life."""
        _program, session, _root = _boot(kernel, nginx)
        kernel.run(max_steps=200_000, until=lambda: session.startup_complete)
        ctl = McrCtl(kernel, session)
        for version in (2, 3, 4, 7, 12):
            result = ctl.live_update(nginx.make_program(version))
            assert result.committed, f"v{version}: {result.error}"
        out = []
        kernel.spawn_process(_oneshot, args=(8081, ["STATS"], out))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 1)
        assert out[0].endswith("v12")


class TestVsftpdUpdates:
    def test_session_survives_update(self, kernel):
        _program, session, _root = _boot(kernel, vsftpd)
        out1, out2, gate = [], [], {}
        kernel.spawn_process(
            _staged,
            args=(21, ["USER carol", "PASS pw", "RETR /pub/readme.txt"],
                  ["STAT"], out1, out2, gate, True),
        )
        kernel.run(max_steps=500_000, until=lambda: len(out1) == 4)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(vsftpd.make_program(2))
        assert result.committed, result.error
        gate["go"] = True
        kernel.run(max_steps=500_000, until=lambda: len(out2) == 1)
        assert "user=carol" in out2[0]
        assert "sent=22" in out2[0]
        assert out2[0].endswith("v2")

    def test_session_type_change_v3(self, kernel):
        """v3 grows the session struct; the annotation makes it legal."""
        _program, session, _root = _boot(kernel, vsftpd)
        out1, out2, gate = [], [], {}
        kernel.spawn_process(
            _staged,
            args=(21, ["USER dave", "PASS pw", "RETR /pub/readme.txt"],
                  ["PASS wrong", "STAT"], out1, out2, gate, True),
        )
        kernel.run(max_steps=500_000, until=lambda: len(out1) == 4)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(vsftpd.make_program(3))
        assert result.committed, result.error
        gate["go"] = True
        kernel.run(max_steps=500_000, until=lambda: len(out2) == 2)
        assert out2[0].startswith("530")  # new failed_logins path works
        assert "user=dave" in out2[1]

    def test_multiple_sessions_restored(self, kernel):
        _program, session, _root = _boot(kernel, vsftpd)
        gates = [{} for _ in range(3)]
        outs1 = [[] for _ in range(3)]
        outs2 = [[] for _ in range(3)]
        for index in range(3):
            kernel.spawn_process(
                _staged,
                args=(21, [f"USER u{index}", "PASS pw"], ["STAT"],
                      outs1[index], outs2[index], gates[index], True),
            )
        kernel.run(max_steps=800_000, until=lambda: all(len(o) == 3 for o in outs1))
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(vsftpd.make_program(2))
        assert result.committed, result.error
        for gate in gates:
            gate["go"] = True
        kernel.run(max_steps=800_000, until=lambda: all(len(o) == 1 for o in outs2))
        for index in range(3):
            assert f"user=u{index}" in outs2[index][0]


class TestOpensshdUpdates:
    def test_session_and_exec_survive_update(self, kernel):
        _program, session, _root = _boot(kernel, opensshd)
        out1, out2, gate = [], [], {}
        kernel.spawn_process(
            _staged,
            args=(22, ["AUTH erin pw", "EXEC date"], ["EXEC uptime", "STAT"],
                  out1, out2, gate, True),
        )
        kernel.run(max_steps=500_000, until=lambda: len(out1) == 3)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(opensshd.make_program(3))
        assert result.committed, result.error
        gate["go"] = True
        kernel.run(max_steps=500_000, until=lambda: len(out2) == 2)
        assert out2[0] == "helper-output:uptime"
        assert "user=erin execs=2" in out2[1]
        assert out2[1].endswith("v3")

    def test_auth_state_preserved(self, kernel):
        """An authenticated-but-idle session must stay authenticated."""
        _program, session, _root = _boot(kernel, opensshd)
        out1, out2, gate = [], [], {}
        kernel.spawn_process(
            _staged,
            args=(22, ["AUTH frank pw"], ["EXEC id"], out1, out2, gate, True),
        )
        kernel.run(max_steps=500_000, until=lambda: len(out1) == 2)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(opensshd.make_program(2))
        assert result.committed, result.error
        gate["go"] = True
        kernel.run(max_steps=500_000, until=lambda: len(out2) == 1)
        assert out2[0] == "helper-output:id"  # no re-auth required


class TestHttpdUpdates:
    def test_update_preserves_scoreboard(self, kernel):
        _program, session, _root = _boot(kernel, httpd)
        out = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /index.html", "SCORE"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 2)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(httpd.make_program(2))
        assert result.committed, result.error
        after = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /file1k.bin"], after))
        kernel.run(max_steps=600_000, until=lambda: len(after) == 1)
        assert after == ["200 1024"]

    def test_janitor_thread_restored(self, kernel):
        _program, session, _root = _boot(kernel, httpd)
        out = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /index.html"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 1)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(httpd.make_program(2))
        assert result.committed, result.error
        janitors = [
            t
            for p in result.new_root.tree()
            for t in p.live_threads()
            if t.name == "janitor"
        ]
        assert len(janitors) == 1

    def test_scoreboard_type_change_v3(self, kernel):
        _program, session, _root = _boot(kernel, httpd)
        out = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /index.html"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 1)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(httpd.make_program(3))
        assert result.committed, result.error
        after = []
        kernel.spawn_process(_oneshot, args=(80, ["SCORE", "GET /big.bin"], after))
        kernel.run(max_steps=900_000, until=lambda: len(after) == 2)
        assert after[0].endswith("v3")
        assert after[1] == "200 4096"

    def test_semantic_update_v6_applies_handler(self, kernel):
        """The v6 scoreboard unit change runs the user's ST handler."""
        from repro.servers.updates import make_httpd_update

        _program, session, _root = _boot(kernel, httpd, version=5)
        out = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /index.html"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 1)
        # Find which server process served the request.
        old_server = next(
            p
            for p in session.root_process.tree()
            if p.name.startswith("httpd-server")
            and any(
                p.crt.get(
                    p.crt.global_addr("httpd_scoreboard") + i * p.program.types["scoreboard_t"].size,
                    p.program.types["scoreboard_t"],
                    "access_count",
                )
                for i in range(httpd.SERVER_PROCESSES)
            )
        )
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(make_httpd_update(6))
        assert result.committed, result.error
        new_server = next(
            p for p in result.new_root.tree() if p.name == old_server.name
        )
        score_t = new_server.program.types["scoreboard_t"]
        counts = [
            new_server.crt.get(
                new_server.crt.global_addr("httpd_scoreboard") + i * score_t.size,
                score_t,
                "access_count",
            )
            for i in range(httpd.SERVER_PROCESSES)
        ]
        # One request happened; the v6 unit is milli-requests.
        assert 1000 in counts

    def test_unprepared_httpd_update_rolls_back(self, kernel):
        """Without the 8-LOC preparation the new version aborts when it
        detects the (still running) old instance -> rollback."""
        _program, session, _root = _boot(kernel, httpd, mcr_prepared=True)
        kernel.run(max_steps=300_000, until=lambda: session.startup_complete)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(httpd.make_program(2, mcr_prepared=False))
        assert result.rolled_back
        # v1 still serves.
        out = []
        kernel.spawn_process(_oneshot, args=(80, ["GET /index.html"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 1)
        assert out == ["200 23"]
