"""Updates under live traffic: no request may be lost or corrupted.

The headline promise — "deploying software updates without stopping
running programs or disrupt their state" — means a benchmark fired at the
server must complete with zero errors even when a live update (or a
rollback!) lands in the middle of it.  The controller drives the same
simulated world, so in-flight clients keep running during quiescence,
control migration, and transfer; they just observe a pause.
"""

import pytest

from repro.bench.harness import boot_server
from repro.mcr.ctl import McrCtl
from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.sshsuite import SshSuite


def _run_with_midway_update(
    world, workload, make_new_program, expect_commit=True, warm_fraction=0.3
):
    kernel = world.kernel
    clients = workload(kernel)
    # Let roughly a third of the traffic through before updating.
    threshold = max(1, int(getattr(workload, "requests", 12) * warm_fraction))
    kernel.run(
        until=lambda: workload.completed >= threshold, max_steps=2_000_000
    )
    assert not all(c.exited for c in clients), "workload finished too early"
    ctl = McrCtl(kernel, world.session)
    result = ctl.live_update(make_new_program())
    assert result.committed == expect_commit, result.error
    kernel.run(
        until=lambda: all(c.exited for c in clients), max_steps=8_000_000
    )
    assert all(c.exited for c in clients)
    return result


class TestUpdateUnderLoad:
    def test_nginx_ab_survives_update(self):
        world = boot_server("nginx")
        bench = ApacheBench(8081, requests=120, concurrency=4)
        from repro.servers import nginx

        _run_with_midway_update(world, bench, lambda: nginx.make_program(2))
        assert bench.errors == 0
        assert bench.completed == 120

    def test_httpd_ab_survives_update(self):
        world = boot_server("httpd")
        bench = ApacheBench(80, requests=120, concurrency=4)
        from repro.servers import httpd

        _run_with_midway_update(world, bench, lambda: httpd.make_program(2))
        assert bench.errors == 0
        assert bench.completed == 120

    def test_vsftpd_users_survive_update(self):
        world = boot_server("vsftpd")
        bench = FtpBench(users=6, retrievals=2)
        from repro.servers import vsftpd

        _run_with_midway_update(world, bench, lambda: vsftpd.make_program(2))
        assert bench.errors == 0
        assert bench.completed == 12

    def test_sshd_suite_survives_update(self):
        world = boot_server("opensshd")
        suite = SshSuite(sessions=4, commands=3)
        from repro.servers import opensshd

        _run_with_midway_update(world, suite, lambda: opensshd.make_program(2))
        assert suite.errors == 0
        assert suite.completed == 12

    def test_nginx_ab_survives_rollback(self):
        """Even a FAILED update mid-benchmark must be invisible."""
        world = boot_server("nginx")
        bench = ApacheBench(8081, requests=120, concurrency=4)
        from repro.servers import nginx

        # Poison the config so replay conflicts and rolls back.
        world.kernel.fs.create("/etc/nginx.conf", b"port=9999\nroot=/srv/www\n")
        _run_with_midway_update(
            world, bench, lambda: nginx.make_program(2), expect_commit=False
        )
        assert bench.errors == 0
        assert bench.completed == 120

    def test_type_changing_update_under_load(self):
        """The Figure-2-style layout change, mid-benchmark."""
        world = boot_server("nginx")
        bench = ApacheBench(8081, requests=120, concurrency=4)
        from repro.servers import nginx

        _run_with_midway_update(world, bench, lambda: nginx.make_program(3))
        assert bench.errors == 0
        assert bench.completed == 120
