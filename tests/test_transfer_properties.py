"""Property-based end-to-end checks of the state-transfer engine.

Generate random heap object graphs (arbitrary edges, cycles, sharing,
unreachable islands) in an old-version process, transfer, and verify the
new version's graph is *isomorphic with identical payloads* — the
fundamental correctness property of mutable tracing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.mcr.tracing.transfer import StateTransfer
from repro.runtime.program import GlobalVar
from repro.types.descriptors import ArrayType, INT32, INT64, PointerType, StructType

from tests.helpers import boot_test_program, make_test_program

NODE = StructType(
    "gnode",
    [
        ("value", INT64),
        ("left", PointerType(None, name="gnode*")),
        ("right", PointerType(None, name="gnode*")),
    ],
)

HEAD_COUNT = 3

# Payload values stay below every simulated mapping base: an int64 whose
# value collides with a live address is (correctly!) treated as a likely
# pointer by the pointer-as-integer policy and pins its container — see
# test_value_colliding_with_address_pins_node for that behaviour.
graph_strategy = st.integers(2, 12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.integers(-(2**18), 2**18), min_size=n, max_size=n),  # values
        st.lists(st.integers(0, n), min_size=n, max_size=n),  # left edges (n = null)
        st.lists(st.integers(0, n), min_size=n, max_size=n),  # right edges
        st.lists(st.integers(0, n - 1), min_size=HEAD_COUNT, max_size=HEAD_COUNT),
    )
)


def _globals():
    return [GlobalVar(f"h{i}", PointerType(NODE, name="gnode*")) for i in range(HEAD_COUNT)]


def _build_graph(proc, n, values, lefts, rights, heads):
    crt = proc.crt
    thread = proc.threads[1]
    nodes = [crt.malloc_typed(thread, NODE) for _ in range(n)]
    for index, addr in enumerate(nodes):
        crt.set(addr, NODE, "value", values[index])
        crt.set(addr, NODE, "left", 0 if lefts[index] == n else nodes[lefts[index]])
        crt.set(addr, NODE, "right", 0 if rights[index] == n else nodes[rights[index]])
    for slot, node_index in enumerate(heads):
        crt.gset(f"h{slot}", nodes[node_index])
    return nodes


def _walk_isomorphic(old_proc, new_proc):
    """Walk both graphs from every head; assert structural equality."""
    mapping = {}  # old addr -> new addr

    def check(old_addr, new_addr):
        stack = [(old_addr, new_addr)]
        while stack:
            old_node, new_node = stack.pop()
            if old_node == 0 or new_node == 0:
                assert old_node == new_node == 0
                continue
            if old_node in mapping:
                assert mapping[old_node] == new_node
                continue
            mapping[old_node] = new_node
            assert old_proc.crt.get(old_node, NODE, "value") == new_proc.crt.get(
                new_node, NODE, "value"
            )
            for field in ("left", "right"):
                stack.append(
                    (
                        old_proc.crt.get(old_node, NODE, field),
                        new_proc.crt.get(new_node, NODE, field),
                    )
                )

    for slot in range(HEAD_COUNT):
        check(old_proc.crt.gget(f"h{slot}"), new_proc.crt.gget(f"h{slot}"))
    return mapping


class TestGraphTransferProperties:
    @given(graph_strategy)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_graph_survives_transfer_isomorphically(self, spec):
        n, values, lefts, rights, heads = spec
        kernel = Kernel()
        program_v1 = make_test_program(_globals(), types={"gnode": NODE}, version="1")
        _k, _s, old = boot_test_program(program_v1, kernel=kernel)
        program_v2 = make_test_program(_globals(), types={"gnode": NODE}, version="2")
        _k, _s, new = boot_test_program(program_v2, kernel=kernel)
        _build_graph(old, n, values, lefts, rights, heads)
        StateTransfer(old, new, program_v2).run()
        mapping = _walk_isomorphic(old, new)
        # Every reachable node was transferred and none share storage.
        assert len(set(mapping.values())) == len(mapping)
        # All transferred nodes live in the NEW process's heap.
        for new_addr in mapping.values():
            assert new.heap.find_chunk(new_addr) is not None

    @given(graph_strategy)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_transfer_then_type_growth(self, spec):
        """Same graphs, but the new version's node type has a new field."""
        n, values, lefts, rights, heads = spec
        node_v2 = StructType(
            "gnode",
            [
                ("value", INT64),
                ("generation", INT32),
                ("left", PointerType(None, name="gnode*")),
                ("right", PointerType(None, name="gnode*")),
            ],
        )

        def globals_v2():
            return [
                GlobalVar(f"h{i}", PointerType(node_v2, name="gnode*"))
                for i in range(HEAD_COUNT)
            ]

        kernel = Kernel()
        program_v1 = make_test_program(_globals(), types={"gnode": NODE}, version="1")
        _k, _s, old = boot_test_program(program_v1, kernel=kernel)
        program_v2 = make_test_program(globals_v2(), types={"gnode": node_v2}, version="2")
        _k, _s, new = boot_test_program(program_v2, kernel=kernel)
        _build_graph(old, n, values, lefts, rights, heads)
        StateTransfer(old, new, program_v2).run()
        # Walk the transformed graph: values preserved, new field zeroed.
        seen = set()
        for slot in range(HEAD_COUNT):
            old_head = old.crt.gget(f"h{slot}")
            new_head = new.crt.gget(f"h{slot}")
            stack = [(old_head, new_head)]
            while stack:
                old_node, new_node = stack.pop()
                if old_node == 0 or new_node in seen:
                    continue
                seen.add(new_node)
                assert new.crt.get(new_node, node_v2, "value") == old.crt.get(
                    old_node, NODE, "value"
                )
                assert new.crt.get(new_node, node_v2, "generation") == 0
                stack.append(
                    (old.crt.get(old_node, NODE, "left"),
                     new.crt.get(new_node, node_v2, "left"))
                )
                stack.append(
                    (old.crt.get(old_node, NODE, "right"),
                     new.crt.get(new_node, node_v2, "right"))
                )


class TestFalsePositiveConservatism:
    """The conservatism hypothesis originally discovered here: an integer
    payload that happens to equal a live address is indistinguishable from
    a hidden pointer, so its container becomes nonupdatable (paper §6:
    accuracy problems "result only in a larger number of immutable
    objects that MCR cannot automatically type-transform")."""

    def test_value_colliding_with_address_pins_node(self):
        import pytest as _pytest

        from repro.errors import ConflictError
        from repro.mem.address_space import DATA_BASE
        from repro.types.descriptors import INT32

        node_v2 = StructType(
            "gnode",
            [
                ("value", INT64),
                ("generation", INT32),
                ("left", PointerType(None, name="gnode*")),
                ("right", PointerType(None, name="gnode*")),
            ],
        )
        kernel = Kernel()
        program_v1 = make_test_program(_globals(), types={"gnode": NODE}, version="1")
        _k, _s, old = boot_test_program(program_v1, kernel=kernel)
        globals_v2 = [
            GlobalVar(f"h{i}", PointerType(node_v2, name="gnode*"))
            for i in range(HEAD_COUNT)
        ]
        program_v2 = make_test_program(globals_v2, types={"gnode": node_v2}, version="2")
        _k, _s, new = boot_test_program(program_v2, kernel=kernel)
        node = old.crt.malloc_typed(old.threads[1], NODE)
        old.crt.set(node, NODE, "value", DATA_BASE)  # int == a live address
        for slot in range(HEAD_COUNT):
            old.crt.gset(f"h{slot}", node)
        # Same-type transfer is fine (the node just cannot be relocated)...
        # ...but the type GROWTH conflicts: the node is nonupdatable.
        with _pytest.raises(ConflictError):
            StateTransfer(old, new, program_v2).run()
