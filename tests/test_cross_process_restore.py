"""Cross-process restore proof: write the image in one Python process,
restore it in another.

Everything else in the suite round-trips images inside one interpreter,
where module state could in principle leak into the "restored" node.
These tests drive the ``python -m repro checkpoint`` / ``restore`` CLI
commands as real subprocesses, so the restored tree is rebuilt from
nothing but the bytes on disk — and a flipped bit in those bytes must be
refused, not restored.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _repro(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


def test_image_restores_in_a_fresh_python_process(tmp_path):
    image = tmp_path / "simple.img"
    wrote = _repro("checkpoint", "simple", "--out", str(image), "--serve", "6")
    assert wrote.returncode == 0, wrote.stderr
    assert image.exists() and image.stat().st_size > 0
    assert "fingerprint:" in wrote.stdout

    read = _repro("restore", str(image), "--serve", "4")
    assert read.returncode == 0, read.stdout + read.stderr
    assert "fingerprint verified" in read.stdout
    # The restored tree does not just fingerprint-match: it resumes and
    # actually serves, in a process that never saw the original kernel.
    assert "served 4/4" in read.stdout


def test_corrupt_image_is_refused_across_processes(tmp_path):
    image = tmp_path / "simple.img"
    wrote = _repro("checkpoint", "simple", "--out", str(image))
    assert wrote.returncode == 0, wrote.stderr
    blob = bytearray(image.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # one flipped bit mid-payload
    image.write_bytes(bytes(blob))
    read = _repro("restore", str(image))
    assert read.returncode == 2
    assert "cannot restore" in read.stderr
