"""Property tests for the v2 scan/transfer engine.

Two equivalences are load-bearing for the vectorized engine:

* every **scan backend** (numpy when installed, the stdlib fallback
  always) must classify windows identically to the reference per-word
  scanner — same likely pointers, same ``words_scanned``, and the same
  in-bounds candidate count, so ``scan.resolve_calls`` accounting is
  byte-for-byte unchanged; and
* the **span-coalescing transfer writer** must leave destination memory
  byte-for-byte identical to the per-word write path, with identical
  dirty-page accounting.

Both are pinned with Hypothesis over randomized memory images, including
the resolver quirks the index snapshot must reproduce (guard gaps between
mappings, nested tag regions).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcr.tracing.conservative import scan_range, scan_range_ref
from repro.mcr.tracing.graph import AddressResolver
from repro.mcr.tracing.spans import SpanWriter
from repro.mem import scan_backend
from repro.mem.address_space import AddressSpace
from repro.types.descriptors import INT32, INT64, StructType

from tests.helpers import boot_test_program, make_test_program

REGION = 0x40000   # scanned area
TARGETS = 0x80000  # synthetic object segments

BACKENDS = scan_backend.available_backends()
HAS_NUMPY = "numpy" in BACKENDS


def _key(pointers):
    return [(p.slot_address, p.value, p.target_base, p.interior) for p in pointers]


# -- backend-level classification equivalence ---------------------------------

# Random disjoint segments: (start offset, size, align-or-None).  Gaps
# between segments model guard pages / unresolvable holes.
_SEGMENT = st.tuples(
    st.integers(min_value=8, max_value=192),   # gap before this segment
    st.integers(min_value=8, max_value=160),   # segment size
    st.sampled_from([None, 1, 4, 8, 16]),      # tag alignment
)


def _build_segments(specs):
    starts, ends, payloads = [], [], []
    cursor = TARGETS
    for gap, size, align in specs:
        cursor += gap
        starts.append(cursor)
        ends.append(cursor + size)
        payloads.append((cursor, size, align))
        cursor += size
    return starts, ends, payloads


def _classify_ref(words, starts, ends, payloads, lo, hi):
    """The reference classification: one predecessor lookup per word."""
    import bisect

    positions, values, targets, candidates = [], [], [], 0
    for position, value in enumerate(words):
        if value < lo or value >= hi:
            continue
        candidates += 1
        i = bisect.bisect_right(starts, value) - 1
        if i < 0 or value >= ends[i]:
            continue
        base, _size, align = payloads[i]
        if (value - base) % (align or 1):
            continue
        positions.append(position)
        values.append(value)
        targets.append(base)
    return positions, values, targets, candidates


_SEG_WORD = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=TARGETS - 64, max_value=TARGETS + 2048),
)


class TestBackendEquivalence:
    @given(
        specs=st.lists(_SEGMENT, min_size=1, max_size=12),
        words=st.lists(_SEG_WORD, min_size=1, max_size=128),
    )
    @settings(max_examples=80, deadline=None)
    def test_backends_match_reference(self, specs, words):
        starts, ends, payloads = _build_segments(specs)
        window = memoryview(
            b"".join(value.to_bytes(8, "little") for value in words)
        )
        lo, hi = starts[0], ends[-1]
        expected = _classify_ref(words, starts, ends, payloads, lo, hi)
        for name in BACKENDS:
            prepared = scan_backend.prepare(starts, ends, payloads, backend=name)
            assert prepared.classify(window) == expected, name

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    @given(
        specs=st.lists(_SEGMENT, min_size=1, max_size=8),
        words=st.lists(_SEG_WORD, min_size=1, max_size=96),
    )
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_stdlib_agree(self, specs, words):
        starts, ends, payloads = _build_segments(specs)
        window = memoryview(
            b"".join(value.to_bytes(8, "little") for value in words)
        )
        a = scan_backend.prepare(starts, ends, payloads, backend="stdlib")
        b = scan_backend.prepare(starts, ends, payloads, backend="numpy")
        assert a.classify(window) == b.classify(window)

    def test_empty_index_classifies_nothing(self):
        window = memoryview((TARGETS).to_bytes(8, "little") * 4)
        for name in BACKENDS:
            prepared = scan_backend.prepare([], [], [], backend=name)
            assert prepared.classify(window) == ([], [], [], 0)

    def test_backend_selection(self):
        assert scan_backend.get_backend("stdlib") is scan_backend._StdlibBackend
        assert scan_backend.get_backend(None) is scan_backend.ACTIVE
        with pytest.raises(ValueError):
            scan_backend.get_backend("no-such-backend")


# -- indexed scan_range vs reference on a real resolver ------------------------

_WORD = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=2**64 - 1),
)


class TestIndexedScanEquivalence:
    """``scan_range(index=...)`` against the per-word reference, driven by
    a real resolver over a booted world — including nested tag regions
    (the index must reproduce the cascade's gap quirk, not "fix" it) and
    the guard gap past each mapping's end."""

    def _world_with_tags(self):
        program = make_test_program([])
        kernel, session, proc = boot_test_program(program)
        outer = StructType("outer", [("a", INT64), ("b", INT64)])
        raw = proc.crt.malloc(64)
        proc.tags.register(raw, outer, origin="heap")
        proc.tags.register(raw + 8, INT32, origin="heap")  # nested tag
        proc.crt.malloc(48)
        return proc, raw

    @given(
        offsets=st.lists(st.integers(min_value=-16, max_value=96), min_size=1, max_size=48),
        noise=st.lists(_WORD, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_indexed_scan_matches_reference(self, offsets, noise):
        proc, raw = self._world_with_tags()
        space = proc.space
        space.map(4096, address=REGION)
        words = [raw + off for off in offsets] + list(noise)
        for index, word in enumerate(words):
            space.write_word(REGION + index * 8, word % 2**64)
        resolver = AddressResolver(proc)
        resolver.build_index()
        try:
            bounds = resolver.scan_bounds()
            prepared = resolver.scan_index()
            ref = scan_range_ref(
                space, REGION, len(words) * 8, resolver.resolve_for_scan
            )
            fast = scan_range(
                space, REGION, len(words) * 8, resolver.resolve_for_scan,
                bounds=bounds, index=prepared,
            )
        finally:
            resolver.drop_index()
        assert _key(fast[0]) == _key(ref[0])
        assert fast[1] == ref[1]


# -- span-coalesced transfer writes vs per-word writes -------------------------

# A write plan: runs of (gap, chunk sizes).  Gap 0 makes runs adjacent —
# the coalescing case; positive gaps force flushes.
_RUN = st.tuples(
    st.integers(min_value=0, max_value=64),
    st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=8),
)


class TestSpanWriterEquivalence:
    @given(
        runs=st.lists(_RUN, min_size=1, max_size=12),
        payload=st.binary(min_size=1, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_coalesced_bytes_and_faults_identical(self, runs, payload):
        direct = AddressSpace()
        spanned = AddressSpace()
        for space in (direct, spanned):
            space.map(64 * 1024, address=REGION)
            space.clear_soft_dirty()
        writer = SpanWriter(spanned)
        cursor = REGION
        for gap, chunks in runs:
            cursor += gap
            for size in chunks:
                data = (payload * size)[:size]
                direct.write_bytes(cursor, data)
                writer.write_bytes(cursor, data)
                cursor += size
        writer.close()
        assert spanned.read_bytes(REGION, cursor - REGION) == direct.read_bytes(
            REGION, cursor - REGION
        )
        assert spanned.soft_dirty_faults == direct.soft_dirty_faults
        assert spanned.dirty_page_count() == direct.dirty_page_count()
        # Coalescing really happened: emitted spans never exceed absorbed
        # writes, and overwrites are not reordered (checked above by the
        # byte comparison since later writes win in both paths).
        assert writer.spans_emitted <= writer.writes_absorbed

    def test_overlapping_rewrite_preserves_order(self):
        # A non-adjacent write *behind* the pending span must flush first
        # so the destination sees the same final bytes as the direct path.
        direct = AddressSpace()
        spanned = AddressSpace()
        for space in (direct, spanned):
            space.map(4096, address=REGION)
        writer = SpanWriter(spanned)
        for address, data in [
            (REGION, b"aaaa"), (REGION + 4, b"bbbb"), (REGION + 2, b"XY"),
        ]:
            direct.write_bytes(address, data)
            writer.write_bytes(address, data)
        writer.close()
        assert spanned.read_bytes(REGION, 8) == direct.read_bytes(REGION, 8)
        assert spanned.read_bytes(REGION, 8) == b"aaXYbbbb"
