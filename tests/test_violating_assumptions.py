"""Paper §7, "Violating Assumptions", as executable scenarios.

Each test builds a program "found in the wild" that violates one of MCR's
annotationless assumptions and checks that MCR reacts the way the paper
says it should: a flagged conflict and a clean rollback — never silent
corruption — or a documented limitation.
"""

import struct

import pytest

from repro.errors import ConflictError
from repro.kernel import Kernel, sim_function
from repro.mcr.controller import LiveUpdateController
from repro.mcr.diagnostics import explain_conflict
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, Program, load_program
from repro.types.descriptors import INT64, PointerType


def _program(main, name, version="1", globals_=None, qps=None):
    return Program(
        name=name,
        version=version,
        globals_=globals_ or [GlobalVar("g", INT64)],
        main=main,
        types={},
        quiescent_points=qps or {(main.__name__, "nanosleep")},
    )


def _boot(kernel, program):
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=200_000)
    assert session.startup_complete
    return session, root


class TestNondeterministicProcessModel:
    """§7: "(ii) nondeterministic process model (e.g., a server dynamically
    adjusting worker processes depending on the load)"."""

    def _make(self, version):
        @sim_function
        def worker_body(sys):
            while True:
                sys.loop_iter("w")
                yield from sys.nanosleep(10_000_000)

        @sim_function
        def adaptive_main(sys):
            # Worker count read from "load" at startup: changes between
            # record time and replay time.
            load_fd = yield from sys.open("/proc/load")
            load = int((yield from sys.read(load_fd)).decode())
            yield from sys.close(load_fd)
            for _ in range(load):
                yield from sys.fork(worker_body, name="adaptive-worker")
            while True:
                sys.loop_iter("m")
                yield from sys.nanosleep(10_000_000)

        program = _program(
            adaptive_main, "adaptive", version,
            qps={("adaptive_main", "nanosleep"), ("worker_body", "nanosleep")},
        )
        return program

    def test_shrunk_worker_count_is_flagged(self, kernel):
        kernel.fs.create("/proc/load", b"2")
        session, root = _boot(kernel, self._make("1"))
        assert len(root.tree()) == 3  # master + 2 workers
        # Load changed: the new version starts only 1 worker, but the old
        # version has 2 live worker processes carrying state.  One old
        # process has no new-version counterpart -> transfer cannot pair
        # it -> rollback (the paper's "more sophisticated process mapping
        # strategies" manual-effort case).
        kernel.fs.create("/proc/load", b"1")
        result = LiveUpdateController(kernel, session, self._make("2")).run_update()
        assert result.rolled_back
        # v1 intact.
        assert len(root.tree()) == 3
        assert all(not p.exited for p in root.tree())

    def test_grown_worker_count_handled_gracefully(self, kernel):
        """The grow direction works: matched forks replay with forced
        pids, surplus forks run live as fresh (stateless) workers."""
        kernel.fs.create("/proc/load", b"2")
        session, root = _boot(kernel, self._make("1"))
        kernel.fs.create("/proc/load", b"4")
        result = LiveUpdateController(kernel, session, self._make("2")).run_update()
        assert result.committed, result.error
        assert len(result.new_root.tree()) == 5  # master + 4 workers

    def test_stable_worker_count_is_fine(self, kernel):
        kernel.fs.create("/proc/load", b"2")
        session, root = _boot(kernel, self._make("1"))
        result = LiveUpdateController(kernel, session, self._make("2")).run_update()
        assert result.committed, result.error
        assert len(result.new_root.tree()) == 3


class TestPointerOnDisk:
    """§7: "storing a pointer on the disk" — an immutable object MCR's
    run-time system does not support; tracing cannot see or fix it."""

    def _make(self, version):
        @sim_function
        def disk_ptr_main(sys):
            crt = sys.process.crt
            while True:
                sys.loop_iter("m")
                result = yield from sys.nanosleep(10_000_000)
                if crt.gget("g") == 0:
                    # Post-startup: allocate a node and persist its
                    # *address* to disk (the anti-pattern).
                    node = crt.malloc(32)
                    sys.process.space.write_bytes(node, b"payload!")
                    crt.gset("g", node)
                    fd = yield from sys.open("/var/cache/ptr", "w")
                    yield from sys.write(fd, struct.pack("<Q", node))
                    yield from sys.close(fd)

        return _program(
            disk_ptr_main, "diskptr", version,
            globals_=[GlobalVar("g", INT64)],
        )

    def test_disk_pointer_goes_stale_silently(self, kernel):
        """The update succeeds (tracing cannot know about the file), but
        the on-disk pointer no longer matches the transferred object —
        the documented limitation."""
        session, root = _boot(kernel, self._make("1"))
        kernel.run(max_ns=50_000_000, max_steps=50_000)  # let it persist
        old_node = root.crt.gget("g")
        assert old_node != 0
        disk_value = struct.unpack("<Q", kernel.fs.read("/var/cache/ptr"))[0]
        assert disk_value == old_node
        result = LiveUpdateController(kernel, session, self._make("2")).run_update()
        assert result.committed, result.error
        new_root = result.new_root
        new_node = new_root.crt.gget("g")
        # The in-memory pointer was translated; g is an int64 global whose
        # value happened to be scanned as a likely pointer -> target kept
        # immutable -> same address. The DISK copy, though, is outside
        # MCR's reach by definition: assert it was not rewritten by MCR
        # (it is only still correct because the target was pinned).
        disk_after = struct.unpack("<Q", kernel.fs.read("/var/cache/ptr"))[0]
        assert disk_after == disk_value
        # Document the hazard: if the object HAD been relocated (e.g. a
        # typed object under precise tracing), the disk copy would dangle.


class TestSelfInstanceDetection:
    """§7: "(iii) nonreplayed operations actively trying to violate MCR
    semantics (e.g., a server aborting initialization when detecting
    another running instance)" — httpd's case, trivially fixed at design
    time (the 8-LOC preparation)."""

    def test_reference(self, kernel):
        # Covered end-to-end in tests/test_server_updates.py::
        # TestHttpdUpdates::test_unprepared_httpd_update_rolls_back; here
        # we just assert the diagnostics know about the pattern.
        from repro.errors import QuiescenceTimeout

        advice = explain_conflict(QuiescenceTimeout("laggard"))
        assert "quiescent point" in advice.lower() or "profiler" in advice.lower()


class TestUnsupportedImmutableObject:
    """§7: "(i) unsupported immutable objects (e.g., process-specific IDs
    with no namespace support ... stored into global variables)"."""

    def _make(self, version):
        @sim_function
        def shm_main(sys):
            crt = sys.process.crt
            # Model a System-V-style ID: a kernel-global, non-namespaced
            # counter value captured at startup and stored in a global.
            shm_id = sys.kernel.net._next_pair_id  # no namespace for these
            a, b = yield from sys.socketpair()
            crt.gset("g", shm_id)
            while True:
                sys.loop_iter("m")
                yield from sys.nanosleep(10_000_000)

        return _program(shm_main, "shm", version)

    def test_nonnamespaced_id_differs_after_update(self, kernel):
        """The update commits, but the captured kernel-global ID in the
        new version's memory no longer matches a live object — exactly why
        the paper calls for namespace support or annotations."""
        session, root = _boot(kernel, self._make("1"))
        old_id = root.crt.gget("g")
        result = LiveUpdateController(kernel, session, self._make("2")).run_update()
        assert result.committed, result.error
        # The global was startup-initialized and clean -> the new version
        # keeps ITS OWN value, which differs (the pair-id counter moved on).
        new_id = result.new_root.crt.gget("g")
        assert new_id != old_id
