"""Tests for the memory substrate: pages, address spaces, allocators, tags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocatorError, MemoryFault
from repro.mem.address_space import AddressSpace, HEAP_BASE
from repro.mem.pages import PAGE_SIZE, PageTracker
from repro.mem.ptmalloc import HEADER_SIZE, PtMallocHeap
from repro.mem.regions import NestedPool, RegionAllocator, SlabAllocator
from repro.mem.tags import ORIGIN_HEAP, ORIGIN_STATIC, TagStore
from repro.types.descriptors import INT32, StructType


class TestPageTracker:
    def test_everything_dirty_before_first_clear(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        assert tracker.is_dirty(0)
        assert tracker.dirty_page_count() == 4

    def test_clear_then_clean(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        tracker.clear()
        assert not tracker.is_dirty(0)
        assert tracker.dirty_page_count() == 0

    def test_write_dirties_pages(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        tracker.clear()
        faults = tracker.note_write(PAGE_SIZE - 2, 4)  # straddles two pages
        assert faults == 2
        assert tracker.is_dirty(0) and tracker.is_dirty(PAGE_SIZE)
        assert not tracker.is_dirty(2 * PAGE_SIZE)

    def test_second_write_no_fault(self):
        tracker = PageTracker(0, PAGE_SIZE)
        tracker.clear()
        assert tracker.note_write(0, 8) == 1
        assert tracker.note_write(8, 8) == 0  # page already dirty

    def test_range_dirty(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        tracker.clear()
        tracker.note_write(2 * PAGE_SIZE + 100, 1)
        assert tracker.range_dirty(2 * PAGE_SIZE, 10)
        assert not tracker.range_dirty(0, PAGE_SIZE)

    def test_clone_before_first_clear_stays_all_dirty(self):
        tracker = PageTracker(0, 2 * PAGE_SIZE)
        twin = tracker.clone()
        # Never-cleared semantics must survive fork: every page dirty.
        assert not twin._cleared_once
        assert twin.dirty_page_count() == 2
        assert twin.is_dirty(PAGE_SIZE)

    def test_clone_preserves_soft_dirty_state(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        tracker.note_write(3 * PAGE_SIZE, 8)  # resident before clear
        tracker.clear()
        tracker.note_write(PAGE_SIZE, 8)
        twin = tracker.clone()
        assert twin._cleared_once
        assert twin._dirty == {1}
        assert twin.ever_written == {1, 3}
        assert twin.fault_count == tracker.fault_count
        assert twin.is_dirty(PAGE_SIZE) and not twin.is_dirty(0)

    def test_clone_is_independent(self):
        tracker = PageTracker(0, 2 * PAGE_SIZE)
        tracker.clear()
        twin = tracker.clone()
        twin.note_write(0, 8)
        assert twin.is_dirty(0)
        assert not tracker.is_dirty(0)
        tracker.note_write(PAGE_SIZE, 8)
        assert not twin.is_dirty(PAGE_SIZE)

    def test_range_written_since(self):
        tracker = PageTracker(0, 4 * PAGE_SIZE)
        tracker.note_write(0, 8)
        seq = tracker.write_seq
        assert not tracker.range_written_since(0, PAGE_SIZE, seq)
        tracker.note_write(2 * PAGE_SIZE, 8)
        assert not tracker.range_written_since(0, PAGE_SIZE, seq)
        assert tracker.range_written_since(2 * PAGE_SIZE, 8, seq)
        assert tracker.range_written_since(0, 4 * PAGE_SIZE, seq)  # overlaps page 2

    def test_write_sequencing_independent_of_soft_dirty(self):
        tracker = PageTracker(0, 2 * PAGE_SIZE)
        tracker.note_write(0, 8)
        seq = tracker.write_seq
        # clear() resets soft-dirty bits but must not disturb sequencing:
        # the update-time dirty filter and the scan cache are independent.
        tracker.clear()
        assert not tracker.is_dirty(0)
        assert not tracker.range_written_since(0, PAGE_SIZE, seq)
        tracker.note_write(0, 8)
        assert tracker.range_written_since(0, PAGE_SIZE, seq)


class TestAddressSpace:
    def test_map_read_write(self, space):
        m = space.map(8192, address=0x20000, name="t")
        space.write_bytes(0x20010, b"hello")
        assert space.read_bytes(0x20010, 5) == b"hello"

    def test_unmapped_read_faults(self, space):
        with pytest.raises(MemoryFault):
            space.read_bytes(0x999000, 4)

    def test_overlap_rejected(self, space):
        space.map(4096, address=0x20000)
        with pytest.raises(MemoryFault):
            space.map(4096, address=0x20000, fixed=True)

    def test_cross_mapping_write_faults(self, space):
        space.map(4096, address=0x20000)
        with pytest.raises(MemoryFault):
            space.write_bytes(0x20000 + 4090, b"0123456789")

    def test_word_roundtrip(self, space):
        space.map(4096, address=0x20000)
        space.write_word(0x20008, 0xABCDEF)
        assert space.read_word(0x20008) == 0xABCDEF

    def test_soft_dirty_interface(self, space):
        space.map(4096, address=0x20000)
        space.clear_soft_dirty()
        assert not space.range_dirty(0x20000, 64)
        space.write_bytes(0x20000, b"x")
        assert space.range_dirty(0x20000, 64)
        assert space.soft_dirty_faults == 1

    def test_clone_preserves_bytes_and_tracking(self, space):
        space.map(4096, address=0x20000)
        space.write_bytes(0x20000, b"abc")
        space.clear_soft_dirty()
        twin = space.clone()
        assert twin.read_bytes(0x20000, 3) == b"abc"
        assert not twin.range_dirty(0x20000, 4)
        twin.write_bytes(0x20000, b"z")
        assert twin.range_dirty(0x20000, 4)
        assert not space.range_dirty(0x20000, 4)  # independent after clone

    def test_unmap(self, space):
        m = space.map(4096, address=0x20000)
        space.unmap(0x20000)
        assert not space.is_mapped(0x20000)

    def test_anonymous_mmap_allocates_distinct(self, space):
        a = space.map(4096)
        b = space.map(4096)
        assert a.base != b.base

    def test_guard_gap_fault_names_neighbours(self, space):
        space.map(4096, address=0x20000, name="left")
        space.map(4096, address=0x30000, name="right")
        with pytest.raises(MemoryFault) as exc:
            space.read_bytes(0x25000, 4)
        message = str(exc.value)
        assert "left" in message and "right" in message
        assert "0x21000" in message and "0x30000" in message

    def test_fault_past_last_mapping_names_it(self, space):
        space.map(4096, address=0x20000, name="only")
        with pytest.raises(MemoryFault) as exc:
            space.write_bytes(0x22000, b"x")
        assert "past 'only'" in str(exc.value)

    def test_fault_in_empty_space(self):
        space = AddressSpace()
        with pytest.raises(MemoryFault) as exc:
            space.read_bytes(0x1000, 1)
        assert "no mappings exist" in str(exc.value)

    def test_view_is_zero_copy(self, space):
        space.map(4096, address=0x20000)
        space.write_bytes(0x20010, b"before")
        window = space.view(0x20010, 6)
        assert bytes(window) == b"before"
        # A later write through the space is visible through the same
        # window: the view aliases the backing store, it is no snapshot.
        space.write_bytes(0x20010, b"after!")
        assert bytes(window) == b"after!"

    def test_view_faults_like_reads(self, space):
        space.map(4096, address=0x20000)
        with pytest.raises(MemoryFault):
            space.view(0x999000, 8)
        with pytest.raises(MemoryFault):
            space.view(0x20000 + 4090, 16)  # crosses mapping end

    def test_mapping_at_after_unmap(self, space):
        a = space.map(4096, address=0x20000, name="a")
        b = space.map(4096, address=0x30000, name="b")
        assert space.mapping_at(0x20000) is a  # prime the hit cache
        space.unmap(0x20000)
        assert space.mapping_at(0x20010) is None
        assert space.mapping_at(0x30010) is b

    def test_mapping_at_many_mappings(self, space):
        mapped = [space.map(4096, address=0x100000 + i * 0x10000) for i in range(16)]
        for m in mapped:
            assert space.mapping_at(m.base) is m
            assert space.mapping_at(m.end - 1) is m
            assert space.mapping_at(m.end) is None  # guard gap


class TestPtMalloc:
    def test_malloc_returns_aligned(self, heap):
        addr = heap.malloc(24)
        assert addr % 16 == 0

    def test_malloc_free_reuse(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        b = heap.malloc(64)
        assert b == a  # first-fit reuses the released span

    def test_free_unknown_raises(self, heap):
        with pytest.raises(AllocatorError):
            heap.free(0x12345)

    def test_double_free_raises(self, heap):
        a = heap.malloc(32)
        heap.free(a)
        with pytest.raises(AllocatorError):
            heap.free(a)

    def test_find_chunk(self, heap):
        a = heap.malloc(100)
        chunk = heap.find_chunk(a + 50)
        assert chunk is not None and chunk.user_base == a
        assert heap.find_chunk(a + 100) is None or heap.find_chunk(a + 100).user_base != a

    def test_header_in_band(self, heap, space):
        a = heap.malloc(32)
        size = int.from_bytes(space.read_bytes(a - HEADER_SIZE, 8), "little")
        assert size >= 32 + HEADER_SIZE

    def test_startup_flagging_and_deferred_free(self, startup_heap):
        a = startup_heap.malloc(32)
        assert startup_heap.find_chunk(a).startup
        startup_heap.free(a)  # deferred: address must NOT be reused
        b = startup_heap.malloc(32)
        assert b != a
        startup_heap.end_startup()
        # Now the deferred free ran; the address becomes reusable.
        c = startup_heap.malloc(32)
        assert c == a

    def test_malloc_at(self, heap):
        probe = heap.malloc(64)
        heap.free(probe)
        target = probe  # known-free user address
        addr = heap.malloc_at(target, 64)
        assert addr == target

    def test_malloc_at_occupied_raises(self, heap):
        a = heap.malloc(64)
        with pytest.raises(AllocatorError):
            heap.malloc_at(a, 64)

    def test_reserve_range_blocks_allocation(self, heap):
        base = heap.base + 1024
        heap.reserve_range(base, 4096)
        seen = {heap.malloc(256) for _ in range(64)}
        for addr in seen:
            chunk = heap.find_chunk(addr)
            assert chunk.base + chunk.total_size <= base or chunk.base >= base + 4096

    def test_release_reserved(self, heap):
        base = heap.base + 1024
        heap.reserve_range(base, 4096)
        heap.release_reserved(base)
        with pytest.raises(AllocatorError):
            heap.release_reserved(base)

    def test_realloc_copies(self, heap, space):
        a = heap.malloc(16)
        space.write_bytes(a, b"0123456789abcdef")
        b = heap.realloc(a, 64)
        assert space.read_bytes(b, 16) == b"0123456789abcdef"

    def test_freed_memory_scrubbed(self, heap, space):
        a = heap.malloc(16)
        space.write_word(a, 0xDEAD)
        heap.free(a)
        assert space.read_word(a) == 0

    def test_clone_into(self, heap, space):
        a = heap.malloc(32)
        space.write_bytes(a, b"payload")
        twin_space = space.clone()
        twin = heap.clone_into(twin_space)
        assert twin.find_chunk(a).user_base == a
        b = twin.malloc(32)
        assert b != a  # occupied in the clone too
        assert twin_space.read_bytes(a, 7) == b"payload"

    @given(st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_alloc_free_all_invariant(self, sizes):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        heap.end_startup()
        free_before = heap._free.total_free()
        addrs = [heap.malloc(s) for s in sizes]
        assert len(set(addrs)) == len(addrs)  # no overlap
        for addr in addrs:
            heap.free(addr)
        assert heap._free.total_free() == free_before  # full coalescing
        assert heap.live_chunk_count() == 0


class TestRegions:
    def test_region_bump(self, heap):
        region = RegionAllocator(heap, block_size=1024)
        a = region.alloc(100)
        b = region.alloc(100)
        assert b > a  # bump within the same block
        assert region.block_count() == 1

    def test_region_grows_blocks(self, heap):
        region = RegionAllocator(heap, block_size=256)
        for _ in range(10):
            region.alloc(200)
        assert region.block_count() > 1

    def test_region_oversized(self, heap):
        region = RegionAllocator(heap, block_size=256)
        addr = region.alloc(5000)
        assert addr != 0

    def test_region_destroy_releases(self, heap):
        live = heap.live_chunk_count()
        region = RegionAllocator(heap, block_size=256)
        region.alloc(100)
        region.destroy()
        assert heap.live_chunk_count() == live

    def test_slab_reuse(self, heap):
        slab = SlabAllocator(heap)
        a = slab.alloc(100)  # -> class 128
        slab.free(a, 100)
        b = slab.alloc(120)
        assert b == a  # same size class slot reused

    def test_slab_too_large(self, heap):
        slab = SlabAllocator(heap)
        with pytest.raises(AllocatorError):
            slab.alloc(1 << 20)

    def test_nested_pool_cascade(self, heap):
        root = NestedPool(heap, name="root", block_size=256)
        child = root.create_child("child")
        grandchild = child.create_child("gc")
        grandchild.alloc(64)
        root.destroy()
        assert child.destroyed and grandchild.destroyed

    def test_destroyed_pool_rejects_alloc(self, heap):
        pool = NestedPool(heap, block_size=256)
        pool.destroy()
        with pytest.raises(AllocatorError):
            pool.alloc(8)

    def test_pool_clear_keeps_usable(self, heap):
        pool = NestedPool(heap, block_size=256)
        pool.alloc(64)
        pool.clear()
        assert not pool.destroyed
        pool.alloc(64)


class TestTagStore:
    def test_register_lookup(self):
        tags = TagStore()
        t = StructType("s", [("a", INT32)])
        tag = tags.register(0x1000, t, ORIGIN_HEAP, site="main/alloc")
        assert tags.lookup(0x1000) is tag
        assert tags.find_containing(0x1002) is tag
        assert tags.find_containing(0x1004) is None

    def test_unregister(self):
        tags = TagStore()
        tags.register(0x1000, INT32, ORIGIN_STATIC)
        assert tags.unregister(0x1000) is not None
        assert tags.lookup(0x1000) is None

    def test_reregistration_replaces(self):
        tags = TagStore()
        tags.register(0x1000, INT32, ORIGIN_HEAP)
        tags.register(0x1000, StructType("s", [("a", INT32)]), ORIGIN_HEAP)
        assert len(tags) == 1
        assert tags.lookup(0x1000).type.name == "s"

    def test_origin_filter(self):
        tags = TagStore()
        tags.register(0x1000, INT32, ORIGIN_HEAP)
        tags.register(0x2000, INT32, ORIGIN_STATIC)
        assert len(list(tags.tags(origin=ORIGIN_HEAP))) == 1

    def test_overhead_accounting(self):
        tags = TagStore()
        assert tags.overhead_bytes() == 0
        tags.register(0x1000, INT32, ORIGIN_HEAP)
        assert tags.overhead_bytes() > 0

    def test_clone_independent(self):
        tags = TagStore()
        tags.register(0x1000, INT32, ORIGIN_HEAP)
        twin = tags.clone()
        twin.unregister(0x1000)
        assert tags.lookup(0x1000) is not None


class TestStartupModeEdges:
    """Global-separability hardening: a deferred free is logically dead.

    During startup, frees are deferred so no startup-time address is ever
    reused (paper §5).  The deferred chunk stays *resident*, which made a
    second free or a realloc of it silently corrupt the deferred-free
    accounting — both are the same use-after-free they would be outside
    startup mode and must raise.
    """

    def _heap(self):
        return PtMallocHeap(AddressSpace())

    def test_startup_double_free_raises(self):
        heap = self._heap()
        a = heap.malloc(64)
        heap.free(a)  # deferred, chunk stays resident
        with pytest.raises(AllocatorError):
            heap.free(a)

    def test_startup_realloc_of_freed_address_raises(self):
        heap = self._heap()
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(AllocatorError):
            heap.realloc(a, 128)

    def test_deferred_free_defers_until_end_startup(self):
        heap = self._heap()
        a = heap.malloc(64)
        heap.free(a)
        assert heap.malloc(64) != a  # no startup-time address reuse
        live = heap.live_chunk_count()
        heap.end_startup()
        assert heap.live_chunk_count() == live - 1  # now actually released
        assert not heap._deferred_frees and not heap._deferred

    def test_end_startup_restores_normal_free_semantics(self):
        heap = self._heap()
        heap.end_startup()
        a = heap.malloc(64)
        heap.free(a)  # immediate outside startup mode
        assert heap.live_chunk_count() == 0
        with pytest.raises(AllocatorError):
            heap.free(a)

    def test_clone_preserves_deferred_accounting(self):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        a = heap.malloc(64)
        heap.free(a)
        twin = heap.clone_into(space.clone())
        with pytest.raises(AllocatorError):
            twin.free(a)  # still a double free in the twin
        twin.end_startup()
        assert not twin._deferred and not twin._deferred_frees
        # The original is untouched by the twin's end_startup.
        assert a in heap._deferred
