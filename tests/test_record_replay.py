"""Record/replay: RNG streams, trace equivalence, replay-to-failure.

The determinism story this PR banks on: the cooperative kernel plus the
virtual clock make a scenario a pure function of (spec, master seed), so
a recorded run must replay **bit-identically** — every RNG draw, the
scheduler pick checkpoints, the final virtual clock, the span-tree CRC,
and the tree-fingerprint CRC.  These tests pin that property across all
five scenario servers, both update modes, with and without faults, and
check that the replayer *detects* divergence when a trace is tampered
with (a diverging replay that reported EQUIVALENT would be worse than no
replayer at all).
"""

from __future__ import annotations

import ast
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replay import (
    Divergence,
    Replayer,
    RngRegistry,
    RngStream,
    TraceLog,
    default_spec,
    replay_path,
    run_scenario,
)
from repro.replay.rng import derive_seed
from repro.replay.trace import tracing

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


# -- RngStream / RngRegistry units -------------------------------------------


def test_stream_matches_stdlib_sequence():
    """Explicit seed => the exact random.Random(seed) sequence.

    This is what made rerouting FaultArm._rng and scanperf's pointer
    field through the registry a no-op for their recorded outputs.
    """
    stream = RngStream("t", 1234)
    reference = random.Random(1234)
    assert [stream.random() for _ in range(5)] == [
        reference.random() for _ in range(5)
    ]
    stream.reset()
    reference = random.Random(1234)
    assert stream.randint(1, 100) == reference.randint(1, 100)
    assert stream.getrandbits(48) == reference.getrandbits(48)
    seq = ["a", "b", "c", "d"]
    assert stream.choice(seq) == reference.choice(seq)


def test_stream_indices_count_draws():
    stream = RngStream("t", 0)
    assert stream.index == 0
    stream.random()
    stream.randint(0, 9)
    assert stream.index == 2
    stream.reset()
    assert stream.index == 0


def test_derive_seed_is_stable_and_name_sensitive():
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_registry_memoizes_streams():
    registry = RngRegistry(7)
    first = registry.stream("faults.x")
    assert registry.stream("faults.x") is first
    assert registry.stream("faults.y") is not first
    # Same master seed, fresh registry => identical sequences.
    again = RngRegistry(7).stream("faults.x")
    twice = RngRegistry(7).stream("faults.x")
    assert [again.random() for _ in range(3)] == [
        twice.random() for _ in range(3)
    ]


def test_registry_rejects_conflicting_explicit_seed():
    registry = RngRegistry(0)
    registry.stream("s", seed=1)
    assert registry.stream("s", seed=1).seed == 1
    with pytest.raises(ValueError):
        registry.stream("s", seed=2)


def test_choice_draw_is_logged_as_index():
    """Trace draws must be JSON-exact; choice logs the int index."""
    trace = TraceLog.record(default_spec("simple"))
    with tracing(trace):
        stream = RngStream("t", 99)
        picked = stream.choice(["p", "q", "r"])
    assert len(trace.draws) == 1
    name, index, value = trace.draws[0]
    assert (name, index) == ("t", 0)
    assert isinstance(value, int)
    assert ["p", "q", "r"][value] == picked


# -- record -> replay equivalence across the matrix --------------------------

SCENARIOS = [
    default_spec("simple"),
    default_spec("memcache", faults=[{"site": "restart.fd_handoff", "nth": 1}]),
    default_spec(
        "httpd",
        mode="rolling",
        faults=[{"site": "transfer.memory", "probability": 0.4, "seed": 7}],
        workload={"requests": 12, "concurrency": 2, "jitter_ns": 50_000},
    ),
    default_spec(
        "nginx",
        workload={"requests": 10, "jitter_ns": 25_000},
        holders=1,
    ),
    default_spec("vsftpd", faults=[{"site": "commit.critical", "nth": 1}]),
]


@pytest.mark.parametrize(
    "spec", SCENARIOS, ids=[f"{s['server']}-{s['mode']}" for s in SCENARIOS]
)
def test_record_then_replay_is_equivalent(spec):
    recorded = TraceLog.record(spec)
    run_scenario(spec, trace=recorded)
    assert recorded.final["clock_ns"] > 0
    replay = TraceLog.replay_of(recorded)
    outcome = run_scenario(spec, trace=replay)
    assert replay.equivalent, [str(d) for d in replay.divergences]
    assert outcome.raised is None
    # The digest covers the whole tree: virtual clock, span tree,
    # surviving fingerprint, and the update outcome fields.
    assert replay.final == recorded.final
    assert replay.checkpoints == recorded.checkpoints
    assert replay.draws == recorded.draws


def test_replay_to_failure_stops_at_the_fault_site():
    spec = default_spec("simple", faults=[{"site": "transfer.memory", "nth": 1}])
    recorded = TraceLog.record(spec)
    full = run_scenario(spec, trace=recorded)
    assert full.result is not None and full.result.rolled_back
    replay = TraceLog.replay_of(recorded)
    partial = run_scenario(spec, trace=replay, until_failure=True)
    assert replay.equivalent, [str(d) for d in replay.divergences]
    assert partial.result.failure_site == "transfer.memory"
    # Partial run: probe never ran, so fewer steps than the recording.
    assert partial.kernel.steps_executed < full.kernel.steps_executed


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    probability=st.floats(min_value=0.05, max_value=0.95),
    jitter_ns=st.sampled_from([0, 25_000, 100_000]),
)
def test_property_replay_bit_identical(seed, probability, jitter_ns):
    """Any seed x fault probability x jitter replays bit-identically."""
    spec = default_spec(
        "httpd",
        seed=seed,
        faults=[
            {
                "site": "transfer.memory",
                "probability": round(probability, 3),
                "seed": seed % 1000,
            }
        ],
        workload={"requests": 6, "concurrency": 1, "jitter_ns": jitter_ns},
        holders=0,
    )
    recorded = TraceLog.record(spec)
    run_scenario(spec, trace=recorded)
    replay = TraceLog.replay_of(recorded)
    run_scenario(spec, trace=replay)
    assert replay.equivalent, [str(d) for d in replay.divergences]


# -- divergence detection -----------------------------------------------------


def _recorded_httpd_trace():
    spec = default_spec(
        "httpd",
        faults=[{"site": "transfer.memory", "probability": 0.5, "seed": 3}],
        workload={"requests": 8, "concurrency": 1, "jitter_ns": 40_000},
        holders=0,
    )
    trace = TraceLog.record(spec)
    run_scenario(spec, trace=trace)
    assert trace.draws, "fixture needs at least one RNG draw to tamper with"
    return spec, trace


def test_tampered_draw_is_reported_as_divergence():
    spec, recorded = _recorded_httpd_trace()
    doctored = TraceLog.from_dict(recorded.to_dict())
    doctored.draws[0][2] = 0.123456789  # not what the stream will produce
    replay = TraceLog.replay_of(doctored)
    run_scenario(spec, trace=replay)
    assert not replay.equivalent
    assert any(d.kind == "rng" for d in replay.divergences)


def test_tampered_final_clock_is_reported_as_divergence():
    spec, recorded = _recorded_httpd_trace()
    doctored = TraceLog.from_dict(recorded.to_dict())
    doctored.final["clock_ns"] += 1
    replay = TraceLog.replay_of(doctored)
    run_scenario(spec, trace=replay)
    assert not replay.equivalent
    assert any(d.kind == "final" and "clock_ns" in d.where
               for d in replay.divergences)


def test_divergences_never_raise_out_of_the_update():
    """Replay mismatches are collected, not raised: the safety property
    under test (live_update never throws) must hold during replay too."""
    spec, recorded = _recorded_httpd_trace()
    doctored = TraceLog.from_dict(recorded.to_dict())
    for draw in doctored.draws:
        draw[2] = 0.5
    replay = TraceLog.replay_of(doctored)
    outcome = run_scenario(spec, trace=replay)  # must not raise
    assert outcome.raised is None
    assert not replay.equivalent


# -- trace files, blackbox pairing, the CLI ----------------------------------


def test_trace_save_load_round_trip(tmp_path):
    spec = default_spec("simple")
    recorded = TraceLog.record(spec)
    run_scenario(spec, trace=recorded)
    path = tmp_path / "run.trace.json"
    recorded.save(str(path))
    loaded = TraceLog.load(str(path))
    assert loaded.to_dict() == recorded.to_dict()
    # Canonical JSON: saving the loaded trace is byte-identical.
    second = tmp_path / "again.trace.json"
    loaded.save(str(second))
    assert path.read_bytes() == second.read_bytes()


def test_blackbox_embeds_trace_reference_and_replays(tmp_path):
    from repro.bench.faultmatrix import run_cell

    blackbox = tmp_path / "cell_blackbox.json"
    trace_path = tmp_path / "cell_blackbox.trace.json"
    cell = run_cell(
        "simple",
        "transfer.memory",
        blackbox_path=str(blackbox),
        trace_path=str(trace_path),
    )
    assert cell["blackbox"] and blackbox.exists() and trace_path.exists()
    payload = json.loads(blackbox.read_text())
    assert payload["trace"]["format"] == "repro-trace-v1"
    assert payload["trace"]["path"] == str(trace_path)
    report = replay_path(str(blackbox), to_failure=True)
    assert report.equivalent
    assert report.failure_site_recorded == "transfer.memory"
    assert report.failure_site_replayed == "transfer.memory"
    assert report.open_spans  # the span stack parked at the failure


def test_blackbox_without_trace_reference_is_rejected(tmp_path):
    bogus = tmp_path / "plain_blackbox.json"
    bogus.write_text(json.dumps({"reason": "rollback", "entries": []}))
    with pytest.raises(ValueError):
        Replayer(str(bogus))


def test_replayer_falls_back_to_inline_scenario(tmp_path):
    """If the trace file vanished, the embedded spec still re-executes
    (degraded outcome-identity mode, keyed on the failure site)."""
    from repro.bench.faultmatrix import run_cell

    blackbox = tmp_path / "bb.json"
    trace_path = tmp_path / "bb.trace.json"
    run_cell(
        "simple",
        "transfer.memory",
        blackbox_path=str(blackbox),
        trace_path=str(trace_path),
    )
    os.unlink(trace_path)
    report = replay_path(str(blackbox))
    assert report.mode == "scenario"
    assert report.equivalent
    assert report.failure_site_replayed == "transfer.memory"


def test_replay_export_writes_chrome_trace_and_report(tmp_path):
    spec = default_spec("simple", faults=[{"site": "commit.prepare", "nth": 1}])
    recorded = TraceLog.record(spec)
    run_scenario(spec, trace=recorded, trace_path=str(tmp_path / "t.trace.json"))
    recorded.save(recorded.path)
    base = tmp_path / "export"
    report = replay_path(recorded.path, export=str(base))
    assert report.equivalent
    chrome = json.loads((tmp_path / "export.chrome.json").read_text())
    assert chrome["traceEvents"]
    summary = json.loads((tmp_path / "export.report.json").read_text())
    assert summary["equivalent"] is True


def test_cli_replay_cross_process(tmp_path):
    """The acceptance path: a recorded trace replays bit-identically to
    the same failure site in a *fresh interpreter*."""
    spec = default_spec("simple", faults=[{"site": "transfer.memory", "nth": 1}])
    recorded = TraceLog.record(spec)
    run_scenario(spec, trace=recorded, trace_path=str(tmp_path / "x.trace.json"))
    recorded.save(recorded.path)
    env = dict(os.environ, PYTHONPATH=str(SRC_ROOT))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "replay", recorded.path, "--to-failure"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "replay EQUIVALENT" in proc.stdout
    assert "recorded=transfer.memory replayed=transfer.memory" in proc.stdout


# -- the randomness lint ------------------------------------------------------

# The only module allowed to import the stdlib ``random``: the choke
# point itself.  Everything else must draw through a named RngStream so
# record/replay sees it.
_RANDOM_IMPORT_ALLOWLIST = {Path("repro") / "replay" / "rng.py"}


def _random_imports(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                yield node.lineno


def test_lint_no_adhoc_random_outside_the_choke_point():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative in _RANDOM_IMPORT_ALLOWLIST:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        offenders.extend(f"{relative}:{line}" for line in _random_imports(tree))
    assert not offenders, (
        "ad-hoc `import random` outside repro.replay.rng breaks "
        f"record/replay; route draws through RngStream: {offenders}"
    )


def test_divergence_renders_its_context():
    d = Divergence("draw", "faults.transfer.memory[0]", 0.25, 0.75)
    text = str(d)
    assert "faults.transfer.memory[0]" in text
    assert "0.25" in text and "0.75" in text
