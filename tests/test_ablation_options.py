"""Tests for the optional mechanisms (paper's 'not implemented yet' items
and run-time policies) that this reproduction implements behind config."""

import pytest

from repro.mcr.config import MCRConfig
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import apply_invariants
from repro.mcr.tracing.transfer import StateTransfer
from repro.runtime.cruntime import SharedLib
from repro.runtime.program import GlobalVar
from repro.types.descriptors import ArrayType, CHAR, INT64, PointerType

from tests.helpers import boot_test_program, make_test_program
from repro.kernel import Kernel


def _world(globals_, kernel=None):
    program = make_test_program(globals_)
    return boot_test_program(program, kernel=kernel)


class TestInteriorOnlyNonupdatable:
    def _trace_with(self, interior_only, point_at_base):
        from repro.types.descriptors import INT32, StructType

        node = StructType("n", [("a", INT32), ("b", INT32), ("c", INT32)])
        kernel, session, proc = _world([GlobalVar("b", ArrayType(CHAR, 8))])
        crt = proc.crt
        # A *typed* target: precise tracing handles its interior, so only
        # the likely-pointer invariants decide its updatability.
        target = crt.malloc_typed(proc.threads[1], node)
        value = target if point_at_base else target + 4
        proc.space.write_word(crt.global_addr("b"), value)
        config = MCRConfig(interior_only_nonupdatable=interior_only)
        trace = apply_invariants(GraphBuilder(proc, config).build())
        return trace.objects[target]

    def test_strict_mode_pins_base_targets(self):
        record = self._trace_with(interior_only=False, point_at_base=True)
        assert record.immutable and record.nonupdatable

    def test_refined_mode_keeps_base_targets_updatable(self):
        record = self._trace_with(interior_only=True, point_at_base=True)
        assert record.immutable          # still cannot be relocated...
        assert not record.nonupdatable   # ...but can be type-transformed

    def test_refined_mode_still_pins_interior_targets(self):
        record = self._trace_with(interior_only=True, point_at_base=False)
        assert record.immutable and record.nonupdatable


class TestSharedLibTransfer:
    def _world_with_lib(self, kernel=None):
        kernel, session, proc = _world([GlobalVar("lib_ptr", PointerType(None))], kernel)
        lib = SharedLib(proc, "libstate", 8192)
        state = lib.alloc(64)
        proc.space.write_bytes(state, b"library-internal-state")
        proc.crt.gset("lib_ptr", state)
        return kernel, proc, lib, state

    def test_default_skips_library_contents(self):
        kernel, proc, lib, state = self._world_with_lib()
        trace = GraphBuilder(proc).build()
        record = trace.objects.get(state)
        assert record is not None  # the object is known (pointer target)...
        # ...but nothing *inside* it was scanned: a pointer hidden in lib
        # state is not discovered under the default policy.
        hidden_target = proc.crt.malloc(32)
        proc.space.write_word(state + 8, hidden_target)
        trace = GraphBuilder(proc).build()
        assert hidden_target not in trace.objects

    def test_opt_in_scans_library_state(self):
        kernel, proc, lib, state = self._world_with_lib()
        hidden_target = proc.crt.malloc(32)
        proc.space.write_word(state + 8, hidden_target)
        config = MCRConfig(transfer_shared_libs=True)
        trace = GraphBuilder(proc, config).build()
        assert hidden_target in trace.objects

    def test_opt_in_transfers_lib_bytes(self):
        kernel = Kernel()
        k, old, lib, state = self._world_with_lib(kernel)
        # New version with the same lib at the same base (prelink).
        program_v2 = make_test_program([GlobalVar("lib_ptr", PointerType(None))], version="2")
        program_v2.pinned_symbols = {}
        k2, s2, new = boot_test_program(program_v2, kernel=kernel)
        SharedLib(new, "libstate", 8192, base=lib.base)
        config = MCRConfig(transfer_shared_libs=True)
        StateTransfer(old, new, program_v2, config).run()
        assert new.space.read_bytes(state, 22) == b"library-internal-state"

    def test_default_does_not_transfer_lib_bytes(self):
        kernel = Kernel()
        k, old, lib, state = self._world_with_lib(kernel)
        program_v2 = make_test_program([GlobalVar("lib_ptr", PointerType(None))], version="2")
        k2, s2, new = boot_test_program(program_v2, kernel=kernel)
        SharedLib(new, "libstate", 8192, base=lib.base)
        StateTransfer(old, new, program_v2).run()
        assert new.space.read_bytes(state, 4) == b"\x00\x00\x00\x00"


class TestDirtyFilterSwitch:
    def test_disabled_filter_transfers_clean_objects(self):
        kernel = Kernel()
        program = make_test_program([GlobalVar("counter", INT64, init=7)])
        k1, s1, old = boot_test_program(program, kernel=kernel)
        program2 = make_test_program([GlobalVar("counter", INT64, init=7)], version="2")
        k2, s2, new = boot_test_program(program2, kernel=kernel)
        new.crt.gset("counter", 99)
        # counter is clean in old; with the filter off it transfers anyway.
        StateTransfer(old, new, program2, use_dirty_filter=False).run()
        assert new.crt.gget("counter") == 7
