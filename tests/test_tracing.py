"""Unit tests for mutable tracing: graph, conservative scan, invariants,
dirty filtering, and the type transformer."""

import pytest

from repro.errors import ConflictError
from repro.mcr.annotations import Annotations
from repro.mcr.config import MCRConfig
from repro.mcr.tracing.conservative import scan_range
from repro.mcr.tracing.dirty import DirtyFilter
from repro.mcr.tracing.graph import AddressResolver, GraphBuilder
from repro.mcr.tracing.invariants import (
    apply_invariants,
    immutable_heap_spans,
    immutable_static_symbols,
    invariant_counts,
)
from repro.mcr.tracing import precise
from repro.mcr.tracing.transform import default_value, transform_value, types_compatible
from repro.runtime.program import GlobalVar
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    OpaqueType,
    PointerType,
    StructType,
    UnionType,
)

from tests.helpers import boot_test_program, make_test_program

NODE = StructType("node", [("value", INT32), ("next", PointerType(None, name="node*"))])


def _booted_world(globals_, types=None):
    program = make_test_program(globals_, types=types)
    return boot_test_program(program)


class TestPreciseSlots:
    def test_pointer_slots_of_struct(self):
        slots = precise.pointer_slots(NODE)
        assert [off for off, _ in slots] == [8]

    def test_opaque_ranges_char_member(self):
        s = StructType("s", [("a", INT32), ("buf", ArrayType(CHAR, 12))])
        assert precise.opaque_ranges(s) == [(4, 12)]

    def test_union_is_fully_opaque(self):
        u = UnionType("u", [("x", INT64), ("p", PointerType(None))])
        assert precise.opaque_ranges(u) == [(0, 8)]

    def test_int_word_slots(self):
        s = StructType("s", [("a", INT32), ("b", INT64), ("c", INT64)])
        assert precise.int_word_slots(s) == [8, 16]

    def test_is_fully_precise(self):
        assert precise.is_fully_precise(NODE)
        assert not precise.is_fully_precise(OpaqueType(16))


class TestConservativeScan:
    def test_finds_aligned_pointer(self, space):
        space.map(4096, address=0x40000)
        space.map(4096, address=0x50000)
        space.write_word(0x40000, 0x50010)

        def resolve(value):
            if 0x50000 <= value < 0x51000:
                return (0x50000, 4096, None)
            return None

        found, scanned = scan_range(space, 0x40000, 64, resolve)
        assert len(found) == 1
        assert found[0].target_base == 0x50000
        assert found[0].interior  # 0x50010 != base
        assert scanned == 8

    def test_rejects_unresolvable_values(self, space):
        space.map(4096, address=0x40000)
        space.write_word(0x40000, 0x12345678AB)
        found, _ = scan_range(space, 0x40000, 64, lambda v: None)
        assert found == []

    def test_tag_alignment_rejection(self, space):
        space.map(4096, address=0x40000)
        space.write_word(0x40000, 0x50004)  # unaligned wrt an 8-aligned tag

        def resolve(value):
            return (0x50000, 64, 8)  # target align 8

        found, _ = scan_range(space, 0x40000, 16, resolve)
        assert found == []

    def test_zero_words_skipped(self, space):
        space.map(4096, address=0x40000)
        found, scanned = scan_range(space, 0x40000, 64, lambda v: (0, 64, None))
        assert found == [] and scanned == 8


class TestGraphBuilder:
    def test_traces_linked_list_precisely(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))],
            types={"node": NODE},
        )
        crt = proc.crt
        thread = proc.threads[1]
        n1 = crt.malloc_typed(thread, NODE)
        n2 = crt.malloc_typed(thread, NODE)
        crt.set(n1, NODE, "next", n2)
        crt.gset("head", n1)
        trace = GraphBuilder(proc).build()
        assert n1 in trace.objects and n2 in trace.objects
        assert len(trace.precise_pointers) == 2  # head->n1, n1->n2
        assert not trace.objects[n1].conservatively_traversed

    def test_untyped_chunk_is_conservative(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("buf_ptr", PointerType(None))]
        )
        crt = proc.crt
        raw = crt.malloc(64)
        target = crt.malloc(32)
        proc.space.write_word(raw, target)
        crt.gset("buf_ptr", raw)
        trace = apply_invariants(GraphBuilder(proc).build())
        assert trace.objects[raw].conservatively_traversed
        assert trace.objects[raw].immutable
        assert trace.objects[target].immutable
        assert trace.objects[target].nonupdatable
        assert any(p.kind == "likely" for p in trace.likely_pointers)

    def test_char_array_global_scanned(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("b", ArrayType(CHAR, 16))]
        )
        crt = proc.crt
        hidden = crt.malloc(32)
        proc.space.write_word(crt.global_addr("b"), hidden)
        trace = apply_invariants(GraphBuilder(proc).build())
        assert trace.objects[hidden].immutable

    def test_pointer_sized_int_policy(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("as_int", INT64)]
        )
        crt = proc.crt
        hidden = crt.malloc(32)
        crt.gset("as_int", hidden)
        trace = apply_invariants(GraphBuilder(proc).build())
        assert trace.objects[hidden].immutable

    def test_int_policy_can_be_disabled(self):
        kernel, session, proc = _booted_world([GlobalVar("as_int", INT64)])
        crt = proc.crt
        hidden = crt.malloc(32)
        crt.gset("as_int", hidden)
        config = MCRConfig(scan_opaque_int64=False)
        trace = apply_invariants(GraphBuilder(proc, config).build())
        assert hidden not in trace.objects

    def test_encoded_pointer_annotation_traces_precisely(self):
        kernel, session, proc = _booted_world([GlobalVar("enc", INT64)])
        crt = proc.crt
        thread = proc.threads[1]
        target = crt.malloc_typed(thread, NODE)
        crt.gset("enc", target | 0x3)
        annotations = Annotations()
        annotations.MCR_ANNOTATE_ENCODED_POINTER("enc", 0x3)
        trace = apply_invariants(GraphBuilder(proc, annotations=annotations).build())
        assert target in trace.objects
        assert not trace.objects[target].immutable  # precise, relocatable
        assert any(p.kind == "precise" for p in trace.precise_pointers)

    def test_forced_opaque_override(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))],
            types={"node": NODE},
        )
        crt = proc.crt
        thread = proc.threads[1]
        n1 = crt.malloc_typed(thread, NODE)
        crt.gset("head", n1)
        annotations = Annotations()
        annotations.MCR_FORCE_OPAQUE("head")
        trace = apply_invariants(GraphBuilder(proc, annotations=annotations).build())
        # The forced-opaque global is conservatively scanned -> target
        # becomes immutable instead of relocatable.
        assert trace.objects[n1].immutable

    def test_container_with_tagged_subobjects_scans_gaps_only(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("pool_root", PointerType(None))]
        )
        crt = proc.crt
        thread = proc.threads[1]
        region = crt.region_create(block_size=1024)
        # Force region instrumentation for this allocation.
        proc.build.instrument_regions = True
        obj = crt.region_alloc_typed(thread, region, NODE)
        crt.gset("pool_root", region.first_block_base)
        trace = GraphBuilder(proc).build()
        block = trace.objects[region.first_block_base]
        assert block.gap_ranges is not None
        assert obj in trace.objects
        assert trace.objects[obj].type is not None

    def test_dangling_precise_pointer_counted(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))],
            types={"node": NODE},
        )
        proc.crt.gset("head", 0xDEAD0000)  # unmapped
        trace = GraphBuilder(proc).build()
        assert trace.dangling_precise == 1

    def test_stack_roots_traced(self):
        kernel, session, proc = _booted_world(
            [], types={"node": NODE}
        )
        crt = proc.crt
        thread = proc.threads[1]
        addr = crt.stack_alloc(thread, "local_node", NODE)
        target = crt.malloc_typed(thread, NODE)
        crt.set(addr, NODE, "next", target)
        trace = GraphBuilder(proc).build()
        assert addr in trace.objects and trace.objects[addr].is_root
        assert target in trace.objects


class TestResolver:
    def test_resolution_precedence_tag_over_chunk(self):
        kernel, session, proc = _booted_world([], types={"node": NODE})
        crt = proc.crt
        thread = proc.threads[1]
        addr = crt.malloc_typed(thread, NODE)
        resolver = AddressResolver(proc)
        base, size, align, tag = resolver.resolve(addr + 4)
        assert base == addr and tag is not None

    def test_untagged_chunk_resolution(self):
        kernel, session, proc = _booted_world([])
        raw = proc.crt.malloc(48)
        resolver = AddressResolver(proc)
        base, size, align, tag = resolver.resolve(raw + 10)
        assert base == raw and size == 48 and tag is None

    def test_unmapped_address_unresolved(self):
        kernel, session, proc = _booted_world([])
        resolver = AddressResolver(proc)
        assert resolver.resolve(0xDEAD0000) is None

    def test_reserved_span_resolution(self):
        kernel, session, proc = _booted_world([])
        base = proc.heap.base + 2048
        proc.heap.reserve_range(base, 1024)
        resolver = AddressResolver(proc)
        resolved = resolver.resolve(base + 100)
        assert resolved is not None and resolved[0] == base


class TestDirtyFilter:
    def test_startup_state_is_clean(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("head", PointerType(NODE, name="node*"))],
            types={"node": NODE},
        )
        # Allocate *after* startup completed: dirty.
        crt = proc.crt
        thread = proc.threads[1]
        node = crt.malloc_typed(thread, NODE)
        crt.gset("head", node)
        trace = GraphBuilder(proc).build()
        filt = DirtyFilter(proc)
        assert filt.is_dirty(trace.objects[node])

    def test_reduction_excludes_lib(self):
        from repro.mcr.tracing.graph import ObjectRecord, TraceResult

        kernel, session, proc = _booted_world([])
        result = TraceResult(proc)
        rec = ObjectRecord(proc.heap.base + 32, 64, "lib")
        result.objects[rec.base] = rec
        stats = DirtyFilter(proc).reduction_stats(result)
        assert stats["objects_total"] == 0


class TestTransform:
    def _ptr(self, value):
        return value  # identity translator

    def test_adds_new_field_with_default(self):
        v1 = StructType("l_t", [("value", INT32), ("next", PointerType(None))])
        v2 = StructType("l_t", [("value", INT32), ("new", INT32), ("next", PointerType(None))])
        out = transform_value(v1, v2, {"value": 7, "next": 0x100}, self._ptr)
        assert out == {"value": 7, "new": 0, "next": 0x100}

    def test_drops_removed_field(self):
        v1 = StructType("s", [("a", INT32), ("b", INT32)])
        v2 = StructType("s", [("a", INT32)])
        out = transform_value(v1, v2, {"a": 1, "b": 2}, self._ptr)
        assert out == {"a": 1}

    def test_translates_pointers(self):
        v1 = StructType("s", [("p", PointerType(None))])
        out = transform_value(v1, v1, {"p": 0x1000}, lambda p: p + 0x10)
        assert out == {"p": 0x1010}

    def test_code_pointers_translated_not_copied(self):
        from repro.types.descriptors import FuncType

        s = StructType("s", [("fn", FuncType())])
        out = transform_value(s, s, {"fn": 0xC0DE}, lambda p: 0xBEEF)
        assert out == {"fn": 0xBEEF}
        out = transform_value(s, s, {"fn": 0}, lambda p: 0xBEEF)
        assert out == {"fn": 0}  # null stays null

    def test_incompatible_retyping_conflicts(self):
        v1 = StructType("s", [("x", PointerType(None))])
        v2 = StructType("s", [("x", StructType("inner", [("y", INT32)]))])
        with pytest.raises(ConflictError):
            transform_value(v1, v2, {"x": 0}, self._ptr)

    def test_opaque_shrink_conflicts(self):
        with pytest.raises(ConflictError):
            transform_value(OpaqueType(16), OpaqueType(8), b"\x00" * 16, self._ptr)

    def test_array_grows_with_defaults(self):
        v1 = ArrayType(INT32, 2)
        v2 = ArrayType(INT32, 4)
        assert transform_value(v1, v2, [1, 2], self._ptr) == [1, 2, 0, 0]

    def test_char_array_resize(self):
        v1 = ArrayType(CHAR, 4)
        v2 = ArrayType(CHAR, 8)
        assert transform_value(v1, v2, b"abcd", self._ptr) == b"abcd\x00\x00\x00\x00"

    def test_default_value_shapes(self):
        s = StructType("s", [("a", INT32), ("arr", ArrayType(INT32, 2))])
        assert default_value(s) == {"a": 0, "arr": [0, 0]}
        assert default_value(ArrayType(CHAR, 3)) == b"\x00\x00\x00"

    def test_types_compatible(self):
        v1 = StructType("s", [("a", INT32)])
        v2 = StructType("s", [("a", INT32), ("b", INT64)])
        assert types_compatible(v1, v2)
        v3 = StructType("s", [("a", StructType("q", [("z", INT32)]))])
        assert not types_compatible(v1, v3)


class TestInvariantHelpers:
    def test_immutable_static_symbols_and_spans(self):
        kernel, session, proc = _booted_world(
            [GlobalVar("b", ArrayType(CHAR, 16))]
        )
        crt = proc.crt
        hidden = crt.malloc(32)
        proc.space.write_word(crt.global_addr("b"), hidden)
        trace = apply_invariants(GraphBuilder(proc).build())
        assert "b" in immutable_static_symbols(trace)
        spans = immutable_heap_spans(trace)
        assert any(start <= hidden < start + size for start, size in spans)
        counts = invariant_counts(trace)
        assert counts["immutable"] >= 2  # b itself + the hidden target
