"""Direct tests of mutable reinitialization's matching semantics (§5).

The paper's argument: call-stack-ID matching "is generally more robust to
addition/deletion/reordering of system calls and changes to their
arguments than alternative strategies based on global or partial orderings
of operations".  These tests build server versions whose startup differs
in exactly one way and check what each strategy does.
"""

import pytest

from repro.errors import ConflictError
from repro.kernel import Kernel, sim_function
from repro.mcr.controller import LiveUpdateController
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, Program, load_program
from repro.types.descriptors import INT64


def _make_program(startup_steps, version="1", extra_annotation=None):
    """A tiny server whose startup is a scripted list of operations.

    ``startup_steps`` is a list of callables ``(sys, state) -> generator``
    run inside ``scripted_init``; the program then parks at its QP.
    """

    @sim_function
    def scripted_init(sys, state):
        for step in startup_steps:
            yield from step(sys, state)

    @sim_function
    def scripted_main(sys):
        state = {}
        yield from scripted_init(sys, state)
        while True:
            sys.loop_iter("main")
            yield from sys.nanosleep(10_000_000)

    program = Program(
        name="scripted",
        version=version,
        globals_=[GlobalVar("g", INT64)],
        main=scripted_main,
        types={},
        quiescent_points={("scripted_main", "nanosleep")},
    )
    if extra_annotation is not None:
        extra_annotation(program.annotations)
    return program


# -- startup step vocabulary ---------------------------------------------------


def open_config(path="/etc/scripted.conf"):
    def step(sys, state):
        fd = yield from sys.open(path)
        state["cfg"] = (yield from sys.read(fd))
        yield from sys.close(fd)

    return step


def bind_port(port=6100):
    def step(sys, state):
        fd = yield from sys.socket()
        yield from sys.bind(fd, port)
        yield from sys.listen(fd)
        state["listen"] = fd

    return step


def make_epoll():
    def step(sys, state):
        state["ep"] = yield from sys.epoll_create()

    return step


def sleep_step(ns=1_000_000):
    def step(sys, state):
        yield from sys.nanosleep(ns)

    return step


def _boot(kernel, program):
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    assert session.startup_complete
    return session, root


def _update(kernel, session, new_program, **kwargs):
    controller = LiveUpdateController(kernel, session, new_program, **kwargs)
    return controller.run_update()


V1_STEPS = [open_config(), bind_port(), make_epoll()]


class TestCallstackMatching:
    def test_identical_startup_replays(self, kernel):
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        result = _update(kernel, session, _make_program(V1_STEPS, "2"))
        assert result.committed, result.error

    def test_added_syscall_runs_live(self, kernel):
        """New operations in the new version execute live (no conflict)."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        v2_steps = V1_STEPS + [sleep_step()]
        result = _update(kernel, session, _make_program(v2_steps, "2"))
        assert result.committed, result.error

    def test_reordered_syscalls_tolerated(self, kernel):
        """Reordering is matched per call-stack ID, not global order."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        v2_steps = [bind_port(), open_config(), make_epoll()]  # swapped
        result = _update(kernel, session, _make_program(v2_steps, "2"))
        assert result.committed, result.error

    def test_omitted_immutable_syscall_conflicts(self, kernel):
        """Dropping the epoll_create leaves its inherited fd unclaimed."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        v2_steps = [open_config(), bind_port()]  # no epoll
        result = _update(kernel, session, _make_program(v2_steps, "2"))
        assert result.rolled_back
        assert isinstance(result.error, ConflictError)
        assert "never replayed" in str(result.error)

    def test_changed_arguments_conflict(self, kernel):
        """bind to a different port: args mismatch -> conflict."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        v2_steps = [open_config(), bind_port(7200), make_epoll()]
        result = _update(kernel, session, _make_program(v2_steps, "2"))
        assert result.rolled_back
        assert isinstance(result.error, (ConflictError, Exception))

    def test_reinit_handler_resolves_argument_conflict(self, kernel):
        """An MCR_ADD_REINIT_HANDLER can resolve the flagged conflict."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))

        def resolving(annotations):
            def handler(context):
                if context.name == "bind":
                    # User decides: keep the inherited listener, ignore
                    # the new port (returns the recorded result).
                    context.resolve_with_result(0)

            annotations.MCR_ADD_REINIT_HANDLER(handler, stage="conflict")

        v2_steps = [open_config(), bind_port(7300), make_epoll()]
        v2 = _make_program(v2_steps, "2", extra_annotation=resolving)
        result = _update(kernel, session, v2)
        assert result.committed, result.error

    def test_renamed_function_conflicts(self, kernel):
        """Function renames change stack IDs: records go unmatched, and
        the live re-execution clashes with inherited kernel state (the
        'unnecessary conflicts' the paper accepts as the price of
        conservativeness)."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))

        # Same operations, but issued from a differently-named function.
        def bind_from_renamed(port=6100):
            @sim_function
            def renamed_bind_helper(sys, state):
                fd = yield from sys.socket()
                yield from sys.bind(fd, port)
                yield from sys.listen(fd)
                state["listen"] = fd

            def step(sys, state):
                yield from renamed_bind_helper(sys, state)

            return step

        v2_steps = [open_config(), bind_from_renamed(), make_epoll()]
        result = _update(kernel, session, _make_program(v2_steps, "2"))
        assert result.rolled_back  # live bind on an in-use port


class TestSequentialMatchingAblation:
    """The ordering-based alternative the paper rejects."""

    def test_identical_startup_still_works(self, kernel):
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        result = _update(
            kernel, session, _make_program(V1_STEPS, "2"),
            match_strategy="sequential",
        )
        assert result.committed, result.error

    def test_reordering_breaks_sequential_matching(self, kernel):
        """The same reordered startup that call-stack matching accepts
        produces a spurious conflict under strict ordering."""
        kernel.fs.create("/etc/scripted.conf", b"x")
        session, _ = _boot(kernel, _make_program(V1_STEPS))
        v2_steps = [bind_port(), open_config(), make_epoll()]
        result = _update(
            kernel, session, _make_program(v2_steps, "2"),
            match_strategy="sequential",
        )
        assert result.rolled_back

    def test_unknown_strategy_rejected(self, kernel):
        from repro.mcr.reinit.replay import ReplayEngine

        with pytest.raises(ValueError):
            ReplayEngine(None, None, None, None, match_strategy="best-fit")
