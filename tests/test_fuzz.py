"""The update fuzzer: scenario drawing, invariants, seed shrinking."""

from __future__ import annotations

import copy

from repro.bench import fuzz
from repro.replay.rng import RngStream, derive_seed
from repro.replay.scenario import SERVERS, default_spec


def _master(seed=0):
    return RngStream("fuzz.master", derive_seed(seed, "fuzz.master"))


# -- drawing ------------------------------------------------------------------


def test_draw_spec_is_deterministic_per_seed():
    first = [fuzz.draw_spec(_master(5)) for _ in range(1)]
    second = [fuzz.draw_spec(_master(5)) for _ in range(1)]
    assert first == second
    # A different master seed changes the drawn scenario stream.
    a = [fuzz.draw_spec(m) for m in [_master(1)] for _ in range(4)]
    b = [fuzz.draw_spec(m) for m in [_master(2)] for _ in range(4)]
    assert a != b


def test_draw_spec_respects_server_capabilities():
    master = _master(9)
    for _ in range(30):
        spec = fuzz.draw_spec(master)
        assert spec["server"] in SERVERS
        if spec["mode"] == "rolling":
            assert spec["server"] in ("httpd", "nginx")
        if SERVERS[spec["server"]]["holder_kind"] is None:
            assert not spec.get("holders")
        for arm in spec["faults"]:
            assert ("probability" in arm) != ("nth" in arm)


def test_draw_spec_rollback_fault_carries_a_primary():
    """A bare ``rollback`` arm never fires (the rollback path is only
    reached after a primary fault), so the fuzzer must pair it."""
    master = _master(0)
    saw_rollback = False
    for _ in range(200):
        spec = fuzz.draw_spec(master)
        sites = [arm["site"] for arm in spec["faults"]]
        if "rollback" in sites:
            saw_rollback = True
            assert "transfer.memory" in sites
    assert saw_rollback, "200 draws never armed rollback; check the weights"


# -- the oracle ---------------------------------------------------------------


def test_check_spec_passes_on_a_clean_update():
    verdict = fuzz.check_spec(default_spec("simple"))
    assert verdict["ok"], verdict["problems"]
    assert verdict["committed"] is True
    assert verdict["failure_site"] is None


def test_check_spec_passes_on_a_faulted_update():
    verdict = fuzz.check_spec(
        default_spec("simple", faults=[{"site": "transfer.memory", "nth": 1}])
    )
    assert verdict["ok"], verdict["problems"]
    assert verdict["committed"] is False
    assert verdict["failure_site"] == "transfer.memory"


# -- shrinking ----------------------------------------------------------------


def test_shrink_ladder_steps_simplify_one_axis_each():
    spec = default_spec(
        "httpd",
        mode="rolling",
        faults=[{"site": "transfer.memory", "probability": 0.5, "seed": 3}],
        workload={"requests": 30, "concurrency": 3, "jitter_ns": 50_000},
        holders=2,
    )
    assert fuzz._drop_jitter(spec)["workload"].get("jitter_ns") is None
    assert fuzz._drop_holders(spec)["holders"] == 0
    assert fuzz._single_client(spec)["workload"]["concurrency"] == 1
    assert fuzz._minimal_requests(spec)["workload"]["requests"] == 2
    assert fuzz._whole_tree(spec)["mode"] == "whole-tree"
    det = fuzz._deterministic_fault(spec)["faults"][0]
    assert det == {"site": "transfer.memory", "nth": 1, "times": 1}
    assert fuzz._no_fault(spec)["faults"] == []
    # Every step returns None once its axis is already minimal.
    minimal = default_spec("simple", workload={"clients": 1}, holders=0)
    for _name, step in fuzz.SHRINK_LADDER:
        assert step(minimal) is None
    # And none of them mutate their input.
    assert spec["workload"]["jitter_ns"] == 50_000
    assert spec["mode"] == "rolling"


def test_shrink_spec_greedily_minimizes_while_failure_reproduces(monkeypatch):
    spec = default_spec(
        "httpd",
        mode="rolling",
        faults=[{"site": "transfer.memory", "probability": 0.5, "seed": 3}],
        workload={"requests": 30, "concurrency": 3, "jitter_ns": 50_000},
        holders=2,
    )
    # Synthetic failure: reproduces iff the fault plan is non-empty, so
    # every simplification except ``no-fault`` should be kept.
    checks = []

    def fake_check(candidate, **_kwargs):
        checks.append(copy.deepcopy(candidate))
        return {"ok": not candidate["faults"], "problems": [], "spec": candidate}

    monkeypatch.setattr(fuzz, "check_spec", fake_check)
    minimal, applied, spent = fuzz.shrink_spec(spec)
    assert minimal["workload"] == {"requests": 2, "concurrency": 1}
    assert minimal["mode"] == "whole-tree"
    assert minimal["holders"] == 0
    assert minimal["faults"] == [
        {"site": "transfer.memory", "nth": 1, "times": 1}
    ]
    assert "no-fault" not in applied
    assert spent == len(checks) <= 16
    assert spec["workload"]["requests"] == 30  # input untouched


def test_shrink_spec_keeps_the_original_when_nothing_reproduces(monkeypatch):
    spec = default_spec(
        "httpd", faults=[{"site": "transfer.memory", "nth": 1}]
    )
    monkeypatch.setattr(
        fuzz, "check_spec", lambda candidate, **_: {"ok": True, "problems": []}
    )
    minimal, applied, _spent = fuzz.shrink_spec(spec)
    assert minimal == spec
    assert applied == []


# -- the soak -----------------------------------------------------------------


def test_run_fuzz_smoke_is_all_ok():
    results = fuzz.run_fuzz(seed=0, iterations=3)
    assert results["all_ok"], results["failures"]
    assert len(results["runs"]) == 3
    for row in results["runs"]:
        assert row["ok"], row["problems"]
    text = fuzz.render(results)
    assert "all_ok=yes" in text


def test_run_fuzz_shrinks_and_reports_a_failure(monkeypatch, tmp_path):
    """Force one iteration to fail its invariants and check the failure
    is minimized, re-verified, and reported with its reproducer."""
    real_check = fuzz.check_spec

    def broken_check(spec, **kwargs):
        verdict = real_check(spec, **kwargs)
        if spec.get("holders"):
            verdict = dict(verdict)
            verdict["ok"] = False
            verdict["problems"] = list(verdict["problems"]) + [
                "synthetic: holders leak"
            ]
        return verdict

    monkeypatch.setattr(fuzz, "check_spec", broken_check)
    monkeypatch.chdir(tmp_path)
    # Seed 3's smoke draws include holder-bearing specs (httpd iteration
    # 0 draws holders>0); scan a few iterations to be robust to weights.
    results = fuzz.run_fuzz(seed=3, iterations=6, artifact_prefix="FUZZTEST")
    assert not results["all_ok"]
    assert results["failures"]
    failure = results["failures"][0]
    # The shrinker drops every axis the synthetic bug doesn't depend on,
    # but holders must survive minimization (dropping them "fixes" it).
    assert failure["minimal_spec"]["holders"]
    assert failure["still_fails_minimized"]
    assert "drop-holders" not in failure["shrink_steps"]
    text = fuzz.render(results)
    assert "FAILURE at iteration" in text
    assert "python -m repro replay" in text
