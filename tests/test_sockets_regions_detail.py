"""Detail tests: socket object semantics and region block chaining."""

import pytest

from repro.errors import AddressInUse, SimError
from repro.kernel.sockets import EpollObject, NetworkStack
from repro.mem.address_space import AddressSpace
from repro.mem.ptmalloc import PtMallocHeap
from repro.mem.regions import BLOCK_HEADER_SIZE, NestedPool, RegionAllocator


@pytest.fixture
def net():
    return NetworkStack()


class TestNetworkStack:
    def test_connect_lands_in_accept_queue(self, net):
        sock = net.new_socket()
        listener = net.bind_listen(sock, 80)
        client = net.connect(80)
        assert listener.can_accept()
        server_end = listener.pop_connection()
        assert server_end.peer is client and client.peer is server_end

    def test_double_bind_rejected(self, net):
        net.bind_listen(net.new_socket(), 80)
        with pytest.raises(AddressInUse):
            net.bind_listen(net.new_socket(), 80)

    def test_release_then_rebind(self, net):
        listener = net.bind_listen(net.new_socket(), 80)
        net.release_port(listener)
        net.bind_listen(net.new_socket(), 80)  # no AddressInUse

    def test_adopt_listener_is_idempotent(self, net):
        listener = net.bind_listen(net.new_socket(), 80)
        net.release_port(listener)  # old version died
        net.adopt_listener(listener)  # new version inherits it
        assert net.listener_for(80) is listener
        assert not listener.closed
        net.adopt_listener(listener)
        assert net.listener_for(80) is listener

    def test_connect_refused_without_listener(self, net):
        with pytest.raises(SimError):
            net.connect(12345)

    def test_stream_eof_semantics(self, net):
        net.bind_listen(net.new_socket(), 80)
        client = net.connect(80)
        server = net.listener_for(80).pop_connection()
        client.send(b"hi")
        assert server.recv(10) == b"hi"
        client.close()
        assert server.readable()  # EOF is a readable event
        assert server.recv(10) == b""
        with pytest.raises(SimError):
            server.send(b"too late")

    def test_epoll_tracks_all_kinds(self, net):
        listener = net.bind_listen(net.new_socket(), 80)
        a, b = net.socketpair()
        epoll = net.new_epoll()
        epoll.add(3, listener)
        epoll.add(4, a)
        assert epoll.ready_fds() == []
        net.connect(80)
        b.sendmsg(b"m")
        assert epoll.ready_fds() == [3, 4]
        epoll.remove(3)
        assert epoll.ready_fds() == [4]

    def test_backlog_limit(self, net):
        listener = net.bind_listen(net.new_socket(), 80, backlog=2)
        net.connect(80)
        net.connect(80)
        with pytest.raises(SimError):
            net.connect(80)


class TestRegionChaining:
    def _heap(self):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        heap.end_startup()
        return space, heap

    def test_blocks_chained_in_memory(self):
        space, heap = self._heap()
        region = RegionAllocator(heap, block_size=256)
        for _ in range(20):
            region.alloc(100)
        blocks = list(region.blocks())
        assert len(blocks) > 1
        for current, following in zip(blocks, blocks[1:]):
            assert space.read_word(current.base) == following.base
        assert space.read_word(blocks[-1].base) == 0

    def test_allocations_skip_header(self):
        space, heap = self._heap()
        region = RegionAllocator(heap, block_size=256)
        first = region.alloc(16)
        block = next(region.blocks())
        assert first >= block.base + BLOCK_HEADER_SIZE

    def test_pool_child_chain_in_memory(self):
        space, heap = self._heap()
        root = NestedPool(heap, block_size=256, name="root")
        child_a = root.create_child("a")
        child_b = root.create_child("b")
        head = root.first_block_base
        assert space.read_word(head + 8) == child_a.first_block_base
        assert space.read_word(child_a.first_block_base + 16) == child_b.first_block_base
        assert space.read_word(child_b.first_block_base + 16) == 0

    def test_child_destroy_rewrites_chain(self):
        space, heap = self._heap()
        root = NestedPool(heap, block_size=256)
        child_a = root.create_child("a")
        child_b = root.create_child("b")
        child_a.destroy()
        head = root.first_block_base
        assert space.read_word(head + 8) == child_b.first_block_base
        assert space.read_word(child_b.first_block_base + 16) == 0

    def test_clear_keeps_chain_consistent(self):
        space, heap = self._heap()
        root = NestedPool(heap, block_size=256)
        child = root.create_child("a")
        child.alloc(64)
        child.clear()
        head = root.first_block_base
        assert space.read_word(head + 8) == child.first_block_base
        child.alloc(64)  # still usable

    def test_oversized_block_chained_too(self):
        space, heap = self._heap()
        region = RegionAllocator(heap, block_size=256)
        region.alloc(16)
        big = region.alloc(5000)
        blocks = list(region.blocks())
        assert len(blocks) == 2
        assert space.read_word(blocks[0].base) == blocks[1].base
        assert blocks[1].base + BLOCK_HEADER_SIZE <= big
