"""The Figure-1 workflow: profiled quiescent points actually suffice.

The strongest possible check that the profiler's output is *correct*:
strip every hand-declared quiescent point from a server, instrument it
purely from a profiling run, and verify that a live update still works
end to end.
"""

import pytest

from repro.kernel import Kernel
from repro.mcr.ctl import McrCtl
from repro.runtime.build import apply_profile, build_from_profile, profile_program
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import nginx, simple, vsftpd
from repro.workloads import profiles


class TestProfileWorkflow:
    def test_profiled_points_match_declared_nginx(self):
        report = profile_program(
            nginx.make_program, nginx.setup_world, profiles.web_profile(8081)
        )
        assert report.quiescent_points() == nginx.make_program().quiescent_points

    def test_profiled_points_match_declared_vsftpd(self):
        report = profile_program(
            vsftpd.make_program, vsftpd.setup_world, profiles.ftp_profile(21)
        )
        assert report.quiescent_points() == vsftpd.make_program().quiescent_points

    def test_apply_profile_overwrites_points(self):
        report = profile_program(
            nginx.make_program, nginx.setup_world, profiles.web_profile(8081)
        )
        program = nginx.make_program()
        program.quiescent_points = {("bogus", "nothing")}
        apply_profile(program, report)
        assert ("bogus", "nothing") not in program.quiescent_points
        assert program.metadata["quiescence_profile"]["LL"] == 2

    def test_update_with_purely_profiled_instrumentation(self):
        """Build both versions only from profiling; live-update works."""

        def stripped(version):
            program = nginx.make_program(version)
            program.quiescent_points = set()  # forget the hand annotations
            return program

        report = profile_program(
            lambda: nginx.make_program(1), nginx.setup_world,
            profiles.web_profile(8081),
        )
        v1 = apply_profile(stripped(1), report)
        v2 = apply_profile(stripped(2), report)

        kernel = Kernel()
        nginx.setup_world(kernel)
        session = MCRSession(kernel, v1, BuildConfig.full())
        load_program(kernel, v1, build=BuildConfig.full(), session=session)
        kernel.run(until=lambda: session.startup_complete, max_steps=300_000)
        assert session.startup_complete
        result = McrCtl(kernel, session).live_update(v2)
        assert result.committed, result.error

    def test_build_from_profile_one_call(self):
        program = build_from_profile(
            lambda: simple.make_program(1),
            simple.setup_world,
            profiles.web_profile(8080, big_path="/big"),
        )
        assert program.quiescent_points == {("server_get_event", "epoll_wait")}

    def test_unprofiled_program_cannot_quiesce(self):
        """Without (correct) quiescent points the update times out and
        rolls back — why the profiling step exists at all."""
        v1 = simple.make_program(1)
        v1.quiescent_points = set()  # "forgot" to profile
        kernel = Kernel()
        simple.setup_world(kernel)
        session = MCRSession(kernel, v1, BuildConfig.full())
        root = load_program(kernel, v1, build=BuildConfig.full(), session=session)
        kernel.run(max_steps=50_000)
        # Startup completion never observed (no QP hooks) and quiescence
        # cannot converge.
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.rolled_back
