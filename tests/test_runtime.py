"""Tests for the runtime layer: cruntime, program loading, build configs,
and the libmcr interception (recording, separability, metadata)."""

import pytest

from repro.errors import AllocatorError, SimError
from repro.kernel import Kernel, sim_function
from repro.kernel.fdtable import RESERVED_BASE, STASH_BASE
from repro.runtime.cruntime import SharedLib
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, Program, load_program
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
)

from tests.helpers import boot_test_program, idle_main, make_test_program

NODE = StructType("node", [("value", INT32), ("next", PointerType(None, name="node*"))])


class TestBuildConfig:
    def test_ladder_is_cumulative(self):
        unblock = BuildConfig.unblock()
        sinstr = BuildConfig.sinstr()
        dinstr = BuildConfig.dinstr()
        qdet = BuildConfig.qdet()
        assert unblock.unblockify and not unblock.static_instr
        assert sinstr.static_instr and not sinstr.dynamic_instr
        assert dinstr.dynamic_instr and not dinstr.qdet
        assert qdet.qdet and qdet.updatable

    def test_baseline_is_not_mcr(self):
        assert not BuildConfig.baseline().mcr_enabled

    def test_labels(self):
        assert BuildConfig.baseline().label() == "baseline"
        assert BuildConfig.unblock().label() == "Unblock"
        assert BuildConfig.qdet().label() == "+QDet"

    def test_only_full_build_is_updatable(self):
        assert not BuildConfig.dinstr().updatable
        assert BuildConfig.full().updatable


class TestCRuntime:
    def test_typed_malloc_registers_tag(self):
        kernel, session, proc = boot_test_program(
            make_test_program([], types={"node": NODE})
        )
        addr = proc.crt.malloc_typed(proc.threads[1], NODE)
        tag = proc.tags.lookup(addr)
        assert tag is not None and tag.type.name == "node"

    def test_untyped_malloc_has_no_tag(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        addr = proc.crt.malloc(64)
        assert proc.tags.lookup(addr) is None

    def test_free_unregisters_tag(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        addr = proc.crt.malloc_typed(proc.threads[1], NODE)
        proc.crt.free(addr)
        assert proc.tags.lookup(addr) is None

    def test_baseline_build_registers_nothing(self):
        kernel, session, proc = boot_test_program(
            make_test_program([]), build=BuildConfig.baseline()
        )
        addr = proc.crt.malloc_typed(proc.threads[1], NODE)
        assert proc.tags.lookup(addr) is None

    def test_struct_field_roundtrip(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        crt = proc.crt
        addr = crt.malloc_typed(proc.threads[1], NODE)
        crt.set(addr, NODE, "value", 77)
        assert crt.get(addr, NODE, "value") == 77

    def test_global_accessors(self):
        kernel, session, proc = boot_test_program(
            make_test_program([GlobalVar("counter", INT64, init=5)])
        )
        assert proc.crt.gget("counter") == 5
        proc.crt.gset("counter", 6)
        assert proc.crt.gget("counter") == 6

    def test_cstr_roundtrip(self):
        kernel, session, proc = boot_test_program(
            make_test_program([GlobalVar("name", ArrayType(CHAR, 16))])
        )
        crt = proc.crt
        crt.write_cstr(crt.global_addr("name"), "hello")
        assert crt.read_cstr(crt.global_addr("name")) == "hello"

    def test_cstr_capacity_enforced(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        addr = proc.crt.malloc(8)
        with pytest.raises(AllocatorError):
            proc.crt.write_cstr(addr, "way too long for this", capacity=8)

    def test_strdup_is_opaque_char_array(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        addr = proc.crt.strdup(proc.threads[1], "text")
        tag = proc.tags.lookup(addr)
        assert tag is not None and tag.type.is_opaque()
        assert proc.crt.read_cstr(addr) == "text"

    def test_stack_alloc_and_release(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        crt = proc.crt
        thread = proc.threads[1]
        mark = crt.stack_mark(thread)
        addr = crt.stack_alloc(thread, "local", NODE)
        assert proc.tags.lookup(addr) is not None
        crt.stack_release(thread, mark)
        assert proc.tags.lookup(addr) is None

    def test_instrumented_alloc_charges_more_time(self):
        k1, s1, p1 = boot_test_program(make_test_program([]), build=BuildConfig.baseline())
        t0 = k1.clock.now_ns
        for _ in range(100):
            p1.crt.malloc_typed(p1.threads[1], NODE)
        base_cost = k1.clock.now_ns - t0
        k2, s2, p2 = boot_test_program(make_test_program([]))
        t0 = k2.clock.now_ns
        for _ in range(100):
            p2.crt.malloc_typed(p2.threads[1], NODE)
        instr_cost = k2.clock.now_ns - t0
        assert instr_cost > base_cost * 2


class TestSharedLib:
    def test_lib_allocates_in_lib_region(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        lib = SharedLib(proc, "libfoo", 4096)
        addr = lib.alloc(64)
        mapping = proc.space.mapping_at(addr)
        assert mapping.kind == "lib"

    def test_lib_alloc_tagged_under_dinstr(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        lib = SharedLib(proc, "libfoo", 4096)
        addr = lib.alloc(64)
        tag = proc.tags.lookup(addr)
        assert tag is not None and tag.origin == "lib"

    def test_lib_out_of_space(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        lib = SharedLib(proc, "libtiny", 4096)
        with pytest.raises(AllocatorError):
            lib.alloc(8192)

    def test_fixed_base_mapping(self):
        kernel, session, proc = boot_test_program(make_test_program([]))
        lib = SharedLib(proc, "libpinned", 4096, base=0x7F10_0000)
        assert lib.base == 0x7F10_0000


class TestProgramLoading:
    def test_globals_laid_out_and_initialized(self):
        program = make_test_program(
            [
                GlobalVar("a", INT32, init=3),
                GlobalVar("b", INT64, init=-9),
                GlobalVar("text", ArrayType(CHAR, 8), init=b"hi"),
            ]
        )
        kernel, session, proc = boot_test_program(program)
        assert proc.crt.gget("a") == 3
        assert proc.crt.gget("b") == -9
        assert proc.symbols.lookup("a").address != proc.symbols.lookup("b").address

    def test_pinned_symbols_honored(self):
        from repro.mem.address_space import DATA_BASE

        pin = DATA_BASE + 0x800
        program = make_test_program([GlobalVar("x", INT64), GlobalVar("y", INT64)])
        program.pinned_symbols = {"y": pin}
        kernel, session, proc = boot_test_program(program)
        assert proc.symbols.lookup("y").address == pin
        # x must not overlap the pinned range.
        assert proc.symbols.lookup("x").address != pin

    def test_pin_outside_segment_rejected(self):
        program = make_test_program([GlobalVar("x", INT64)])
        program.pinned_symbols = {"x": 0x10}
        with pytest.raises(SimError):
            boot_test_program(program)

    def test_static_tags_registered(self):
        program = make_test_program([GlobalVar("g", INT64)])
        kernel, session, proc = boot_test_program(program)
        symbol = proc.symbols.lookup("g")
        tag = proc.tags.lookup(symbol.address)
        assert tag is not None and tag.origin == "static"

    def test_type_changes_diff(self):
        from repro.servers import simple

        diff = simple.make_program(2).type_changes(simple.make_program(1))
        assert diff["changed"] == ["l_t"]
        assert diff["added"] == [] and diff["removed"] == []


class TestLibmcrRecording:
    def test_startup_syscalls_recorded_until_qp(self):
        recorded = []

        @sim_function
        def recording_main(sys):
            yield from sys.open("/etc/f", "w")
            while True:
                sys.loop_iter("main")
                yield from sys.nanosleep(10_000_000)

        program = make_test_program([], main=recording_main, name="rec")
        program.quiescent_points = {("recording_main", "nanosleep")}
        kernel, session, proc = boot_test_program(program)
        names = [r.name for r in session.startup_log.records()]
        assert "open" in names
        # Post-startup syscalls are not recorded.
        before = len(session.startup_log)
        kernel.run(max_ns=100_000_000, max_steps=10_000)
        assert len(session.startup_log) == before

    def test_startup_fds_come_from_reserved_range(self):
        @sim_function
        def fd_main(sys):
            fd = yield from sys.socket()
            assert fd >= RESERVED_BASE
            yield from sys.bind(fd, 7777)
            yield from sys.listen(fd)
            while True:
                sys.loop_iter("main")
                yield from sys.nanosleep(10_000_000)

        program = make_test_program([], main=fd_main, name="fds")
        program.quiescent_points = {("fd_main", "nanosleep")}
        kernel, session, proc = boot_test_program(program)
        assert session.startup_complete

    def test_post_startup_fds_are_ordinary(self, kernel):
        from repro.servers import simple
        from repro.servers.common import connect_with_retry

        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        seen = []

        @sim_function
        def client(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"push 1\n")
            seen.append((yield from sys.recv(fd)))
            yield from sys.close(fd)

        kernel.spawn_process(client)
        kernel.run(max_steps=300_000, until=lambda: bool(seen))
        # The accepted connection fd in the server sits below the ranges.
        conn_fds = [
            fd
            for fd, obj in root.fdtable.items()
            if obj.kind == "stream"
        ]
        # (connection already closed is fine; assert no leak into ranges)
        for fd in root.fdtable.fds():
            assert fd < STASH_BASE or root.fdtable.get(fd).kind != "stream"

    def test_metadata_bytes_accounts_components(self):
        kernel, session, proc = boot_test_program(make_test_program([GlobalVar("g", INT64)]))
        total = session.metadata_bytes()
        assert total > proc.tags.overhead_bytes()

    def test_baseline_process_has_no_runtime(self):
        kernel, session, proc = boot_test_program(
            make_test_program([]), build=BuildConfig.baseline()
        )
        assert proc.runtime is None and session is None
