"""End-to-end live update of the Listing-1 example server.

This is the paper's §3 walkthrough as an executable test: record startup,
quiesce, restart under replay, transfer dirty state (including the Figure-2
type transformation and the hidden-pointer buffer), commit — plus the
rollback path and connection survival across the update.
"""

import pytest

from repro.errors import ConflictError
from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import PORT_SIMPLE, connect_with_retry, recv_line


@sim_function
def _request_client(sys, commands, replies, hold_open=False):
    fd = yield from connect_with_retry(sys, PORT_SIMPLE)
    for command in commands:
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
    if hold_open:
        # Park on the open connection; woken by later sends or close.
        while True:
            data = yield from sys.recv(fd)
            if not data:
                break
    yield from sys.close(fd)


@sim_function
def _late_sender(sys, fd_holder, commands, replies):
    """Reuses an already-open connection (fd captured by another thread)."""
    fd = fd_holder["fd"]
    for command in commands:
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())


def _boot_v1(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    return program, session, root


class TestLiveUpdate:
    def test_update_commits_and_transfers_list(self, kernel):
        _program, session, _root = _boot_v1(kernel)
        replies = []
        kernel.spawn_process(
            _request_client, args=(["push 10", "push 20", "version"], replies)
        )
        kernel.run(max_steps=100_000)
        assert replies == ["ok 1", "ok 2", "version 1"]
        assert session.startup_complete

        ctl = McrCtl(kernel, session)
        result = ctl.live_update(simple.make_program(2))
        assert result.committed, f"update failed: {result.error}"

        after = []
        kernel.spawn_process(
            _request_client, args=(["sum", "version", "push 5", "sum"], after)
        )
        kernel.run(max_steps=200_000)
        # The v1 list (10+20) survived the update and the v2 code extends it.
        assert after == ["sum 30", "version 2", "ok 3", "sum 35"]

    def test_open_connection_survives_update(self, kernel):
        _program, session, _root = _boot_v1(kernel)
        fd_holder = {}
        pre, post = [], []

        @sim_function
        def persistent_client(sys):
            fd = yield from connect_with_retry(sys, PORT_SIMPLE)
            fd_holder["fd"] = fd
            yield from sys.send(fd, b"push 7\n")
            line = yield from recv_line(sys, fd)
            pre.append(line.decode().strip())
            while not fd_holder.get("done"):  # keep the process (and fd) alive
                yield from sys.nanosleep(10_000_000)

        client_proc = kernel.spawn_process(persistent_client)
        kernel.run(max_steps=100_000, until=lambda: bool(pre))
        assert pre == ["ok 1"]

        ctl = McrCtl(kernel, session)
        result = ctl.live_update(simple.make_program(2))
        assert result.committed, f"update failed: {result.error}"

        # Same connection, same process: the fd still works against v2.
        kernel._start_thread(
            client_proc, _late_sender, (fd_holder, ["sum", "version"], post), "late"
        )
        kernel.run(max_steps=200_000, until=lambda: len(post) == 2)
        fd_holder["done"] = True
        assert post == ["sum 7", "version 2"]

    def test_update_time_is_subsecond(self, kernel):
        _program, session, _root = _boot_v1(kernel)
        kernel.run(max_steps=50_000)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(simple.make_program(2))
        assert result.committed
        assert result.total_ms() < 1000.0  # paper: < 1 s
        assert result.quiescence_ns <= 100_000_000  # paper: < 100 ms

    def test_chained_updates(self, kernel):
        """v1 -> v2 -> v2' (ctl re-binds to the committed session)."""
        _program, session, _root = _boot_v1(kernel)
        replies = []
        kernel.spawn_process(_request_client, args=(["push 3"], replies))
        kernel.run(max_steps=100_000)
        ctl = McrCtl(kernel, session)
        assert ctl.live_update(simple.make_program(2)).committed
        assert ctl.live_update(simple.make_program(2)).committed
        after = []
        kernel.spawn_process(_request_client, args=(["sum"], after))
        kernel.run(max_steps=200_000)
        assert after == ["sum 3"]

    def test_rollback_on_conflict_resumes_v1(self, kernel):
        _program, session, _root = _boot_v1(kernel)
        replies = []
        kernel.spawn_process(_request_client, args=(["push 4"], replies))
        kernel.run(max_steps=100_000)

        # A hostile v2 whose startup binds a different port: the recorded
        # bind can never match -> the new socket() runs live and the live
        # bind clashes with the (still running) v1 listener -> rollback.
        bad_v2 = simple.make_program(2)
        kernel.fs.create("/etc/simple.conf", b"9999")
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(bad_v2)
        assert result.rolled_back
        assert not result.committed
        # v1 must keep serving as if nothing happened.
        kernel.fs.create("/etc/simple.conf", str(PORT_SIMPLE).encode())
        after = []
        kernel.spawn_process(_request_client, args=(["sum", "version"], after))
        kernel.run(max_steps=200_000)
        assert after == ["sum 4", "version 1"]

    def test_status_reports_phase(self, kernel):
        _program, session, _root = _boot_v1(kernel)
        kernel.run(max_steps=50_000)
        status = McrCtl(kernel, session).status()
        assert status["phase"] == "normal"
        assert status["startup_complete"] is True
        assert status["startup_log_records"] > 0
        assert status["metadata_bytes"] > 0
