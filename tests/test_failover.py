"""Warm-standby failover drills: clean crashes, injected faults, staleness.

The robustness contract under test: a primary crash with a warm standby
loses zero requests and recovers within the downtime budget, and every
fault site in the checkpoint plane converges to exactly one of two
outcomes — recovered on the standby (or cold-restored from the durable
image) XOR the primary continued cleanly — without ever raising out of
the drill.
"""

from __future__ import annotations

import pytest

from repro.bench.faultmatrix import run_failover_cell
from repro.checkpoint import capture_delta
from repro.fleet.failover import FailoverDrill, FailoverResult
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import CHECKPOINT_SITES, DEFAULT_ERRORS, SITES, FaultPlan

FAULT_CELLS = tuple(CHECKPOINT_SITES) + ("checkpoint.write+standby.promote",)


def test_clean_failover_loses_nothing():
    config = MCRConfig(checkpoint_interval_ns=25_000_000)
    result = FailoverDrill("simple", config=config).run()
    assert result.error is None
    assert result.crashed and result.promoted
    assert result.requests_lost == 0
    assert result.served_after
    assert result.rto_ns is not None
    assert result.rto_ns < config.downtime_budget_ns
    assert result.perceived is not None and result.perceived["slo_ok"]


def test_no_crash_drill_is_a_quiet_baseline():
    config = MCRConfig(checkpoint_interval_ns=25_000_000)
    result = FailoverDrill("simple", config=config, crash=False).run()
    assert result.error is None
    assert not result.crashed and not result.promoted
    assert result.requests_lost == 0
    assert result.primary_survived
    assert result.deltas_sent > 0


@pytest.mark.parametrize("site", FAULT_CELLS)
def test_fault_cells_converge_without_raising(site, tmp_path):
    cell = run_failover_cell(
        "simple", site, blackbox_path=str(tmp_path / "blackbox.json")
    )
    assert not cell["raised"], cell.get("error")
    assert cell["error"] is None
    assert cell["fired"], f"armed fault at {site} never fired"
    assert cell["served_after"]
    assert cell["requests_lost"] == 0
    # Exactly one recovery story per cell, never both, never neither.
    assert cell["recovered_on_standby"] != cell["primary_survived"]
    assert cell["converged"]


def test_stream_faults_leave_a_stale_but_promotable_standby(tmp_path):
    cell = run_failover_cell(
        "simple", "stream.send", blackbox_path=str(tmp_path / "blackbox.json")
    )
    assert cell["standby_stale"]
    assert cell["stale_lag"] > 0
    assert cell["promoted"] and cell["converged"]


def test_torn_write_plus_dead_standby_cold_restores(tmp_path):
    cell = run_failover_cell(
        "simple",
        "checkpoint.write+standby.promote",
        blackbox_path=str(tmp_path / "blackbox.json"),
    )
    assert cell["cold_restored"]
    assert not cell["primary_survived"]
    assert cell["converged"]


def test_every_site_has_a_default_error():
    assert set(DEFAULT_ERRORS) == set(SITES)
    assert set(CHECKPOINT_SITES) <= set(SITES)


def test_drill_never_raises_even_with_all_sites_armed(tmp_path):
    plan = FaultPlan()
    for site in CHECKPOINT_SITES:
        plan.at(site)
    config = MCRConfig(
        faults=plan,
        checkpoint_interval_ns=25_000_000,
        blackbox_path=str(tmp_path / "blackbox.json"),
    )
    result = FailoverDrill("simple", config=config).run()
    assert result.error is None
    assert result.served_after


# -- the cadence tick's structural-drift repair path ---------------------------


def _booted_drill():
    """A drill warmed up by hand to where the cadence ticks happen."""
    config = MCRConfig(checkpoint_interval_ns=25_000_000)
    drill = FailoverDrill("simple", config=config)
    result = FailoverResult("simple")
    drill.primary = Node.boot("simple", node_id=0, config=config)
    drill.primary.serve(4)
    drill.primary.drain()
    drill.primary.settle(2_000_000)
    assert drill._cut_full(result)
    drill._boot_standby(result)
    assert drill.standby is not None
    return drill, result


def _teardown_drill(drill):
    for node in (
        drill.primary,
        drill.standby.node if drill.standby is not None else None,
    ):
        if node is not None:
            try:
                node.teardown()
            except Exception:
                pass


def test_cadence_tick_structural_drift_resyncs_the_standby():
    drill, result = _booted_drill()
    try:
        old_image_id = drill.last_image.image_id
        # A phantom baseline entry makes the live mapping set differ
        # from the baseline, so capture_delta reports structural drift
        # (None) — the same signal a fork/exit/mmap produces.
        drill.baseline.mapping_seqs[(9999, 0x7F000000)] = 0
        drill._cadence_tick(result)
        standby = drill.standby
        # The drift tick cut a fresh full image (no delta shipped) and
        # resynced the standby onto it: applied_seq back to zero.
        assert result.deltas_sent == 0
        assert drill.last_image.image_id != old_image_id
        assert standby.image_id == drill.last_image.image_id
        assert standby.applied_seq == 0 and not standby.stale
        # The next tick chains gaplessly off the *new* image id...
        drill._cadence_tick(result)
        assert result.deltas_sent == 1
        assert standby.applied_seq == 1 and not standby.stale
        # ...and the resynced standby is promotable.
        assert standby.promote() is standby.node
    finally:
        _teardown_drill(drill)


def test_dropped_delta_gap_goes_stale_then_resync_recovers():
    drill, result = _booted_drill()
    try:
        # Cut a delta and drop it on the floor (never streamed): the
        # baseline advances past a sequence the standby will never see.
        dropped = capture_delta(drill.primary, drill.baseline, drill.config)
        assert dropped is not None and dropped.seq == 1
        drill._cadence_tick(result)  # the next delta arrives with a gap
        standby = drill.standby
        assert standby.stale
        # The same repair the drift path performs: fresh image + resync.
        assert drill._cut_full(result)
        standby.resync(drill.last_image)
        assert not standby.stale and standby.applied_seq == 0
        assert standby.image_id == drill.last_image.image_id
        assert standby.promote() is standby.node
    finally:
        _teardown_drill(drill)
