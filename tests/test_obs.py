"""Tests for the observability spine (``repro.obs``).

Covers the recording surfaces in isolation (spans, counters, events),
the controller's span-derived timing breakdown on commit *and* rollback,
determinism of the exports (two identical runs must produce byte-for-byte
identical JSON), and the ``trace`` CLI command.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.clock import VirtualClock
from repro.kernel import Kernel
from repro.mcr.ctl import McrCtl
from repro.obs.counters import CounterSet
from repro.obs.events import EventLog
from repro.obs.export import chrome_trace, collector_to_dict, to_json
from repro.obs.spans import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OPEN,
    SpanRecorder,
    render_tree,
)
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple


def _booted_simple(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    return program, session


class TestSpans:
    def test_nesting_and_ordering(self):
        clock = VirtualClock()
        recorder = SpanRecorder(clock)
        root = recorder.begin("update")
        clock.advance(10)
        child_a = recorder.begin("a")
        clock.advance(5)
        recorder.end(child_a)
        child_b = recorder.begin("b")
        clock.advance(7)
        recorder.end(child_b)
        recorder.end(root)
        assert [c.name for c in root.children] == ["a", "b"]
        assert child_a.parent is root and child_b.parent is root
        assert child_a.duration_ns == 5
        assert child_b.start_ns == child_a.end_ns
        assert root.duration_ns == 22
        assert [s.name for s in root.walk()] == ["update", "a", "b"]

    def test_open_span_has_zero_duration(self):
        recorder = SpanRecorder(VirtualClock())
        span = recorder.begin("open")
        assert span.status == STATUS_OPEN
        assert span.duration_ns == 0

    def test_context_manager_marks_error_and_reraises(self):
        clock = VirtualClock()
        recorder = SpanRecorder(clock)
        root = recorder.begin("update")
        with pytest.raises(ValueError):
            with recorder.span("phase"):
                clock.advance(3)
                raise ValueError("boom")
        phase = root.children[0]
        assert phase.status == STATUS_ERROR
        assert phase.duration_ns == 3
        # The recorder stack is back at the root: new spans nest correctly.
        with recorder.span("next"):
            pass
        assert [c.name for c in root.children] == ["phase", "next"]

    def test_ending_an_outer_span_closes_inner_ones(self):
        recorder = SpanRecorder(VirtualClock())
        outer = recorder.begin("outer")
        inner = recorder.begin("inner")
        recorder.end(outer, status=STATUS_ERROR)
        assert inner.closed and outer.closed
        assert recorder.current is None

    def test_close_is_idempotent(self):
        clock = VirtualClock()
        recorder = SpanRecorder(clock)
        span = recorder.begin("s")
        clock.advance(4)
        recorder.end(span)
        span.close(999, "error")  # ignored: already closed
        assert span.duration_ns == 4 and span.status == STATUS_OK

    def test_render_tree_lines(self):
        clock = VirtualClock()
        recorder = SpanRecorder(clock)
        with recorder.span("update"):
            with recorder.span("transfer"):
                clock.advance(2_000_000)
        text = render_tree(recorder.roots[0])
        assert "update" in text and "transfer" in text and "2.00 ms" in text


class TestCounters:
    def test_incr_and_gauge(self):
        counters = CounterSet()
        counters.incr("a")
        counters.incr("a", 4)
        counters.gauge("g", 1.5)
        assert counters.get("a") == 5
        assert counters.get("g") == 1.5
        assert counters.get("missing") == 0

    def test_snapshot_is_name_sorted(self):
        counters = CounterSet()
        counters.incr("zebra")
        counters.incr("alpha")
        assert list(counters.snapshot()) == ["alpha", "zebra"]


class TestEvents:
    def test_ring_buffer_eviction(self):
        clock = VirtualClock()
        log = EventLog(clock, capacity=3)
        for i in range(5):
            log.emit(f"e{i}", index=i)
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e.name for e in log] == ["e2", "e3", "e4"]

    def test_rejects_unknown_severity(self):
        log = EventLog(VirtualClock(), capacity=4)
        with pytest.raises(ValueError):
            log.emit("bad", severity="fatal")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(VirtualClock(), capacity=0)


class TestNoOpFastPath:
    def test_active_defaults_to_none(self):
        assert obs.ACTIVE is None

    def test_module_helpers_are_noops_without_collector(self):
        obs.incr("x")
        obs.gauge("y", 1)
        obs.emit("z")
        assert obs.ACTIVE is None

    def test_collecting_restores_previous(self):
        clock = VirtualClock()
        with obs.collecting(clock) as outer:
            assert obs.ACTIVE is outer
            with obs.collecting(clock) as inner:
                assert obs.ACTIVE is inner
            assert obs.ACTIVE is outer
        assert obs.ACTIVE is None

    def test_interleaved_scopes_restore_correctly(self):
        # Non-LIFO lifetimes: scope A opened before B but closed first
        # must not displace B from ACTIVE (the fleet plane interleaves
        # per-node activations exactly like this).
        clock = VirtualClock()
        a, b = obs.Collector(clock), obs.Collector(clock)
        scope_a = obs.scoped(a)
        scope_b = obs.scoped(b)
        scope_a.__enter__()
        scope_b.__enter__()
        assert obs.ACTIVE is b
        scope_a.__exit__(None, None, None)  # A exits while B is live
        assert obs.ACTIVE is b
        scope_b.__exit__(None, None, None)
        assert obs.ACTIVE is None

    def test_interleaved_install_uninstall(self):
        clock = VirtualClock()
        a, b = obs.Collector(clock), obs.Collector(clock)
        obs.install(a)
        obs.install(b)
        assert obs.ACTIVE is b
        obs.uninstall(a)  # removes a's activation, not the top
        assert obs.ACTIVE is b
        obs.uninstall(b)
        assert obs.ACTIVE is None

    def test_bare_uninstall_clears_all_scopes(self):
        clock = VirtualClock()
        obs.install(obs.Collector(clock))
        obs.install(obs.Collector(clock))
        obs.uninstall()
        assert obs.ACTIVE is None

    def test_recorder_for_matches_clock(self):
        clock = VirtualClock()
        with obs.collecting(clock) as collector:
            assert obs.recorder_for(clock) is collector.spans
            other = VirtualClock()
            assert obs.recorder_for(other) is not collector.spans


class TestUpdateSpans:
    def test_committed_update_phase_sums(self, kernel):
        _program, session = _booted_simple(kernel)
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed
        root = result.spans
        assert root is not None and root.name == "update"
        assert root.status == STATUS_OK
        child_names = [c.name for c in root.children]
        assert child_names == [
            "quiescence",
            "offline-analysis",
            "restart",
            "control-migration",
            "restore",
            "transfer",
            "commit",
        ]
        assert result.total_ns == root.duration_ns
        assert result.phase_sum_ns() <= result.total_ns
        assert result.quiescence_ns == root.find("quiescence").duration_ns
        assert result.transfer_ns == root.find("transfer").duration_ns
        assert result.transfer_ns == result.transfer_report.total_ns
        restart = root.find("restart").duration_ns
        migration = root.find("control-migration").duration_ns
        assert result.control_migration_ns == restart + migration

    def test_rolled_back_update_populates_completed_phases(self, kernel):
        _program, session = _booted_simple(kernel)
        kernel.fs.create("/etc/simple.conf", b"9999")  # config drift
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.rolled_back
        root = result.spans
        assert root is not None
        assert root.status == "rolled_back"
        child_names = [c.name for c in root.children]
        # The replay mismatch surfaces during control migration: everything
        # up to it completed, a rollback span closed the attempt, and no
        # later phase ever opened.
        assert "rollback" in child_names
        assert "transfer" not in child_names and "commit" not in child_names
        failed = root.find("control-migration")
        assert failed is not None and failed.status == STATUS_ERROR
        assert root.find("quiescence").status == STATUS_OK
        assert result.quiescence_ns == root.find("quiescence").duration_ns
        assert result.quiescence_ns > 0
        assert result.transfer_ns == 0
        assert result.total_ns == root.duration_ns
        assert result.phase_sum_ns() <= result.total_ns
        # Every span in the tree is closed despite the mid-phase error.
        assert all(span.closed for span in root.walk())

    def test_update_feeds_installed_collector(self, kernel):
        _program, session = _booted_simple(kernel)
        with obs.collecting(kernel.clock) as collector:
            result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed
        assert result.spans in collector.spans.roots
        counters = collector.counters.snapshot()
        assert counters["syscall.total"] > 0
        assert counters["transfer.processes"] == 1
        assert any(e.name == "update.finished" for e in collector.events)


class TestExportDeterminism:
    @staticmethod
    def _one_run():
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        with obs.collecting(kernel.clock) as collector:
            result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed
        return collector

    def test_identical_runs_export_identical_json(self):
        first = to_json(collector_to_dict(self._one_run()))
        second = to_json(collector_to_dict(self._one_run()))
        assert first == second

    def test_identical_runs_export_identical_chrome_traces(self):
        first = to_json(chrome_trace(self._one_run()))
        second = to_json(chrome_trace(self._one_run()))
        assert first == second

    def test_chrome_trace_shape(self):
        trace = chrome_trace(self._one_run())
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X"}
        complete = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"update", "quiescence", "transfer", "commit"} <= names
        for event in complete:
            assert event["dur"] >= 0 and event["ts"] >= 0
        # Must round-trip through the JSON encoder (Perfetto compatibility).
        json.loads(to_json(trace))


class TestTraceCli:
    def test_trace_command_exports_valid_chrome_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "simple", "--export", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "committed" in out
        assert "update" in out and "transfer" in out
        assert "counters" in out
        trace = json.loads(out_file.read_text())
        span_names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {
            "update",
            "quiescence",
            "offline-analysis",
            "restart",
            "control-migration",
            "restore",
            "transfer",
            "commit",
        } <= span_names

    def test_trace_cli_runs_are_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["trace", "simple", "--export", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_bench_json_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "table3", "--json"])
        assert args.json is True
        args = build_parser().parse_args(["bench", "table3"])
        assert args.json is False
