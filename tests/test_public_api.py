"""Tests for the top-level convenience API (``repro.boot``/``live_update``)."""

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("server", ["simple", "nginx", "vsftpd"])
    def test_boot_and_update(self, server):
        world = repro.boot(server)
        assert world.session.startup_complete
        result = repro.live_update(world, version=2)
        assert result.committed, result.error

    def test_explicit_program(self):
        from repro.servers import simple

        world = repro.boot("simple")
        result = repro.live_update(world, program=simple.make_program(2))
        assert result.committed

    def test_unknown_server(self):
        with pytest.raises(ModuleNotFoundError):
            repro.boot("iis")
