"""Tests for the update-series metadata and full-series walkthroughs."""

import pytest

from repro.bench.harness import boot_server
from repro.mcr.ctl import McrCtl
from repro.servers.updates import ALL_SERIES, make_httpd_update, series_for


class TestSeriesMetadata:
    def test_all_series_present(self):
        assert set(ALL_SERIES) == {"httpd", "nginx", "vsftpd", "opensshd"}

    def test_update_counts_match_paper(self):
        assert series_for("nginx").num_updates() == 25
        for name in ("httpd", "vsftpd", "opensshd"):
            assert series_for(name).num_updates() == 5

    def test_versions_are_contiguous(self):
        for series in ALL_SERIES.values():
            versions = [u.from_version for u in series.updates]
            for spec in series.updates:
                assert spec.to_version == spec.from_version + 1

    def test_type_changes_computed(self):
        nginx = series_for("nginx")
        changed = [u for u in nginx.updates if u.types_changed(nginx.make) > 0]
        # v2->3 (cycle), v7->8 (connection), v12->13 (stats).
        assert len(changed) >= 3

    def test_st_loc_only_for_semantic_updates(self):
        httpd = series_for("httpd")
        semantic = [u for u in httpd.updates if u.needs_st_handler]
        assert len(semantic) == 1 and semantic[0].st_loc > 0

    def test_annotation_loc_from_registry(self):
        assert series_for("httpd").annotation_loc() == 181
        assert series_for("nginx").annotation_loc() == 22


class TestSemanticUpdateFactory:
    def test_httpd_v6_gains_handler(self):
        program = make_httpd_update(6)
        assert "httpd_scoreboard" in program.annotations.obj_handlers

    def test_httpd_v5_has_no_handler(self):
        program = make_httpd_update(5)
        assert "httpd_scoreboard" not in program.annotations.obj_handlers


@pytest.mark.slow
class TestFullSeriesWalk:
    @pytest.mark.parametrize("name", ["vsftpd", "opensshd", "httpd"])
    def test_walk_all_five_updates(self, name):
        series = series_for(name)
        world = boot_server(name)
        series.setup_world(world.kernel)  # idempotent world files
        ctl = McrCtl(world.kernel, world.session)
        for spec in series.updates:
            program = series.make(spec.to_version)
            result = ctl.live_update(program)
            assert result.committed, (
                f"{name} v{spec.from_version}->v{spec.to_version}: {result.error}"
            )

    def test_walk_nginx_first_ten(self):
        series = series_for("nginx")
        world = boot_server("nginx")
        ctl = McrCtl(world.kernel, world.session)
        for spec in series.updates[:10]:
            result = ctl.live_update(series.make(spec.to_version))
            assert result.committed, (
                f"nginx v{spec.from_version}->v{spec.to_version}: {result.error}"
            )
