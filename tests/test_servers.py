"""Functional tests for the four simulated evaluation servers (v1)."""

import pytest

from repro.kernel import Kernel, sim_function
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import httpd, nginx, opensshd, vsftpd
from repro.servers.common import connect_with_retry, recv_line


def _boot(kernel, module, version=1, build=None, **kwargs):
    module.setup_world(kernel)
    program = module.make_program(version, **kwargs)
    build = build or BuildConfig.full()
    session = MCRSession(kernel, program, build) if build.mcr_enabled else None
    root = load_program(kernel, program, build=build, session=session)
    return program, session, root


@sim_function
def _liner(sys, port, cmds, out, expect_banner=False):
    fd = yield from connect_with_retry(sys, port)
    if expect_banner:
        line = yield from recv_line(sys, fd)
        out.append(line.decode().strip())
    for cmd in cmds:
        yield from sys.send(fd, (cmd + "\n").encode())
        line = yield from recv_line(sys, fd)
        out.append(line.decode().strip()[:70])
    yield from sys.close(fd)


class TestNginx:
    def test_serves_files(self, kernel):
        _boot(kernel, nginx)
        out = []
        kernel.spawn_process(_liner, args=(8081, ["GET /index.html", "STATS"], out))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 2)
        assert out[0].startswith("200 ")
        assert out[1].startswith("stats 2 v1")

    def test_404(self, kernel):
        _boot(kernel, nginx)
        out = []
        kernel.spawn_process(_liner, args=(8081, ["GET /missing"], out))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 1)
        assert out == ["404 not found"]

    def test_process_model(self, kernel):
        _program, session, _root = _boot(kernel, nginx)
        kernel.run(max_steps=100_000, until=lambda: session.startup_complete)
        tree = session.root_process.tree()
        names = sorted(p.name for p in tree)
        assert names == ["nginx-daemon", "nginx-worker"]  # root daemonized away

    def test_worker_pid_stored_in_cycle(self, kernel):
        _program, session, _root = _boot(kernel, nginx)
        kernel.run(max_steps=100_000, until=lambda: session.startup_complete)
        daemon = next(p for p in session.root_process.tree() if p.name == "nginx-daemon")
        worker = next(p for p in session.root_process.tree() if p.name == "nginx-worker")
        cycle = daemon.crt.gget("ngx_cycle")
        cycle_t = daemon.program.types["ngx_cycle_t"]
        assert daemon.crt.get(cycle, cycle_t, "worker_pid") == worker.pid

    def test_pointer_encoding_global(self, kernel):
        _program, session, _root = _boot(kernel, nginx)
        kernel.run(max_steps=100_000, until=lambda: session.startup_complete)
        daemon = next(p for p in session.root_process.tree() if p.name == "nginx-daemon")
        encoded = daemon.crt.gget("ngx_encoded_conf")
        assert encoded & 0x1  # tag bit set
        assert (encoded & ~0x3) == daemon.crt.gget("ngx_cycle")


class TestVsftpd:
    def test_login_and_retrieve(self, kernel):
        _boot(kernel, vsftpd)
        out = []
        kernel.spawn_process(
            _liner,
            args=(21, ["USER alice", "PASS pw", "STAT"], out, True),
        )
        kernel.run(max_steps=400_000, until=lambda: len(out) == 4)
        assert out[0].startswith("220")
        assert out[1].startswith("331")
        assert out[2].startswith("230")
        assert "user=alice" in out[3]

    def test_wrong_password(self, kernel):
        _boot(kernel, vsftpd)
        out = []
        kernel.spawn_process(
            _liner, args=(21, ["USER eve", "PASS wrong", "RETR /pub/readme.txt"], out, True)
        )
        kernel.run(max_steps=400_000, until=lambda: len(out) == 4)
        assert out[2].startswith("530")
        assert out[3].startswith("530")  # RETR refused: not logged in

    def test_forks_session_per_connection(self, kernel):
        _program, session, _root = _boot(kernel, vsftpd)
        out1, out2 = [], []
        kernel.spawn_process(_liner, args=(21, ["USER a", "PASS x"], out1, True))
        kernel.spawn_process(_liner, args=(21, ["USER b", "PASS y"], out2, True))
        kernel.run(max_steps=400_000, until=lambda: len(out1) == 3 and len(out2) == 3)
        sessions = [p for p in kernel.processes.values() if p.name == "vsftpd-session"]
        assert len(sessions) == 2

    def test_master_slot_table_updated(self, kernel):
        _program, session, root = _boot(kernel, vsftpd)
        out = []
        kernel.spawn_process(_liner, args=(21, ["USER a", "PASS x"], out, True))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 3)
        assert root.crt.gget("vsf_session_count") == 1


class TestOpensshd:
    def test_auth_and_exec(self, kernel):
        _boot(kernel, opensshd)
        out = []
        kernel.spawn_process(
            _liner, args=(22, ["AUTH bob pw", "EXEC whoami", "STAT"], out, True)
        )
        kernel.run(max_steps=500_000, until=lambda: len(out) == 4)
        assert out[0].startswith("SSH-2.0")
        assert out[1] == "auth-ok"
        assert out[2] == "helper-output:whoami"
        assert "user=bob execs=1" in out[3]

    def test_exec_requires_auth(self, kernel):
        _boot(kernel, opensshd)
        out = []
        kernel.spawn_process(_liner, args=(22, ["EXEC ls"], out, True))
        kernel.run(max_steps=400_000, until=lambda: len(out) == 2)
        assert "not authenticated" in out[1]

    def test_rng_state_points_into_library(self, kernel):
        _program, session, _root = _boot(kernel, opensshd)
        kernel.run(max_steps=100_000, until=lambda: session.startup_complete)
        daemon = next(p for p in session.root_process.tree() if p.name == "sshd-daemon")
        rng_ptr = daemon.crt.gget("sshd_rng_state")
        mapping = daemon.space.mapping_at(rng_ptr)
        assert mapping is not None and mapping.kind == "lib"


class TestHttpd:
    def test_serves_with_worker_threads(self, kernel):
        _boot(kernel, httpd)
        out = []
        kernel.spawn_process(_liner, args=(80, ["GET /index.html", "GET /file1k.bin"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 2)
        assert out[0] == "200 23"
        assert out[1] == "200 1024"

    def test_process_and_thread_model(self, kernel):
        _program, session, _root = _boot(kernel, httpd)
        kernel.run(max_steps=200_000, until=lambda: session.startup_complete)
        tree = session.root_process.tree()
        assert len(tree) == 1 + httpd.SERVER_PROCESSES
        for process in tree[1:]:
            # listener + worker threads (janitor comes later, lazily)
            assert len(process.live_threads()) == 1 + httpd.WORKER_THREADS

    def test_janitor_spawned_on_first_connection(self, kernel):
        _program, session, _root = _boot(kernel, httpd)
        out = []
        kernel.spawn_process(_liner, args=(80, ["GET /index.html"], out))
        kernel.run(max_steps=600_000, until=lambda: len(out) == 1)
        janitors = [
            t
            for p in session.root_process.tree()
            for t in p.live_threads()
            if t.name == "janitor"
        ]
        assert len(janitors) == 1

    def test_unprepared_httpd_aborts_on_own_pidfile(self, kernel):
        httpd.setup_world(kernel)
        kernel.fs.create("/var/run/httpd.pid", b"999")  # a running instance
        program = httpd.make_program(1, mcr_prepared=False)
        root = load_program(kernel, program, build=BuildConfig.baseline())
        kernel.run(max_steps=50_000)
        assert root.exited and root.exit_status == 1

    def test_prepared_httpd_ignores_pidfile(self, kernel):
        httpd.setup_world(kernel)
        kernel.fs.create("/var/run/httpd.pid", b"999")
        program = httpd.make_program(1, mcr_prepared=True)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        kernel.run(max_steps=300_000, until=lambda: session.startup_complete)
        assert not root.exited
        assert session.startup_complete
