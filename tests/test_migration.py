"""Planned-migration drills: pre-copy convergence, cutover, fault aborts.

The contract under test: a clean planned migration moves a serving tree
to a fresh target with **zero** lost requests and a brownout well inside
the downtime budget; a pre-copy fault costs a round but the migration
still completes; a stop-and-copy or cutover fault aborts cleanly with
the primary still serving.  Every drill — clean or faulted — ends with
migrated XOR primary-kept-serving, and ``run`` never raises.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.faultmatrix import run_migration_cell
from repro.fleet.migration import MigrationDrill, run_migration_drill
from repro.mcr.config import MCRConfig
from repro.mcr.faults import DEFAULT_ERRORS, MIGRATION_SITES, SITES, FaultPlan

FAULT_CELLS = tuple(MIGRATION_SITES) + ("migrate.precopy+migrate.cutover",)


def test_clean_migration_loses_nothing():
    config = MCRConfig()
    result = MigrationDrill("simple", config=config).run()
    assert result.error is None
    assert result.migrated and not result.aborted
    assert not result.primary_survived
    assert result.served_after
    assert result.requests_lost == 0
    assert result.precopy_rounds >= 1
    assert result.stopcopy_bytes is not None
    assert result.brownout_ns is not None
    assert result.brownout_ns < config.downtime_budget_ns
    assert result.perceived is not None and result.perceived["slo_ok"]


@pytest.mark.parametrize("site", FAULT_CELLS)
def test_fault_cells_converge_without_raising(site, tmp_path):
    cell = run_migration_cell(
        "simple", site, blackbox_path=str(tmp_path / "blackbox.json")
    )
    assert not cell["raised"], cell.get("error")
    assert cell["error"] is None
    assert cell["fired"], f"armed fault at {site} never fired"
    assert cell["served_after"]
    assert cell["requests_lost"] == 0
    # Exactly one end state per cell, never both, never neither.
    assert cell["migrated"] != cell["primary_survived"]
    assert cell["converged"]


def test_precopy_fault_costs_a_round_not_the_migration(tmp_path):
    cell = run_migration_cell(
        "simple", "migrate.precopy", blackbox_path=str(tmp_path / "blackbox.json")
    )
    assert cell["migrated"]
    assert cell["precopy_failures"] >= 1


def test_stopcopy_fault_aborts_back_to_the_primary(tmp_path):
    blackbox_path = tmp_path / "blackbox.json"
    cell = run_migration_cell(
        "simple", "migrate.stopcopy", blackbox_path=str(blackbox_path)
    )
    assert not cell["migrated"]
    assert cell["primary_survived"]
    assert cell["aborted"]
    # The aborted cutover dumped a black box naming the site that
    # killed it, both in the cell and on disk.
    assert cell["blackbox_site"] == "migrate.stopcopy"
    dumped = json.loads(blackbox_path.read_text())
    assert dumped["reason"] == "migrate.aborted"
    assert dumped["failure_site"] == "migrate.stopcopy"


def test_dropped_precopy_delta_reseeds_the_target():
    # A stream fault drops a captured delta on the floor; the next round
    # arrives with a sequence gap, the target goes stale, and the drill
    # repairs it with a fresh full-image reseed — then still migrates.
    config = MCRConfig(faults=FaultPlan().at("stream.send"))
    result = MigrationDrill("simple", config=config).run()
    assert result.error is None
    assert result.migrated
    assert result.precopy_failures >= 1
    assert result.reseeds >= 1
    assert result.requests_lost == 0


def test_zero_threshold_never_converges_but_still_cuts():
    # convergence_bytes=0 can never be satisfied (every delta ships at
    # least the fingerprint round-trip's dirty pages), so the policy
    # falls back to the max-round / forced-cut path.
    result = run_migration_drill(
        "simple", convergence_bytes=0, precopy_interval_ns=20_000_000
    )
    assert result.migrated
    assert not result.converged_precopy
    assert result.requests_lost == 0


def test_huge_threshold_converges_on_the_first_round():
    result = run_migration_drill(
        "simple",
        convergence_bytes=1 << 30,
        precopy_interval_ns=20_000_000,
    )
    assert result.migrated
    assert result.converged_precopy
    assert result.precopy_rounds == 1


def test_migration_sites_registered_in_the_fault_plane():
    assert set(MIGRATION_SITES) <= set(SITES)
    assert set(MIGRATION_SITES) <= set(DEFAULT_ERRORS)


def test_migration_exports_reachable_from_fleet_package():
    import repro.fleet as fleet

    assert fleet.MigrationDrill is MigrationDrill
    assert "MigrationResult" in fleet.__all__
    assert "run_migration_drill" in fleet.__all__
