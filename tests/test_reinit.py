"""Unit tests for mutable reinitialization: log, matching, stash, realloc."""

import pytest

from repro.errors import SimError
from repro.kernel.process import call_stack_id
from repro.mcr.reinit.callstack import deep_match, sanitize_args, sanitize_result
from repro.mcr.reinit.immutable import FdEntry, FdStash, ImmutableInventory
from repro.mcr.reinit.realloc import GlobalRealloc, Superobject, coalesce
from repro.mcr.reinit.startup_log import StartupLog, SyscallRecord


class TestCallStackId:
    def test_deterministic(self):
        assert call_stack_id(["main", "init"]) == call_stack_id(["main", "init"])

    def test_order_sensitive(self):
        assert call_stack_id(["a", "b"]) != call_stack_id(["b", "a"])

    def test_version_agnostic_names_only(self):
        # Same function names across versions -> same id, by construction.
        assert call_stack_id(["simple_main", "server_init"]) == call_stack_id(
            ["simple_main", "server_init"]
        )

    def test_empty_stack(self):
        assert isinstance(call_stack_id([]), int)


class TestSanitize:
    def test_callables_become_names(self):
        def worker_body():
            pass

        out = sanitize_args({"child_main": worker_body})
        assert out["child_main"] == "<fn:worker_body>"

    def test_small_bytes_inline(self):
        assert sanitize_args({"data": b"hi"})["data"] == b"hi"

    def test_large_bytes_digested(self):
        out = sanitize_args({"data": b"x" * 1000})
        assert isinstance(out["data"], str) and out["data"].startswith("<bytes:1000:")

    def test_same_large_payload_same_digest(self):
        a = sanitize_result(b"y" * 500)
        b = sanitize_result(b"y" * 500)
        assert a == b

    def test_opaque_objects_by_type(self):
        class Pool:
            pass

        assert sanitize_args({"pool": Pool()})["pool"] == "<obj:Pool>"

    def test_nested_structures(self):
        out = sanitize_args({"args": ({"k": b"z" * 200}, 5)})
        assert out["args"][1] == 5
        assert out["args"][0]["k"].startswith("<bytes:200:")


class TestDeepMatch:
    def test_exact_match(self):
        assert deep_match({"fd": 3, "port": 80}, {"fd": 3, "port": 80})

    def test_value_mismatch(self):
        assert not deep_match({"port": 80}, {"port": 8080})

    def test_key_set_mismatch(self):
        assert not deep_match({"port": 80}, {"port": 80, "backlog": 1})

    def test_fd_translation(self):
        assert deep_match({"fd": 4}, {"fd": 9}, fd_translation={4: 9})

    def test_fd_translation_misses(self):
        assert not deep_match({"fd": 4}, {"fd": 9}, fd_translation={4: 7})

    def test_translation_only_applies_to_fd_keys(self):
        assert not deep_match({"port": 4}, {"port": 9}, fd_translation={4: 9})

    def test_nested_lists(self):
        assert deep_match({"fds": [1, 2]}, {"fds": [1, 2]})
        assert not deep_match({"fds": [1, 2]}, {"fds": [1]})


class TestStartupLog:
    def _log_with(self, *entries):
        log = StartupLog()
        for pid, stack, name, args, result in entries:
            log.record(pid, stack, call_stack_id(stack), name, args, result)
        return log

    def test_find_match_by_stack_and_name(self):
        log = self._log_with(
            (100, ["main", "init"], "socket", {}, 900),
            (100, ["main", "init"], "bind", {"fd": 900, "port": 80}, 0),
        )
        rec = log.find_match(100, call_stack_id(["main", "init"]), "bind")
        assert rec is not None and rec.args["port"] == 80

    def test_consumed_records_skipped(self):
        log = self._log_with(
            (100, ["main"], "socket", {}, 900),
            (100, ["main"], "socket", {}, 901),
        )
        sid = call_stack_id(["main"])
        first = log.find_match(100, sid, "socket")
        first.consumed = True
        second = log.find_match(100, sid, "socket")
        assert second is not first and second.result == 901

    def test_wrong_pid_no_match(self):
        log = self._log_with((100, ["main"], "socket", {}, 900))
        assert log.find_match(999, call_stack_id(["main"]), "socket") is None

    def test_created_fd_detection(self):
        log = self._log_with((100, ["main"], "socket", {}, 902))
        rec = next(log.records())
        assert rec.created_fds == [902] and rec.creates_immutable

    def test_socketpair_list_result(self):
        log = self._log_with((100, ["main"], "socketpair", {}, [904, 905]))
        rec = next(log.records())
        assert rec.created_fds == [904, 905]

    def test_fork_creates_pid(self):
        log = self._log_with((100, ["main"], "fork", {"name": "w"}, 102))
        rec = next(log.records())
        assert rec.created_pid == 102

    def test_unconsumed_immutable(self):
        log = self._log_with(
            (100, ["main"], "socket", {}, 900),
            (100, ["main"], "nanosleep", {"duration_ns": 5}, None),
        )
        omissions = log.unconsumed_immutable(100)
        assert len(omissions) == 1 and omissions[0].name == "socket"

    def test_startup_fds(self):
        log = self._log_with(
            (100, ["main"], "socket", {}, 900),
            (100, ["main"], "open", {"path": "/x"}, 901),
            (103, ["w"], "epoll_create", {}, 902),
        )
        assert log.startup_fds(100) == [900, 901]
        assert log.startup_fds(103) == [902]

    def test_reset_consumption(self):
        log = self._log_with((100, ["main"], "socket", {}, 900))
        rec = next(log.records())
        rec.consumed = True
        log.reset_consumption()
        assert not rec.consumed

    def test_memory_accounting_grows(self):
        log = StartupLog()
        before = log.memory_bytes
        log.record(1, ["m"], 0, "open", {"path": "/etc/conf"}, 900)
        assert log.memory_bytes > before


class TestFdStash:
    def test_claim_lifecycle(self):
        stash = FdStash()
        stash.add(100, 3, 600)
        assert stash.stash_fd_for(100, 3) == 600
        assert not stash.is_claimed(100, 3)
        stash.claim(100, 3, 3)
        assert stash.is_claimed(100, 3)
        assert stash.unclaimed() == []

    def test_unclaimed_listing(self):
        stash = FdStash()
        stash.add(100, 3, 600)
        stash.add(100, 4, 601)
        stash.claim(100, 3, 3)
        assert stash.unclaimed() == [((100, 4), 601)]

    def test_all_stash_fds_sorted(self):
        stash = FdStash()
        stash.add(1, 9, 605)
        stash.add(1, 2, 601)
        assert stash.all_stash_fds() == [601, 605]


class TestInventory:
    def test_collect_walks_tree(self, kernel):
        from repro.kernel.process import sim_function

        @sim_function
        def child(sys):
            yield from sys.socket()
            while True:
                yield from sys.nanosleep(10_000_000)

        @sim_function
        def parent(sys):
            yield from sys.socket()
            yield from sys.fork(child, name="kid")
            while True:
                yield from sys.nanosleep(10_000_000)

        root = kernel.spawn_process(parent)
        kernel.run(max_steps=1_000)
        inventory = ImmutableInventory.collect(root, {})
        pids = {p.pid for p in root.tree()}
        assert set(inventory.pids) == pids
        # Parent socket inherited into child at fork: counted per process.
        assert len(inventory.fd_entries) >= 3

    def test_lookup(self):
        inventory = ImmutableInventory()
        obj = object()
        inventory.fd_entries.append(FdEntry(100, 3, obj, startup=True))
        assert inventory.lookup(100, 3).obj is obj
        assert inventory.lookup(100, 4) is None


class TestCoalesce:
    def test_merges_adjacent(self):
        merged = coalesce([(0x1000, 64), (0x1040, 64)])
        assert len(merged) == 1
        assert merged[0].base == 0x1000 and merged[0].size == 128

    def test_merges_within_gap(self):
        merged = coalesce([(0x1000, 64), (0x1080, 64)], gap=64)
        assert len(merged) == 1

    def test_keeps_distant_spans_separate(self):
        merged = coalesce([(0x1000, 64), (0x9000, 64)])
        assert len(merged) == 2

    def test_overlapping_spans(self):
        merged = coalesce([(0x1000, 128), (0x1040, 256)])
        assert len(merged) == 1
        assert merged[0].end == 0x1040 + 256

    def test_empty(self):
        assert coalesce([]) == []


class TestGlobalRealloc:
    def test_union_superobjects_across_pids(self):
        plan = GlobalRealloc()
        plan.add_heap_spans(100, [(0x1000, 64)])
        plan.add_heap_spans(101, [(0x1000, 64), (0x5000, 32)])
        union = plan.union_superobjects()
        assert len(union) == 2

    def test_apply_union_reserves(self, heap):
        plan = GlobalRealloc()
        base = heap.base + 4096
        plan.add_heap_spans(1, [(base, 256)])
        reserved = plan.apply_union_to_heap(heap)
        assert len(reserved) == 1
        assert heap.reserved_containing(base + 10) is not None

    def test_pin_symbols_and_libraries(self):
        plan = GlobalRealloc()
        plan.pin_symbol("conf", 0x600010)
        plan.pin_library("libcrypto", 0x7F000000)
        assert plan.pinned_symbols == {"conf": 0x600010}
        assert plan.lib_bases == {"libcrypto": 0x7F000000}
