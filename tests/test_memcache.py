"""Tests for the memcached-style server and its semantic update."""

import pytest

import repro
from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.servers import memcache
from repro.servers.common import connect_with_retry, recv_line
from repro.servers.memcache import PORT_MEMCACHE, entry_checksum


@sim_function
def _mc_client(sys, commands, replies):
    fd = yield from connect_with_retry(sys, PORT_MEMCACHE)
    for command in commands:
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
    yield from sys.close(fd)


def _talk(world, commands):
    replies = []
    world.kernel.spawn_process(_mc_client, args=(commands, replies))
    world.kernel.run(
        max_steps=500_000, until=lambda: len(replies) == len(commands)
    )
    assert len(replies) == len(commands), replies
    return replies


class TestProtocol:
    def test_set_get_del(self):
        world = repro.boot("memcache")
        replies = _talk(world, [
            "SET alpha one", "GET alpha", "DEL alpha", "GET alpha", "NSTATS",
        ])
        assert replies[0] == "STORED"
        assert replies[1] == "VALUE one"
        assert replies[2] == "DELETED"
        assert replies[3] == "MISS"
        assert replies[4].startswith("STATS items=0 hits=1 misses=1")

    def test_overwrite_keeps_count(self):
        world = repro.boot("memcache")
        replies = _talk(world, ["SET k v1", "SET k v2", "GET k", "NSTATS"])
        assert replies[2] == "VALUE v2"
        assert "items=1" in replies[3]

    def test_bucket_chains(self):
        """Colliding keys chain correctly and delete from mid-chain."""
        world = repro.boot("memcache")
        # Keys with equal byte sums collide by construction.
        a, b = "ab", "ba"
        assert memcache.key_hash(a) == memcache.key_hash(b)
        replies = _talk(world, [
            f"SET {a} first", f"SET {b} second",
            f"GET {a}", f"GET {b}",
            f"DEL {a}", f"GET {b}", f"GET {a}",
        ])
        assert replies[2] == "VALUE first"
        assert replies[3] == "VALUE second"
        assert replies[5] == "VALUE second"
        assert replies[6] == "MISS"

    def test_checksum_verified_in_v3(self):
        world = repro.boot("memcache", version=3)
        replies = _talk(world, ["SET k vvv", "GET k"])
        assert replies == ["STORED", "VALUE vvv"]


class TestSemanticUpdate:
    def _populate(self, world, n=6):
        commands = [f"SET key{i} value{i}" for i in range(n)]
        assert _talk(world, commands) == ["STORED"] * n

    def test_plain_update_v2_preserves_cache(self):
        world = repro.boot("memcache")
        self._populate(world)
        result = repro.live_update(world, version=2)
        assert result.committed, result.error
        replies = _talk(world, ["GET key0", "GET key5", "NSTATS"])
        assert replies[0] == "VALUE value0"
        assert replies[1] == "VALUE value5"
        assert "items=6" in replies[2] and replies[2].endswith("v2")

    def test_v3_without_handler_serves_corrupt(self):
        """Mutable tracing alone defaults the checksum -> v3 rejects all
        transferred entries: the paper's 'semantic change needs user
        code' case, made visible."""
        world = repro.boot("memcache")
        self._populate(world)
        result = repro.live_update(
            world, program=memcache.make_program(3, with_st_handler=False)
        )
        assert result.committed, result.error
        replies = _talk(world, ["GET key0", "GET key1"])
        assert replies == ["CORRUPT", "CORRUPT"]

    def test_v3_with_handler_rederives_checksums(self):
        world = repro.boot("memcache")
        self._populate(world)
        result = repro.live_update(world, program=memcache.make_program(3))
        assert result.committed, result.error
        replies = _talk(world, ["GET key0", "GET key3", "SET fresh new", "GET fresh"])
        assert replies[0] == "VALUE value0"
        assert replies[1] == "VALUE value3"
        assert replies[3] == "VALUE new"

    def test_chain_structure_survives_update(self):
        world = repro.boot("memcache")
        a, b, c = "ab", "ba", "ca"  # 'ab','ba' collide
        _talk(world, [f"SET {a} one", f"SET {b} two", f"SET {c} three"])
        result = repro.live_update(world, version=2)
        assert result.committed, result.error
        replies = _talk(world, [f"GET {a}", f"GET {b}", f"GET {c}", f"DEL {b}", f"GET {a}"])
        assert replies[0] == "VALUE one"
        assert replies[1] == "VALUE two"
        assert replies[2] == "VALUE three"
        assert replies[4] == "VALUE one"  # chain repaired around the delete

    def test_checksum_helper(self):
        assert entry_checksum("k", "v") == entry_checksum("k", "v")
        assert entry_checksum("k", "v") != entry_checksum("k", "w")
