"""Regression pins for failure modes discovered while building this repo.

Each test documents a real bug class found during development (all of
which the paper's design anticipates) and pins the fix.
"""

import pytest

import repro
from repro.kernel import Kernel, sim_function
from repro.kernel.fdtable import FDTable, FD_MAX, RESERVED_BASE, STASH_BASE
from repro.mcr.reinit.callstack import sanitize_result
from repro.mcr.reinit.startup_log import StartupLog, SyscallRecord
from repro.mem.address_space import AddressSpace
from repro.mem.ptmalloc import PtMallocHeap
from repro.mem.regions import RegionAllocator
from repro.mem.tags import TagStore
from repro.runtime.cruntime import CRuntime
from repro.types.descriptors import INT64, StructType


class TestFdSeparabilityRegression:
    """Bug: v1's config fd number was closed during startup and reused by
    the listener; replay then matched the *config open* against the
    *listener's* inherited number and silently swallowed a config change.
    Fix: startup-time fds come from the reserved, never-reused range."""

    def test_startup_fd_numbers_never_reused(self, kernel):
        @sim_function
        def prog(sys):
            cfg = yield from sys.open("/etc/x", "w")
            yield from sys.close(cfg)
            sock = yield from sys.socket()
            results.append((cfg, sock))
            while True:
                sys.loop_iter("m")
                yield from sys.nanosleep(10_000_000)

        from tests.helpers import boot_test_program, make_test_program

        results = []
        program = make_test_program([], main=prog, name="sep")
        program.quiescent_points = {("prog", "nanosleep")}
        boot_test_program(program, kernel=kernel)
        cfg, sock = results[0]
        assert cfg >= RESERVED_BASE and sock >= RESERVED_BASE
        assert cfg != sock  # the reuse that caused the ambiguity


class TestStashRangeRegression:
    """Bug: the inheritance stash used the same fd range as reserved
    startup fds, so a claimed fd could be GC'd as 'stash'.  Fix: the stash
    has its own disjoint range."""

    def test_ranges_disjoint(self):
        table = FDTable()
        reserved = table.install_reserved(object())
        stash = table.install_stash(object())
        assert RESERVED_BASE <= reserved < FD_MAX
        assert stash >= STASH_BASE
        # The stash now sits *above* the reserved range (wide enough for
        # 1000-worker trees); disjointness is what matters.
        assert STASH_BASE >= FD_MAX


class TestSocketpairSanitizationRegression:
    """Bug: sanitization turned socketpair's result tuple into a list, so
    its created fds were never recognized as inherited — the new version's
    epoll watched old endpoints while workers read new ones."""

    def test_pair_results_recognized_after_sanitization(self):
        raw = sanitize_result((904, 905))
        record = SyscallRecord(0, 100, ["m"], 1, "socketpair", {}, raw)
        assert record.created_fds == [904, 905]
        assert record.creates_immutable


class TestBootstrapFrameRegression:
    """Bug: the inheritance bootstrap was a @sim_function, adding a frame
    to every call stack, so no replayed syscall ever matched its record.
    Pin: a fresh update must replay (not live-execute) the listener."""

    def test_update_replays_rather_than_rebinds(self):
        world = repro.boot("simple")
        result = repro.live_update(world, 2)
        assert result.committed, result.error
        engine = result.new_session.replay_engine
        assert engine.replayed_count > 0
        # The listener object is shared, not recreated: same port owner.
        assert not world.kernel.net._listeners[8080].closed


class TestRegionTagCleanupRegression:
    """Bug: destroying an instrumented request region left stale tags
    behind; later traces resolved freed memory through them."""

    def test_region_destroy_drops_tags(self):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        heap.end_startup()

        class FakeProcess:
            pass

        process = FakeProcess()
        process.space = space
        process.heap = heap
        process.tags = TagStore()

        class FakeKernel:
            from repro.clock import VirtualClock

            clock = VirtualClock()

        process.kernel = FakeKernel()
        process.runtime = None
        crt = CRuntime.__new__(CRuntime)
        crt.process = process
        crt._stacks = {}
        crt._next_stack_base = 0x5000_0000
        region = RegionAllocator(heap, block_size=512)
        node = StructType("n", [("x", INT64)])
        address = region.alloc(node.size)
        process.tags.register(address, node, "region")
        crt.region_destroy(region)
        assert process.tags.lookup(address) is None
        assert process.tags.find_containing(address) is None


class TestSuperobjectChainingRegression:
    """Bug: a second chained update could not resolve pointers into
    memory the first update had pinned as superobjects (no chunk
    bookkeeping).  Pin: reserved ranges resolve as opaque objects."""

    def test_three_chained_updates_with_pinned_state(self):
        world = repro.boot("simple")
        from repro.servers.common import connect_with_retry, recv_line

        replies = []

        @sim_function
        def client(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"push 4\n")  # creates the hidden buffer
            line = yield from recv_line(sys, fd)
            replies.append(line.decode().strip())
            yield from sys.close(fd)

        world.kernel.spawn_process(client)
        world.kernel.run(max_steps=300_000, until=lambda: bool(replies))
        from repro.mcr.ctl import McrCtl
        from repro.servers import simple

        ctl = McrCtl(world.kernel, world.session)
        for _ in range(3):
            result = ctl.live_update(simple.make_program(2))
            assert result.committed, result.error
        # State must still sum correctly after three generations.
        check = []

        @sim_function
        def summer(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"sum\n")
            line = yield from recv_line(sys, fd)
            check.append(line.decode().strip())
            yield from sys.close(fd)

        world.kernel.spawn_process(summer)
        world.kernel.run(max_steps=300_000, until=lambda: bool(check))
        assert check == ["sum 4"]


class TestBaselineHeapModeRegression:
    """Bug: baseline (non-MCR) builds never left heap startup mode, so
    every free was deferred forever and baseline RSS grew unboundedly —
    skewing the memory-usage comparison."""

    def test_baseline_build_reuses_freed_memory(self):
        from repro.bench.harness import boot_server
        from repro.runtime.instrument import BuildConfig

        world = boot_server("nginx", build=BuildConfig.baseline())
        daemon = next(p for p in world.root.tree() if p.name == "nginx-daemon")
        assert not daemon.heap.startup_mode
        first = daemon.heap.malloc(64)
        daemon.heap.free(first)
        assert daemon.heap.malloc(64) == first
