"""Tests for the diagnostics renderer and the CLI front end."""

import pytest

from repro.errors import ConflictError, QuiescenceTimeout
from repro.cli import build_parser, main
from repro.kernel import Kernel
from repro.mcr.ctl import McrCtl
from repro.mcr.diagnostics import (
    describe_process_tree,
    describe_trace,
    describe_update,
    explain_conflict,
)
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import apply_invariants
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple


def _booted_simple(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    return program, session, root


class TestDiagnostics:
    def test_describe_trace_sections(self, kernel):
        _program, session, root = _booted_simple(kernel)
        trace = apply_invariants(GraphBuilder(root).build())
        text = describe_trace(trace)
        assert "objects:" in text and "pointers:" in text and "invariants:" in text
        assert f"pid {root.pid}" in text

    def test_describe_process_tree(self, kernel):
        _program, session, root = _booted_simple(kernel)
        text = describe_process_tree(root)
        assert root.name in text

    def test_describe_committed_update(self, kernel):
        _program, session, root = _booted_simple(kernel)
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        text = describe_update(result)
        assert "COMMITTED" in text
        assert "state transfer:" in text
        assert "process pair(s)" in text

    def test_describe_rolled_back_update_has_advice(self, kernel):
        _program, session, root = _booted_simple(kernel)
        kernel.fs.create("/etc/simple.conf", b"9999")  # config drift
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.rolled_back
        text = describe_update(result)
        assert "ROLLED BACK" in text
        assert "advice:" in text

    def test_explain_reinit_argument_conflict(self):
        error = ConflictError("reinit", "bind@main", "argument mismatch: ...")
        assert "MCR_ADD_REINIT_HANDLER" in explain_conflict(error)

    def test_explain_reinit_omission(self):
        error = ConflictError("reinit", "socket@main", "never replayed by ...")
        assert "omitted" in explain_conflict(error)

    def test_explain_tracing_type_conflict(self):
        error = ConflictError(
            "tracing", "session", "type of conservatively-handled object changed (x)"
        )
        advice = explain_conflict(error)
        assert "MCR_ADD_OBJ_HANDLER" in advice

    def test_explain_dropped_object(self):
        error = ConflictError(
            "tracing", "0x1", "pointer to an object with no new-version counterpart"
        )
        assert "state-transfer handler" in explain_conflict(error)

    def test_explain_quiescence_timeout(self):
        advice = explain_conflict(QuiescenceTimeout("laggards: x"))
        assert "profiler" in advice

    def test_explain_unknown(self):
        assert "Unrecognized" in explain_conflict(RuntimeError("boom"))


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "nginx"])
        assert args.server == "nginx"
        args = parser.parse_args(["bench", "table3"])
        assert args.experiment == "table3"

    def test_unknown_server_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["demo", "apache2"])

    def test_status_command(self, capsys):
        assert main(["status", "simple"]) == 0
        out = capsys.readouterr().out
        assert "phase: normal" in out

    def test_demo_command_commits(self, capsys):
        assert main(["demo", "simple"]) == 0
        out = capsys.readouterr().out
        assert "COMMITTED" in out

    def test_profile_command_single_server(self, capsys):
        assert main(["profile", "nginx"]) == 0
        out = capsys.readouterr().out
        assert "Quiescence profile for nginx" in out
        assert "SL=1 LL=2" in out
