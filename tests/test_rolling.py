"""Rolling per-worker live update (PR 5).

Covers the scoped quiescence protocol (the single divert site that lets
one worker batch park while the rest of the pool serves), the rolling
orchestration end to end on a real worker pool — commit, blackout win
over whole-tree at equal workload, fault -> verified rollback — and the
regression guarantee that the default whole-tree path is untouched.
"""

import pytest

from repro.bench.harness import boot_server
from repro.bench.updatetime import measure_rolling_comparison
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import FaultPlan
from repro.mcr.quiescence.detection import QuiescenceProtocol
from repro.servers import httpd
from repro.workloads.ab import ApacheBench


# -- Scoped quiescence units --------------------------------------------------


class _Clock:
    now_ns = 0


class _Kernel:
    clock = _Clock()


class _Session:
    kernel = _Kernel()
    config = MCRConfig()


class TestScopedQuiescence:
    def _protocol(self):
        return QuiescenceProtocol(_Session())

    def test_unscoped_request_covers_everything(self):
        qp = self._protocol()
        qp.request()
        anything = object()
        assert qp.in_scope(anything)
        assert qp.hook_should_block(anything)
        assert qp.hook_should_block(None)

    def test_scoped_request_diverts_only_scope_members(self):
        qp = self._protocol()
        worker, master = object(), object()
        qp.request(scope=[worker])
        assert qp.in_scope(worker)
        assert not qp.in_scope(master)
        assert qp.hook_should_block(worker)
        assert not qp.hook_should_block(master)
        # A hook call with no process (legacy caller) must stay safe and
        # divert — blocking too much is correct, serving too much is not.
        assert qp.hook_should_block(None)

    def test_extend_scope_widens_in_progress_protocol(self):
        qp = self._protocol()
        worker, master = object(), object()
        qp.request(scope=[worker])
        assert not qp.hook_should_block(master)
        qp.extend_scope([master])
        assert qp.hook_should_block(master)

    def test_extend_scope_is_noop_when_unscoped(self):
        qp = self._protocol()
        qp.request()
        qp.extend_scope([object()])
        assert qp.scope is None  # still whole-tree

    def test_release_clears_scope_and_stops_diverting(self):
        qp = self._protocol()
        worker = object()
        qp.request(scope=[worker])
        qp.release()
        assert qp.scope is None
        assert not qp.requested
        assert not qp.hook_should_block(worker)

    def test_no_block_before_request(self):
        qp = self._protocol()
        assert not qp.hook_should_block(object())


# -- Rolling orchestration end to end -----------------------------------------


def _warm_world(requests=60, warm=6):
    """httpd (2-worker pool) under a mid-flight reconnecting workload."""
    world = boot_server("httpd")
    kernel = world.kernel
    workload = ApacheBench(
        80, requests=requests, concurrency=4, reconnect_stall_ns=5_000_000
    )
    clients = workload(kernel)
    kernel.run(until=lambda: workload.latency.count >= warm, max_steps=2_000_000)
    return world, workload, clients


def _drain(world, workload, clients):
    world.kernel.run(
        until=lambda: all(c.exited for c in clients), max_steps=5_000_000
    )
    assert all(c.exited for c in clients)


class TestRollingUpdate:
    def test_rolling_update_commits_and_serves(self):
        world, workload, clients = _warm_world()
        ctl = McrCtl(world.kernel, world.session)
        result = ctl.live_update(
            httpd.make_program(2), config=MCRConfig(update_mode="rolling")
        )
        assert result.committed, result.error
        assert result.mode == "rolling"
        # 2 server workers hand off individually, then the remainder
        # (master + helpers) — at least two batches on this pool.
        assert result.rolling_batches >= 2
        _drain(world, workload, clients)
        assert workload.errors == 0
        assert workload.completed == workload.requests

    def test_rolling_blackout_beats_whole_tree(self):
        # Same program factory, same worker pool, same request stream —
        # only the update mode differs between the two worlds.
        row = measure_rolling_comparison("httpd")
        assert row["rolling_blackout_ms"] < row["wt_blackout_ms"]
        assert row["rolling_slo_ok"] is True
        assert row["rolling_batches"] >= 2

    def test_rolling_fault_rolls_back_verified(self):
        world, workload, clients = _warm_world()
        plan = FaultPlan().at("transfer.memory")
        ctl = McrCtl(world.kernel, world.session)
        result = ctl.live_update(
            httpd.make_program(2),
            config=MCRConfig(update_mode="rolling", faults=plan),
        )
        assert not result.committed
        assert result.rolled_back
        # The per-batch checkpoints replayed to prove v1 is bit-identical.
        assert result.rollback_verified is True
        _drain(world, workload, clients)
        assert workload.errors == 0
        assert workload.completed == workload.requests

    def test_default_config_stays_whole_tree(self):
        world, workload, clients = _warm_world()
        ctl = McrCtl(world.kernel, world.session)
        result = ctl.live_update(httpd.make_program(2))
        assert result.committed, result.error
        assert result.mode == "whole-tree"
        assert result.rolling_batches == 0
        _drain(world, workload, clients)
        assert workload.errors == 0
