"""Code-pointer remapping across versions (function relocation tags)."""

import pytest

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.mcr.tracing.transfer import StateTransfer
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import connect_with_retry, recv_line
from repro.runtime.program import GlobalVar
from repro.types.descriptors import FuncType, PointerType

from tests.helpers import boot_test_program, make_test_program


class TestTextSegment:
    def test_functions_get_text_symbols(self):
        program = make_test_program([GlobalVar("g", PointerType(None))])
        program.functions = ["alpha", "beta"]
        kernel, session, proc = boot_test_program(program)
        alpha = proc.symbols.lookup("alpha")
        beta = proc.symbols.lookup("beta")
        assert alpha.section == "text" and beta.section == "text"
        assert alpha.address != beta.address

    def test_func_addr_rejects_data_symbols(self):
        program = make_test_program([GlobalVar("g", PointerType(None))])
        program.functions = ["alpha"]
        kernel, session, proc = boot_test_program(program)
        with pytest.raises(KeyError):
            proc.crt.func_addr("g")

    def test_layout_differs_across_versions(self):
        kernel = Kernel()
        p1 = make_test_program([], version="1")
        p1.functions = ["alpha"]
        p2 = make_test_program([], version="2")
        p2.functions = ["alpha"]
        _k, _s, old = boot_test_program(p1, kernel=kernel)
        _k, _s, new = boot_test_program(p2, kernel=kernel)
        assert old.symbols.lookup("alpha").address != new.symbols.lookup("alpha").address


class TestCodePointerTransfer:
    def test_function_pointer_remapped_by_symbol(self):
        kernel = Kernel()
        handler_ptr = PointerType(FuncType("handler"), name="handler*")
        p1 = make_test_program([GlobalVar("dispatch", handler_ptr)], version="1")
        p1.functions = ["on_request", "on_close"]
        p2 = make_test_program([GlobalVar("dispatch", handler_ptr)], version="2")
        p2.functions = ["on_request", "on_close"]
        _k, _s, old = boot_test_program(p1, kernel=kernel)
        _k, _s, new = boot_test_program(p2, kernel=kernel)
        old.crt.gset("dispatch", old.crt.func_addr("on_close"))  # dirty
        StateTransfer(old, new, p2).run()
        assert new.crt.gget("dispatch") == new.crt.func_addr("on_close")
        assert new.crt.gget("dispatch") != old.crt.func_addr("on_close")

    def test_simple_server_handler_fn_survives_update(self, kernel):
        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        replies = []

        @sim_function
        def client(sys):
            fd = yield from connect_with_retry(sys, 8080)
            yield from sys.send(fd, b"push 1\n")
            line = yield from recv_line(sys, fd)
            replies.append(line.decode().strip())
            yield from sys.close(fd)

        kernel.spawn_process(client)
        kernel.run(max_steps=300_000, until=lambda: bool(replies))
        old_fn = root.crt.gget("handler_fn")
        assert old_fn == root.crt.func_addr("server_handle_event")
        result = McrCtl(kernel, session).live_update(simple.make_program(2))
        assert result.committed, result.error
        new_root = result.new_root
        new_fn = new_root.crt.gget("handler_fn")
        # Remapped to the NEW version's text layout, not copied.
        assert new_fn == new_root.crt.func_addr("server_handle_event")
        assert new_fn != old_fn
