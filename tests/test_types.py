"""Unit tests for the C-like type system."""

import pytest

from repro.types.descriptors import (
    ArrayType,
    CHAR,
    FuncType,
    INT16,
    INT32,
    INT64,
    OpaqueType,
    PointerType,
    StructType,
    UINT8,
    UnionType,
    VOID_PTR,
    WORD_SIZE,
)
from repro.types.layout import align_up, struct_layout, union_layout


class TestLayout:
    def test_align_up_exact(self):
        assert align_up(16, 8) == 16

    def test_align_up_rounds(self):
        assert align_up(17, 8) == 24

    def test_align_up_rejects_zero(self):
        with pytest.raises(ValueError):
            align_up(4, 0)

    def test_struct_layout_padding(self):
        # int32 at 0, int64 padded to 8, total 16, align 8 (SysV).
        offsets, size, align = struct_layout([(4, 4), (8, 8)])
        assert offsets == [0, 8]
        assert size == 16
        assert align == 8

    def test_struct_layout_tail_padding(self):
        offsets, size, align = struct_layout([(8, 8), (1, 1)])
        assert size == 16  # padded to struct alignment

    def test_empty_struct(self):
        offsets, size, align = struct_layout([])
        assert offsets == [] and size == 0 and align == 1

    def test_union_layout(self):
        size, align = union_layout([(4, 4), (12, 8)])
        assert align == 8
        assert size == 16


class TestDescriptors:
    def test_int_sizes(self):
        assert INT32.size == 4 and INT64.size == 8 and UINT8.size == 1

    def test_pointer_is_word_sized(self):
        assert VOID_PTR.size == WORD_SIZE

    def test_struct_field_offsets(self):
        s = StructType("s", [("a", INT32), ("p", VOID_PTR), ("b", INT16)])
        assert s.field("a").offset == 0
        assert s.field("p").offset == 8
        assert s.field("b").offset == 16
        assert s.size == 24

    def test_struct_missing_field_raises(self):
        s = StructType("s", [("a", INT32)])
        with pytest.raises(KeyError):
            s.field("zzz")

    def test_pointer_offsets_struct(self):
        s = StructType("s", [("a", INT32), ("p", VOID_PTR), ("q", PointerType(INT32))])
        offsets = [off for off, _ in s.pointer_offsets()]
        assert offsets == [8, 16]

    def test_pointer_offsets_array_of_structs(self):
        node = StructType("node", [("v", INT32), ("next", VOID_PTR)])
        arr = ArrayType(node, 3)
        offsets = [off for off, _ in arr.pointer_offsets()]
        assert offsets == [8, 24, 40]

    def test_char_array_is_opaque(self):
        assert ArrayType(CHAR, 8).is_opaque()

    def test_int_array_is_not_opaque(self):
        assert not ArrayType(INT32, 8).is_opaque()

    def test_union_is_opaque(self):
        u = UnionType("u", [("a", INT64), ("p", VOID_PTR)])
        assert u.is_opaque()
        assert u.size == 8

    def test_opaque_ranges_of_embedded_buffer(self):
        s = StructType("s", [("a", INT32), ("buf", ArrayType(CHAR, 16)), ("p", VOID_PTR)])
        ranges = list(s.opaque_ranges())
        assert ranges == [(4, 16)]

    def test_signature_detects_field_addition(self):
        v1 = StructType("l_t", [("value", INT32), ("next", VOID_PTR)])
        v2 = StructType("l_t", [("value", INT32), ("new", INT32), ("next", VOID_PTR)])
        assert v1.signature() != v2.signature()
        assert v1 != v2

    def test_signature_stable_for_same_shape(self):
        a = StructType("t", [("x", INT32)])
        b = StructType("t", [("x", INT32)])
        assert a == b and hash(a) == hash(b)

    def test_pointer_signature_uses_target_name_only(self):
        # Cyclic type graphs must not recurse through pointers.
        v1 = PointerType(StructType("n", [("v", INT32)]))
        v2 = PointerType(StructType("n", [("v", INT64)]))
        assert v1.signature() == v2.signature()

    def test_negative_array_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(INT32, -1)

    def test_opaque_type(self):
        o = OpaqueType(40)
        assert o.is_opaque() and o.size == 40

    def test_func_type(self):
        f = FuncType("handler")
        assert f.size == WORD_SIZE and f.signature() == "fn"
