"""Property-based tests (hypothesis) on core data structures & invariants."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.kernel.process import call_stack_id
from repro.mcr.reinit.callstack import deep_match, sanitize_args
from repro.mcr.reinit.realloc import coalesce
from repro.mcr.tracing.transform import default_value, transform_value
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, PageTracker
from repro.mem.ptmalloc import PtMallocHeap
from repro.mem.tags import TagStore
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
)

# -- strategy helpers ---------------------------------------------------------

_field_types = st.sampled_from([INT32, INT64, CHAR, PointerType(None)])


@st.composite
def struct_types(draw, name="s", min_fields=1, max_fields=6):
    count = draw(st.integers(min_fields, max_fields))
    fields = [(f"f{i}", draw(_field_types)) for i in range(count)]
    return StructType(name, fields)


@st.composite
def struct_values(draw, struct):
    value = {}
    for field in struct.fields:
        if field.type is CHAR:
            value[field.name] = draw(st.integers(0, 255))
        elif field.type.kind == "pointer":
            value[field.name] = draw(st.integers(0, 2**48))
        elif field.type is INT32:
            value[field.name] = draw(st.integers(-(2**31), 2**31 - 1))
        else:
            value[field.name] = draw(st.integers(-(2**63), 2**63 - 1))
    return value


class TestTransformProperties:
    @given(st.data())
    @settings(max_examples=60)
    def test_identity_transform_roundtrips(self, data):
        struct = data.draw(struct_types())
        value = data.draw(struct_values(struct))
        out = transform_value(struct, struct, value, lambda p: p)
        # Pointers survive identity translation; scalars unchanged.
        assert out == value

    @given(st.data())
    @settings(max_examples=60)
    def test_field_addition_preserves_common_fields(self, data):
        base = data.draw(struct_types(max_fields=4))
        value = data.draw(struct_values(base))
        grown = StructType("s", [(f.name, f.type) for f in base.fields] + [("extra", INT64)])
        out = transform_value(base, grown, value, lambda p: p)
        for field in base.fields:
            assert out[field.name] == value[field.name]
        assert out["extra"] == 0

    @given(st.data())
    @settings(max_examples=60)
    def test_field_removal_keeps_remainder(self, data):
        base = data.draw(struct_types(min_fields=2))
        value = data.draw(struct_values(base))
        shrunk = StructType("s", [(f.name, f.type) for f in base.fields[:-1]])
        out = transform_value(base, shrunk, value, lambda p: p)
        assert set(out) == {f.name for f in shrunk.fields}

    @given(st.data())
    @settings(max_examples=40)
    def test_default_value_encodable(self, data):
        struct = data.draw(struct_types())
        space = AddressSpace()
        space.map(4096, address=0x30000)
        from repro.types import codec

        codec.write_value(space, 0x30000, struct, default_value(struct))
        assert codec.read_value(space, 0x30000, struct) == default_value(struct)


class TestCoalesceProperties:
    spans = st.lists(
        st.tuples(
            st.integers(0x1000, 0x100000).map(lambda v: v & ~0xF),
            st.integers(1, 512),
        ),
        min_size=0,
        max_size=30,
    )

    @given(spans)
    @settings(max_examples=80)
    def test_coalesce_covers_all_inputs(self, spans):
        merged = coalesce(spans)
        for base, size in spans:
            assert any(o.base <= base and base + size <= o.end for o in merged)

    @given(spans)
    @settings(max_examples=80)
    def test_coalesce_output_sorted_and_disjoint(self, spans):
        merged = coalesce(spans)
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.base  # strictly disjoint, ascending

    @given(spans)
    @settings(max_examples=40)
    def test_coalesce_idempotent(self, spans):
        once = coalesce(spans)
        twice = coalesce([(o.base, o.size) for o in once])
        assert [(o.base, o.size) for o in once] == [(o.base, o.size) for o in twice]


class TestHeapProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 1500), st.booleans()),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40)
    def test_interleaved_alloc_free_never_overlaps(self, operations):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        heap.end_startup()
        live = {}
        for size, should_free in operations:
            addr = heap.malloc(size)
            # No overlap with any live allocation.
            for other, other_size in live.items():
                assert addr + size <= other or other + other_size <= addr
            if should_free:
                heap.free(addr)
            else:
                live[addr] = size
        assert heap.live_chunk_count() == len(live)

    @given(st.lists(st.integers(1, 300), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_reserved_ranges_never_allocated(self, sizes):
        space = AddressSpace()
        heap = PtMallocHeap(space)
        heap.end_startup()
        reserved_base = heap.base + 64 * 1024
        heap.reserve_range(reserved_base, 4096)
        for size in sizes:
            addr = heap.malloc(size)
            chunk = heap.find_chunk(addr)
            assert not (
                chunk.base < reserved_base + 4096
                and reserved_base < chunk.base + chunk.total_size
            )


class TestPageTrackerProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 16 * PAGE_SIZE - 64), st.integers(1, 64)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_dirty_iff_written(self, writes):
        tracker = PageTracker(0, 16 * PAGE_SIZE)
        tracker.clear()
        written_pages = set()
        for address, size in writes:
            tracker.note_write(address, size)
            for page in range(address // PAGE_SIZE, (address + size - 1) // PAGE_SIZE + 1):
                written_pages.add(page)
        for page in range(16):
            assert tracker.is_dirty(page * PAGE_SIZE) == (page in written_pages)


class TestTagStoreProperties:
    @given(st.sets(st.integers(0, 1000), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_find_containing_consistency(self, slots):
        store = TagStore()
        node = StructType("n", [("x", INT64)])
        addresses = sorted(0x1000 + s * 16 for s in slots)
        for address in addresses:
            store.register(address, node, "heap")
        for address in addresses:
            assert store.find_containing(address + 4).address == address
        # Gaps between objects resolve to nothing.
        for address in addresses:
            gap = address + node.size
            if gap not in addresses:
                found = store.find_containing(gap)
                assert found is None or found.address != address


class TestMatchProperties:
    args_strategy = st.dictionaries(
        st.sampled_from(["fd", "port", "path", "data"]),
        st.one_of(st.integers(0, 100), st.text(max_size=8), st.binary(max_size=16)),
        max_size=4,
    )

    @given(args_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_sanitized_args_always_match_themselves(self, args):
        sanitized = sanitize_args(args)
        assert deep_match(sanitized, sanitize_args(args))

    @given(st.lists(st.text(min_size=1, max_size=12), max_size=6))
    @settings(max_examples=60)
    def test_call_stack_id_injective_enough(self, names):
        assume(names)
        base = call_stack_id(names)
        assert call_stack_id(list(names)) == base
        mutated = names + ["extra_frame"]
        assert call_stack_id(mutated) != base
