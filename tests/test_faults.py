"""The fault plane and the transactional update it exists to prove.

Paper §3: a failed live update "simply causes the new version to
terminate and the old version to resume execution from the checkpoint".
These tests drive the ``repro.mcr.faults`` injection plane through the
real controller and assert the transaction's contract at every site:

* ``run_update`` never raises — every outcome is committed xor
  rolled back (property-tested over all sites with hypothesis);
* after any rollback the old tree's fingerprint matches its checkpoint;
* quiescence timeouts are retried with backoff before giving up;
* a fault *after* the point of no return rolls forward to a consistent
  committed tree;
* a fault *inside rollback* (double fault) still leaves the old version
  serving, loudly flagged via ``rollback_failed``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConflictError,
    MCRError,
    MemoryFault,
    QuiescenceTimeout,
    SimError,
)
from repro.kernel import Kernel, sim_function
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import (
    DEFAULT_ERRORS,
    FaultArm,
    FaultPlan,
    SITES,
    TreeFingerprint,
)
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import connect_with_retry, recv_line


def _boot(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    return program, session, root


def _serve_one(kernel, command, expected_prefix):
    replies = []

    @sim_function
    def client(sys):
        fd = yield from connect_with_retry(sys, 8080)
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
        yield from sys.close(fd)

    kernel.spawn_process(client)
    kernel.run(max_steps=300_000, until=lambda: bool(replies))
    assert replies and replies[0].startswith(expected_prefix), replies
    return replies[0]


def _update(kernel, session, plan=None, **config_kwargs):
    config = MCRConfig(faults=plan, **config_kwargs)
    return McrCtl(kernel, session).live_update(simple.make_program(2), config=config)


class TestFaultArm:
    def test_deterministic_window(self):
        arm = FaultArm("transfer.memory", nth=2, times=2)
        assert [arm.should_fire() for _ in range(5)] == [
            False, True, True, False, False,
        ]

    def test_probabilistic_stream_is_seeded(self):
        a = FaultArm("transfer.memory", probability=0.5, seed=7)
        b = FaultArm("transfer.memory", probability=0.5, seed=7)
        assert [a.should_fire() for _ in range(32)] == [
            b.should_fire() for _ in range(32)
        ]

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultArm("not.a.site")

    def test_every_site_has_a_default_error(self):
        assert set(DEFAULT_ERRORS) == set(SITES)
        for site, factory in DEFAULT_ERRORS.items():
            assert isinstance(factory(), BaseException), site


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_inert(self):
        plan = FaultPlan()
        assert not plan
        plan.fire("transfer.memory")  # unarmed: must not raise
        assert plan.injected == []

    def test_fire_raises_tagged_error_and_records(self):
        plan = FaultPlan().at("transfer.memory")
        with pytest.raises(MemoryFault) as excinfo:
            plan.fire("transfer.memory")
        assert excinfo.value.fault_site == "transfer.memory"
        assert plan.injected == [("transfer.memory", 1)]
        assert plan.last_fired == "transfer.memory"
        # The window is spent: the next hit passes through.
        plan.fire("transfer.memory")
        assert plan.hit_counts() == {"transfer.memory": 2}

    def test_custom_error_instance_raised_as_is(self):
        boom = SimError("custom")
        plan = FaultPlan().at("offline.analysis", error=boom)
        with pytest.raises(SimError) as excinfo:
            plan.fire("offline.analysis")
        assert excinfo.value is boom

    def test_reset_rearms(self):
        plan = FaultPlan().at("commit.prepare")
        with pytest.raises(MCRError):
            plan.fire("commit.prepare")
        plan.reset()
        assert plan.injected == []
        with pytest.raises(MCRError):
            plan.fire("commit.prepare")


class TestTreeFingerprint:
    def test_idle_tree_fingerprint_is_stable(self, kernel):
        _program, _session, root = _boot(kernel)
        first = TreeFingerprint.capture(kernel, root)
        second = TreeFingerprint.capture(kernel, root)
        assert first.matches(second)
        assert first.diff(second) == []

    def test_memory_mutation_changes_fingerprint(self, kernel):
        _program, _session, root = _boot(kernel)
        before = TreeFingerprint.capture(kernel, root)
        _serve_one(kernel, "push 11", "ok 1")  # allocates + writes heap
        after = TreeFingerprint.capture(kernel, root)
        problems = before.diff(after)
        assert problems, "a served mutation must change the fingerprint"
        assert any("memory changed" in p or "allocator" in p for p in problems)


class TestTransactionalUpdate:
    @pytest.mark.parametrize("site", sorted(SITES))
    def test_every_site_survives(self, kernel, site):
        """Arm each site in turn: committed xor rolled back, never raises,
        and the surviving version answers traffic."""
        _program, session, _root = _boot(kernel)
        _serve_one(kernel, "push 4", "ok 1")
        plan = FaultPlan()
        if site == "quiescence.wait":
            plan.at(site, times=MCRConfig().quiescence_max_retries + 1)
        elif site == "rollback":
            plan.at("transfer.memory").at(site)
        else:
            plan.at(site)
        result = _update(kernel, session, plan)
        assert result.committed != result.rolled_back
        if result.rolled_back:
            assert result.failure_site is not None
            assert result.rollback_verified is True, result.failure_site
            assert _serve_one(kernel, "version", "version 1")
            assert _serve_one(kernel, "sum", "sum 4") == "sum 4"
        else:
            assert _serve_one(kernel, "version", "version 2")

    @settings(max_examples=20, deadline=None)
    @given(site=st.sampled_from(sorted(SITES)))
    def test_any_single_fault_never_raises(self, site):
        """Property: one fault at any site -> clean outcome, no exception."""
        kernel = Kernel()
        _program, session, _root = _boot(kernel)
        plan = FaultPlan()
        if site == "quiescence.wait":
            plan.at(site, times=MCRConfig().quiescence_max_retries + 1)
        else:
            plan.at(site)
        result = _update(kernel, session, plan)
        assert result.committed != result.rolled_back
        expect_commit = site in ("commit.critical", "rollback") or not plan.injected
        assert result.committed == expect_commit
        if result.rolled_back:
            assert result.rollback_verified is True

    def test_quiescence_retry_then_succeed(self, kernel):
        _program, session, _root = _boot(kernel)
        plan = FaultPlan().at("quiescence.wait", times=1)
        result = _update(kernel, session, plan)
        assert result.committed, result.error
        assert result.retries == 1

    def test_quiescence_retries_exhausted_rolls_back(self, kernel):
        _program, session, _root = _boot(kernel)
        retries = MCRConfig().quiescence_max_retries
        plan = FaultPlan().at("quiescence.wait", times=retries + 1)
        result = _update(kernel, session, plan)
        assert result.rolled_back
        assert result.retries == retries
        assert isinstance(result.error, QuiescenceTimeout)
        assert result.failure_site == "quiescence.wait"
        assert result.rollback_verified is True

    def test_post_point_of_no_return_fault_rolls_forward(self, kernel):
        """After the old tree is torn down, a commit fault must complete
        the commit (rolling back is no longer possible)."""
        _program, session, _root = _boot(kernel)
        _serve_one(kernel, "push 6", "ok 1")
        plan = FaultPlan().at("commit.critical")
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(
            simple.make_program(2), config=MCRConfig(faults=plan)
        )
        assert result.committed
        assert not result.rolled_back
        assert result.error is not None
        assert result.failure_site == "commit.critical"
        # The new version is consistent: phase normal, barrier released,
        # state carried over, and it serves.
        assert ctl.session is result.new_session
        assert ctl.session.phase == "normal"
        assert _serve_one(kernel, "version", "version 2")
        assert _serve_one(kernel, "sum", "sum 6") == "sum 6"

    def test_double_fault_keeps_old_version_serving(self, kernel):
        _program, session, _root = _boot(kernel)
        _serve_one(kernel, "push 9", "ok 1")
        plan = FaultPlan().at("transfer.memory").at("rollback")
        result = _update(kernel, session, plan)
        assert result.rolled_back
        assert result.rollback_failed  # degradation is loud, not silent
        assert result.rollback_verified is True
        assert _serve_one(kernel, "version", "version 1")
        assert _serve_one(kernel, "sum", "sum 9") == "sum 9"

    def test_conflict_details_reach_the_result(self, kernel):
        _program, session, _root = _boot(kernel)
        plan = FaultPlan().at("reinit.replay")
        result = _update(kernel, session, plan)
        assert result.rolled_back
        assert isinstance(result.error, ConflictError)
        assert result.error.origin == "reinit"
        assert result.error.subject == "injected-operation"

    def test_status_reports_last_update(self, kernel):
        _program, session, _root = _boot(kernel)
        ctl = McrCtl(kernel, session)
        plan = FaultPlan().at("transfer.memory")
        result = ctl.live_update(
            simple.make_program(2), config=MCRConfig(faults=plan)
        )
        assert result.rolled_back
        status = ctl.status()
        assert status["last_update"] == "rolled_back"
        assert status["last_update_failure_site"] == "transfer.memory"
        assert status["last_update_rollback_verified"] is True

    def test_empty_plan_update_commits_normally(self, kernel):
        _program, session, _root = _boot(kernel)
        result = _update(kernel, session, FaultPlan())
        assert result.committed
        assert result.failure_site is None
        assert result.retries == 0
