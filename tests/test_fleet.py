"""Tests for the fleet plane (``repro.fleet``).

Covers the node factory (cheap stamped-out kernels, strict cross-node
isolation), the deterministic load balancer, lockstep fleet time, and
the SLO-gated canary → wave orchestrator under clean and faulted
rollouts.  The headline invariants: two nodes in one process share no
clock/collector/counter/allocator state (an update on A leaves B's tree
byte-identical), a clean fleet rollout loses zero requests, and a
faulted rollout ends uniform — all-old or all-new, never mixed.
"""

import pytest

from repro import obs
from repro.fleet import Fleet, LoadBalancer, Node, Orchestrator, wave_plan
from repro.mcr.faults import FaultPlan


class TestWavePlan:
    def test_serial(self):
        assert wave_plan(4, canary=1, growth=1) == [1, 1, 1, 1]

    def test_geometric(self):
        assert wave_plan(16, canary=1, growth=4) == [1, 4, 11]
        assert wave_plan(16, canary=1, growth=2) == [1, 2, 4, 8, 1]

    def test_covers_total(self):
        for total in (1, 2, 5, 16, 33):
            for growth in (1, 2, 4, 16):
                assert sum(wave_plan(total, growth=growth)) == total


class TestLoadBalancer:
    def test_split_preserves_total(self):
        lb = LoadBalancer([0, 1, 2])
        counts = lb.route(10)
        assert sum(counts.values()) == 10

    def test_even_split_all_nodes(self):
        lb = LoadBalancer([0, 1, 2, 3])
        assert lb.route(8) == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_remainder_rotates_across_windows(self):
        lb = LoadBalancer([0, 1, 2])
        first = lb.route(4)   # remainder lands starting at offset 0
        second = lb.route(4)  # ... then the offset has advanced
        assert first != second
        assert sum(first.values()) == sum(second.values()) == 4

    def test_updating_node_excluded(self):
        lb = LoadBalancer([0, 1, 2])
        lb.mark_updating(1)
        counts = lb.route(6)
        assert 1 not in counts
        assert sum(counts.values()) == 6
        assert lb.requests_shifted == 6
        lb.mark_healthy(1)
        assert 1 in lb.route(6)

    def test_all_out_sheds(self):
        lb = LoadBalancer([0, 1])
        lb.mark_updating(0)
        lb.mark_updating(1)
        assert lb.route(5) == {}

    def test_deterministic(self):
        a, b = LoadBalancer([0, 1, 2]), LoadBalancer([0, 1, 2])
        for _ in range(5):
            assert a.route(7) == b.route(7)


@pytest.fixture(scope="module")
def pair():
    """Two booted simple-server nodes in one process (module-shared)."""
    fleet = Fleet.boot(2, server="simple")
    yield fleet
    fleet.teardown()


class TestNodeIsolation:
    def test_nodes_have_disjoint_kernels_and_collectors(self, pair):
        a, b = pair.nodes
        assert a.kernel is not b.kernel
        assert a.kernel.clock is not b.kernel.clock
        assert a.collector is not b.collector
        assert a.session is not b.session

    def test_no_ambient_collector_outside_scopes(self, pair):
        assert obs.ACTIVE is None

    def test_update_on_a_leaves_b_byte_identical(self):
        fleet = Fleet.boot(2, server="simple")
        try:
            a, b = fleet.nodes
            before_b = b.fingerprint()
            clock_b = b.now_ns
            counters_b = dict(b.collector.counters.snapshot())
            result = a.update(to_version=2)
            assert result.committed
            # B's clock did not move, B's counters did not change, and
            # B's entire tree (memory, fds, allocator) is byte-identical.
            assert b.now_ns == clock_b
            assert dict(b.collector.counters.snapshot()) == counters_b
            assert before_b.matches(b.fingerprint())
            assert b.served_version() == 1
            assert a.served_version() == 2
        finally:
            fleet.teardown()

    def test_update_records_into_own_collector_only(self):
        fleet = Fleet.boot(2, server="simple")
        try:
            a, b = fleet.nodes
            b_spans = len(b.collector.spans.roots)
            a.update(to_version=2)
            assert len(b.collector.spans.roots) == b_spans
            names = {
                span.name
                for root in a.collector.spans.roots
                for span in root.walk()
            }
            assert "update" in names
        finally:
            fleet.teardown()


class TestFleetServing:
    def test_clean_windows_lose_nothing(self, pair):
        before = pair.requests_sent
        pair.serve_window(8, 2_000_000)
        pair.drain()
        assert pair.requests_sent == before + 8
        assert pair.requests_lost == 0

    def test_sync_advances_all_to_max(self, pair):
        pair.nodes[0].run_for(1_000_000)
        pair.sync()
        assert pair.nodes[0].now_ns == pair.nodes[1].now_ns == pair.now_ns


class TestOrchestrator:
    def test_clean_rollout_zero_loss_and_uniform(self):
        fleet = Fleet.boot(4, server="simple")
        try:
            orch = Orchestrator(fleet, wave_growth=4, requests_per_window=8)
            orch.serve_windows(2)
            report = orch.rollout(to_version=2)
            assert report.outcome == "updated"
            assert report.uniform
            assert fleet.versions() == [2, 2, 2, 2]
            assert fleet.served_versions() == [2, 2, 2, 2]
            assert fleet.requests_lost == 0
            assert all(o.slo_ok for o in report.outcomes)
        finally:
            fleet.teardown()

    def test_canary_fault_reverts_whole_fleet(self):
        fleet = Fleet.boot(4, server="simple")
        try:
            orch = Orchestrator(fleet, requests_per_window=8)
            report = orch.rollout(
                to_version=2,
                fault_plans={0: FaultPlan().at("transfer.memory")},
            )
            assert report.outcome == "reverted"
            assert report.waves_run == 1  # aborted at the canary gate
            assert set(fleet.versions()) == {1}
            canary = report.outcomes[0]
            assert canary.rolled_back and canary.rollback_verified
        finally:
            fleet.teardown()

    def test_midwave_fault_revert_policy_ends_all_old(self):
        fleet = Fleet.boot(6, server="simple")
        try:
            orch = Orchestrator(
                fleet, on_fault="revert", requests_per_window=6
            )
            report = orch.rollout(
                to_version=2,
                fault_plans={2: FaultPlan().at("transfer.memory")},
            )
            assert report.outcome == "reverted"
            assert report.uniform
            assert set(fleet.versions()) == {1}
            assert set(fleet.served_versions()) == {1}
            assert report.reverted_nodes  # committed nodes walked back
            assert fleet.requests_lost == 0
        finally:
            fleet.teardown()

    def test_midwave_fault_converge_policy_ends_all_new(self):
        fleet = Fleet.boot(6, server="simple")
        try:
            orch = Orchestrator(
                fleet, on_fault="converge", requests_per_window=6
            )
            report = orch.rollout(
                to_version=2,
                fault_plans={2: FaultPlan().at("transfer.memory")},
            )
            assert report.outcome == "updated"
            assert report.uniform
            assert report.converge_retries >= 1
            assert set(fleet.versions()) == {2}
            assert set(fleet.served_versions()) == {2}
        finally:
            fleet.teardown()

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            Orchestrator(Fleet([]), on_fault="shrug")


class TestNodeFactory:
    def test_boot_is_cheap(self):
        import time

        start = time.perf_counter()
        node = Node.boot("simple", node_id=9)
        elapsed_ms = (time.perf_counter() - start) * 1000
        assert node.version == 1
        assert node.served_version() == 1
        assert elapsed_ms < 500  # budget is ~50 ms; generous for CI boxes
        node.teardown()

    def test_memcache_node(self):
        node = Node.boot("memcache")
        try:
            assert node.served_version() == 1
            node.serve(4)
            node.drain()
            assert node.completed == 4 and node.lost == 0
            result = node.update(to_version=2)
            assert result.committed
            assert node.served_version() == 2
        finally:
            node.teardown()
