"""Scheduler and concurrency semantics of the simulated kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel, sim_function
from repro.kernel.kernel import Barrier
from repro.kernel.syscalls import TIMEOUT


class TestFairness:
    def test_round_robin_interleaves_threads(self, kernel):
        order = []

        @sim_function
        def spinner(sys, tag, rounds):
            for _ in range(rounds):
                order.append(tag)
                yield from sys.sched_yield()

        kernel.spawn_process(spinner, args=("a", 5))
        kernel.spawn_process(spinner, args=("b", 5))
        kernel.run(max_steps=1_000)
        # Strict alternation within each scheduling round.
        assert order[:6] == ["a", "b", "a", "b", "a", "b"]

    def test_blocked_threads_do_not_starve_runnable(self, kernel):
        progressed = []

        @sim_function
        def blocked(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 9911)
            yield from sys.listen(fd)
            yield from sys.accept(fd)  # forever

        @sim_function
        def worker(sys):
            for index in range(100):
                yield from sys.cpu(100)
                progressed.append(index)

        kernel.spawn_process(blocked)
        kernel.spawn_process(worker)
        kernel.run(max_steps=5_000)
        assert len(progressed) == 100


class TestBlockingAndTimers:
    def test_timeout_vs_ready_prefers_ready(self, kernel):
        """If data arrives before the deadline, the data wins."""
        results = []

        @sim_function
        def receiver(sys, fd):
            data = yield from sys.recv(fd, timeout_ns=50_000_000)
            results.append(data)

        @sim_function
        def prog(sys):
            a, b = yield from sys.socketpair()
            listen = yield from sys.socket()
            yield from sys.bind(listen, 9912)
            yield from sys.listen(listen)
            conn_client = yield from sys.connect(9912)
            conn_server = yield from sys.accept(listen)
            yield from sys.thread_create(receiver, args=(conn_server,))
            yield from sys.nanosleep(1_000_000)  # well before the deadline
            yield from sys.send(conn_client, b"on-time")

        kernel.spawn_process(prog)
        kernel.run(max_steps=10_000)
        assert results == [b"on-time"]

    def test_multiple_sleepers_wake_in_deadline_order(self, kernel):
        wakes = []

        @sim_function
        def sleeper(sys, tag, ns):
            yield from sys.nanosleep(ns)
            wakes.append((tag, sys.kernel.clock.now_ns))

        kernel.spawn_process(sleeper, args=("late", 30_000_000))
        kernel.spawn_process(sleeper, args=("early", 10_000_000))
        kernel.spawn_process(sleeper, args=("mid", 20_000_000))
        kernel.run(max_steps=1_000)
        assert [w[0] for w in wakes] == ["early", "mid", "late"]
        assert wakes[0][1] <= wakes[1][1] <= wakes[2][1]

    def test_barrier_releases_all_waiters(self, kernel):
        barrier = Barrier()
        resumed = []

        @sim_function
        def waiter(sys, tag):
            yield from sys.raw("barrier_wait", {"barrier": barrier})
            resumed.append(tag)

        for tag in ("x", "y", "z"):
            kernel.spawn_process(waiter, args=(tag,))
        kernel.run(max_steps=100)
        assert barrier.arrived == 3 and resumed == []
        barrier.release()
        kernel.run(max_steps=100)
        assert sorted(resumed) == ["x", "y", "z"]


class TestForkIsolation:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(1, 64)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_post_fork_allocations_never_corrupt_sibling(self, operations):
        """After fork, parent and child heaps evolve independently: bytes
        written by one are never visible to the other."""
        kernel = Kernel()
        observed = {}

        @sim_function
        def child(sys, ops):
            crt_writes = []
            for index, (_, size) in enumerate(ops):
                addr = sys.process.heap.malloc(size)
                sys.process.space.write_bytes(addr, b"C" * min(size, 8))
                crt_writes.append(addr)
            observed["child"] = [
                (a, sys.process.space.read_bytes(a, 1)) for a in crt_writes
            ]
            yield from sys.exit(0)

        @sim_function
        def parent(sys, ops):
            pre_fork = sys.process.heap.malloc(16)
            sys.process.space.write_bytes(pre_fork, b"SHARED!!")
            yield from sys.fork(child, args=(ops,), name="kid")
            writes = []
            for who, size in ops:
                addr = sys.process.heap.malloc(size)
                sys.process.space.write_bytes(addr, b"P" * min(size, 8))
                writes.append(addr)
            yield from sys.wait_child()
            observed["parent"] = [
                (a, sys.process.space.read_bytes(a, 1)) for a in writes
            ]
            observed["pre_fork_parent"] = sys.process.space.read_bytes(pre_fork, 8)

        kernel.spawn_process(parent, args=(operations,))
        kernel.run(max_steps=50_000)
        assert all(byte == b"P" for _, byte in observed["parent"])
        assert all(byte == b"C" for _, byte in observed["child"])
        assert observed["pre_fork_parent"] == b"SHARED!!"

    def test_fork_child_sees_prefork_heap_snapshot(self, kernel):
        seen = {}

        @sim_function
        def child(sys, addr):
            seen["child"] = sys.process.space.read_bytes(addr, 4)
            yield from sys.exit(0)

        @sim_function
        def parent(sys):
            addr = sys.process.heap.malloc(16)
            sys.process.space.write_bytes(addr, b"snap")
            yield from sys.fork(child, args=(addr,))
            sys.process.space.write_bytes(addr, b"post")
            yield from sys.wait_child()

        kernel.spawn_process(parent)
        kernel.run(max_steps=10_000)
        assert seen["child"] == b"snap"
