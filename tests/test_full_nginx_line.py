"""The paper's headline series: all 25 nginx updates, applied live.

"we selected ... 25 updates for nginx (v0.8.54-v1.0.15)" — the simulated
line walks v1 through v26 with traffic before and after, state carried the
whole way.
"""

import pytest

from repro.bench.harness import boot_server
from repro.kernel import sim_function
from repro.mcr.ctl import McrCtl
from repro.servers import nginx
from repro.servers.common import connect_with_retry, recv_line
from repro.servers.updates import NGINX_SERIES


@sim_function
def _stats_client(sys, out):
    fd = yield from connect_with_retry(sys, 8081)
    yield from sys.send(fd, b"GET /index.html\n")
    yield from sys.recv(fd)
    yield from sys.send(fd, b"STATS\n")
    line = yield from recv_line(sys, fd)
    out.append(line.decode().strip())
    yield from sys.close(fd)


@pytest.mark.slow
def test_all_25_nginx_updates_live():
    world = boot_server("nginx")
    kernel = world.kernel
    out = []
    kernel.spawn_process(_stats_client, args=(out,))
    kernel.run(max_steps=400_000, until=lambda: len(out) == 1)
    assert out[0] == "stats 2 v1"

    ctl = McrCtl(kernel, world.session)
    assert len(NGINX_SERIES.updates) == 25
    for spec in NGINX_SERIES.updates:
        result = ctl.live_update(nginx.make_program(spec.to_version))
        assert result.committed, (
            f"v{spec.from_version}->v{spec.to_version} "
            f"({spec.description}): {result.error}"
        )
        assert result.total_ms() < 1000.0

    after = []
    kernel.spawn_process(_stats_client, args=(after,))
    kernel.run(max_steps=400_000, until=lambda: len(after) == 1)
    # 2 requests before the walk + 2 from this client; counter carried
    # across every release, now served by v26.
    assert after[0] == "stats 4 v26"
