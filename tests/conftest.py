"""Shared fixtures for the MCR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.mem.address_space import AddressSpace
from repro.mem.ptmalloc import PtMallocHeap


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def heap(space: AddressSpace) -> PtMallocHeap:
    heap = PtMallocHeap(space)
    heap.end_startup()  # most allocator tests want normal-mode behaviour
    return heap


@pytest.fixture
def startup_heap(space: AddressSpace) -> PtMallocHeap:
    return PtMallocHeap(space)  # still in startup mode
