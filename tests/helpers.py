"""Shared test utilities: craft small programs/processes for unit tests."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel.kernel import Kernel
from repro.kernel.process import sim_function
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, Program, load_program
from repro.types.descriptors import TypeDesc


@sim_function
def idle_main(sys):
    """A program body that parks forever (its QP is the nanosleep)."""
    while True:
        sys.loop_iter("idle")
        yield from sys.nanosleep(10_000_000)


def make_test_program(
    globals_: List[GlobalVar],
    types: Optional[Dict[str, TypeDesc]] = None,
    main=None,
    name: str = "testprog",
    version: str = "1",
) -> Program:
    return Program(
        name=name,
        version=version,
        globals_=globals_,
        main=main or idle_main,
        types=types or {},
        quiescent_points={("idle_main", "nanosleep")},
    )


def boot_test_program(
    program: Program,
    kernel: Optional[Kernel] = None,
    build: Optional[BuildConfig] = None,
):
    """Load + run until startup completes; returns (kernel, session, proc)."""
    kernel = kernel or Kernel()
    build = build or BuildConfig.full()
    session = MCRSession(kernel, program, build) if build.mcr_enabled else None
    process = load_program(kernel, program, build=build, session=session)
    if session is not None:
        kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    else:
        kernel.run(max_steps=1_000)
    return kernel, session, process
