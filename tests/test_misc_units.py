"""Assorted unit coverage: clock, errors, sysapi helpers, ctl handle,
kernel edge semantics (epoll del, recvmsg install_at, exec + fds, OOM)."""

import pytest

from repro.clock import NS_PER_MS, StopWatch, VirtualClock
from repro.errors import (
    AllocatorError,
    BadFileDescriptor,
    ConflictError,
    MemoryFault,
)
from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.mem.address_space import AddressSpace
from repro.mem.ptmalloc import PtMallocHeap
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple


class TestClock:
    def test_advance_monotonic(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now_ns == 15
        assert clock.now_ms == 15 / NS_PER_MS

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_stopwatch(self):
        clock = VirtualClock()
        watch = StopWatch(clock)
        clock.advance(2_000_000)
        assert watch.elapsed_ms() == 2.0
        watch.restart()
        assert watch.elapsed_ns() == 0


class TestErrors:
    def test_memory_fault_message(self):
        fault = MemoryFault(0xDEAD, "write to unmapped memory")
        assert "0xdead" in str(fault)
        assert fault.address == 0xDEAD

    def test_conflict_error_fields(self):
        conflict = ConflictError("reinit", "bind@init", "argument mismatch")
        assert conflict.origin == "reinit"
        assert "bind@init" in str(conflict) and "argument mismatch" in str(conflict)

    def test_bad_fd_carries_number(self):
        assert BadFileDescriptor(42).fd == 42


class TestCtlHandle:
    def test_history_and_rebinding(self, kernel):
        simple.setup_world(kernel)
        program = simple.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        load_program(kernel, program, build=BuildConfig.full(), session=session)
        kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
        ctl = McrCtl(kernel, session)
        first = ctl.live_update(simple.make_program(2))
        assert first.committed
        assert ctl.session is first.new_session  # re-bound
        kernel.fs.create("/etc/simple.conf", b"1234")  # force a failure
        second = ctl.live_update(simple.make_program(2))
        assert second.rolled_back
        assert ctl.session is first.new_session  # NOT re-bound on failure
        assert len(ctl.history) == 2
        assert ctl.status()["version"] == "2"


class TestKernelEdges:
    def test_epoll_del_stops_reporting(self, kernel):
        seen = []

        @sim_function
        def prog(sys):
            a, b = yield from sys.socketpair()
            ep = yield from sys.epoll_create()
            yield from sys.epoll_ctl(ep, "add", a)
            yield from sys.sendmsg(b, b"x")
            seen.append((yield from sys.epoll_wait(ep)))
            yield from sys.epoll_ctl(ep, "del", a)
            seen.append((yield from sys.epoll_wait(ep, timeout_ns=1_000_000)))

        kernel.spawn_process(prog)
        kernel.run(max_steps=1_000)
        from repro.kernel.syscalls import TIMEOUT

        assert seen[0] and seen[1] is TIMEOUT

    def test_recvmsg_install_at_pins_numbers(self, kernel):
        placed = []

        @sim_function
        def prog(sys):
            a, b = yield from sys.socketpair()
            listen = yield from sys.socket()
            yield from sys.bind(listen, 6543)
            yield from sys.listen(listen)
            yield from sys.sendmsg(a, b"fd", pass_fds=[listen])
            _data, fds = yield from sys.recvmsg(b, install_at=[77])
            placed.extend(fds)

        kernel.spawn_process(prog)
        kernel.run(max_steps=1_000)
        assert placed == [77]

    def test_exec_keeps_fd_table(self, kernel):
        observed = []

        @sim_function
        def helper(sys, fd):
            data, _ = yield from sys.recvmsg(fd)
            observed.append(data)
            yield from sys.exit(0)

        @sim_function
        def prog(sys):
            a, b = yield from sys.socketpair()
            yield from sys.sendmsg(a, b"kept-across-exec")
            yield from sys.exec("helper", helper, args=(b,))

        kernel.spawn_process(prog)
        kernel.run(max_steps=1_000)
        assert observed == [b"kept-across-exec"]

    def test_listener_shared_by_refcount_across_close(self, kernel):
        """A listener stays bound while any process still holds it."""

        @sim_function
        def child(sys, fd):
            while True:
                yield from sys.nanosleep(10_000_000)

        @sim_function
        def parent(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 7654)
            yield from sys.listen(fd)
            yield from sys.fork(child, args=(fd,), name="holder")
            yield from sys.close(fd)  # parent lets go; child still holds
            while True:
                yield from sys.nanosleep(10_000_000)

        kernel.spawn_process(parent)
        kernel.run(max_steps=1_000)
        listener = kernel.net.listener_for(7654)
        assert listener is not None and not listener.closed

    def test_heap_exhaustion_raises(self):
        space = AddressSpace()
        heap = PtMallocHeap(space, size=64 * 1024)
        heap.end_startup()
        with pytest.raises(AllocatorError):
            heap.malloc(128 * 1024)

    def test_thread_exception_does_not_kill_kernel(self, kernel):
        """An uncaught SimError inside one thread leaves others running."""
        results = []

        @sim_function
        def crasher(sys):
            yield from sys.send(999, b"boom")  # bad fd -> SimError thrown in

        @sim_function
        def survivor(sys):
            yield from sys.nanosleep(1_000_000)
            results.append("alive")

        kernel.spawn_process(crasher)
        kernel.spawn_process(survivor)
        with pytest.raises(BadFileDescriptor):
            kernel.run(max_steps=1_000)
        kernel.run(max_steps=1_000)
        assert results == ["alive"]
