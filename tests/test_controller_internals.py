"""Unit tests for controller internals: RestoreContext pairing helpers,
offline analysis outputs, and the realloc plan application."""

import pytest

from repro.kernel import Kernel, sim_function
from repro.mcr.controller import LiveUpdateController, RestoreContext
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import vsftpd
from repro.servers.common import connect_with_retry, recv_line


def _boot_vsftpd_with_sessions(kernel, session_count=2):
    vsftpd.setup_world(kernel)
    program = vsftpd.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    done = []

    @sim_function
    def login(sys, index):
        fd = yield from connect_with_retry(sys, 21)
        yield from recv_line(sys, fd)
        yield from sys.send(fd, f"USER u{index}\n".encode())
        yield from recv_line(sys, fd)
        yield from sys.send(fd, b"PASS pw\n")
        yield from recv_line(sys, fd)
        done.append(index)
        while True:  # hold the session open
            yield from sys.nanosleep(50_000_000)

    for index in range(session_count):
        kernel.spawn_process(login, args=(index,))
    kernel.run(max_steps=600_000, until=lambda: len(done) == session_count)
    return program, session, root


class TestRestoreContextPairing:
    def _context_after_control_migration(self, kernel, session, root):
        """Drive a controller up to (but not past) the handler stage."""
        controller = LiveUpdateController(kernel, session, vsftpd.make_program(2))
        session.quiescence.request()
        session.quiescence.wait(root)
        plan = controller._offline_analysis()
        new_root = controller._restart(plan)
        controller._run_control_migration(new_root)
        return controller, RestoreContext(controller, new_root), new_root

    def test_missing_counterparts_are_the_sessions(self, kernel):
        _program, session, root = _boot_vsftpd_with_sessions(kernel, 2)
        controller, context, new_root = self._context_after_control_migration(
            kernel, session, root
        )
        missing = context.missing_counterparts()
        assert len(missing) == 2
        assert all(p.name == "vsftpd-session" for p in missing)
        controller._rollback(new_root)

    def test_paired_new_process_by_pid(self, kernel):
        _program, session, root = _boot_vsftpd_with_sessions(kernel, 1)
        controller, context, new_root = self._context_after_control_migration(
            kernel, session, root
        )
        paired = context.paired_new_process(root)
        assert paired is not None
        assert paired.pid == root.pid
        assert paired is not root
        controller._rollback(new_root)

    def test_respawn_creates_counterpart_with_same_identity(self, kernel):
        _program, session, root = _boot_vsftpd_with_sessions(kernel, 1)
        controller, context, new_root = self._context_after_control_migration(
            kernel, session, root
        )
        old_session_proc = next(
            p for p in root.tree() if p.name == "vsftpd-session"
        )
        restore = _program.metadata["session_restore"]
        new_proc = context.respawn(old_session_proc, restore, args=(0,))
        assert new_proc.pid == old_session_proc.pid
        assert new_proc.creation_stack_id == old_session_proc.creation_stack_id
        assert new_proc.parent in new_root.tree()
        controller._rollback(new_root)


class TestOfflineAnalysis:
    def test_plan_pins_libs_and_reserves_heap(self, kernel):
        from repro.servers import opensshd

        opensshd.setup_world(kernel)
        program = opensshd.make_program(1)
        session = MCRSession(kernel, program, BuildConfig.full())
        root = load_program(kernel, program, build=BuildConfig.full(), session=session)
        kernel.run(until=lambda: session.startup_complete, max_steps=300_000)
        controller = LiveUpdateController(kernel, session, opensshd.make_program(2))
        session.quiescence.request()
        session.quiescence.wait(root)
        plan = controller._offline_analysis()
        assert "libcrypto" in plan.lib_bases
        # Function symbols are never pinned even if likely-targeted.
        new_program = controller.new_program
        for pinned in new_program.pinned_symbols:
            symbol = root.symbols.get(pinned)
            assert symbol is None or symbol.section != "text"
        session.quiescence.release()
