"""Durable checkpoint images: round-trip, delta chains, corruption, blackbox.

The tentpole property is byte-identity: checkpoint a quiesced server,
restore it into a fresh kernel, and the restored tree's
``TreeFingerprint`` must match the image exactly — for every server,
and after any full-then-N-incremental delta chain.  The hardening
property is atomicity: a damaged or incompatible image raises a typed
``ImageError`` naming the failing section and never yields a partially
restored tree.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointImage,
    DeltaBaseline,
    FORMAT_VERSION,
    StandbyChannel,
    WarmStandby,
    capture_delta,
    checkpoint_node,
    read_image,
    restore_image,
    resume_node,
    write_image,
)
from repro.errors import ImageError, PromotionError
from repro.fleet.node import REQUEST_SCRIPTS, Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import FaultPlan, TreeFingerprint

SERVERS = ("simple", "httpd", "nginx", "vsftpd", "memcache")

WARMUP_NS = 30_000_000


def _boot_warm(server: str, requests: int = 4) -> Node:
    """Boot a node, push some traffic through it, and drain in-flight work."""
    node = Node.boot(server)
    if requests and server in REQUEST_SCRIPTS:
        node.serve(requests)
    node.run_for(WARMUP_NS)
    return node


def _teardown(*nodes: Node) -> None:
    for node in nodes:
        if node is not None and not node.torn_down:
            node.teardown()


# -- full-image round trip ----------------------------------------------------


@pytest.mark.parametrize("server", SERVERS)
def test_round_trip_fingerprint_identical(server):
    source = _boot_warm(server)
    restored = None
    try:
        image = checkpoint_node(source)
        assert image.server == server
        assert image.meta["format"] == FORMAT_VERSION
        restored = restore_image(image, node_id=1)
        live = restored.fingerprint()
        assert image.fingerprint.diff(live) == []
    finally:
        _teardown(source, restored)


def test_restored_node_serves_after_resume(tmp_path):
    source = _boot_warm("simple")
    restored = None
    try:
        image = checkpoint_node(source)
        path = tmp_path / "simple.img"
        write_image(image, str(path))
        reloaded = read_image(str(path))
        assert reloaded.image_id == image.image_id
        assert reloaded.fingerprint.diff(image.fingerprint) == []
        restored = resume_node(restore_image(reloaded, node_id=1))
        restored.serve(3)
        restored.run_for(WARMUP_NS)
        assert restored.completed == 3
        assert restored.lost == 0
    finally:
        _teardown(source, restored)


def test_fingerprint_dict_round_trip():
    node = _boot_warm("simple")
    try:
        original = node.fingerprint()
        clone = TreeFingerprint.from_dict(original.to_dict())
        assert clone.diff(original) == []
        # JSON round-trip must be lossless too (the image meta relies on it).
        rejson = TreeFingerprint.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rejson.diff(original) == []
    finally:
        _teardown(node)


# -- delta chains -------------------------------------------------------------


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rounds=st.lists(st.integers(min_value=1, max_value=3), max_size=3))
def test_full_then_incremental_chain_matches_primary(rounds):
    """Full image + N streamed deltas leave the standby byte-identical."""
    primary = _boot_warm("simple")
    standby = None
    try:
        image = checkpoint_node(primary)
        baseline = DeltaBaseline(image)
        standby = WarmStandby.from_image(image, node_id=1)
        channel = StandbyChannel()
        for requests in rounds:
            primary.serve(requests)
            primary.run_for(WARMUP_NS)
            delta = capture_delta(primary, baseline)
            assert delta is not None, "no structural change expected"
            channel.send(delta)
            for blob in channel.drain():
                assert standby.apply(blob)
        assert not standby.stale
        assert standby.applied_seq == len(rounds)
        live = primary.fingerprint()
        grafted = standby.node.fingerprint()
        assert live.diff(grafted) == []
    finally:
        _teardown(primary, None if standby is None else standby.node)


def test_sequence_gap_marks_standby_stale():
    primary = _boot_warm("simple")
    standby = None
    try:
        image = checkpoint_node(primary)
        baseline = DeltaBaseline(image)
        standby = WarmStandby.from_image(image, node_id=1)
        deltas = []
        for _ in range(2):
            primary.serve(2)
            primary.run_for(WARMUP_NS)
            deltas.append(capture_delta(primary, baseline))
        # Drop delta seq 1 on the floor: seq 2 arrives against applied_seq 0.
        assert not standby.apply(deltas[1].encode())
        assert standby.stale
        assert standby.deltas_rejected == 1
        # A stale standby refuses everything until resynced from a full image.
        assert not standby.apply(deltas[0].encode())
        standby.resync(checkpoint_node(primary))
        assert not standby.stale
    finally:
        _teardown(primary, None if standby is None else standby.node)


# -- corrupt-image hardening --------------------------------------------------


def _encoded_simple_image():
    node = _boot_warm("simple")
    try:
        image = checkpoint_node(node)
        return image, image.encode()
    finally:
        _teardown(node)


def test_corrupt_images_raise_typed_errors():
    image, blob = _encoded_simple_image()

    with pytest.raises(ImageError) as excinfo:
        CheckpointImage.decode(b"NOTMCRIM" + blob[8:])
    assert excinfo.value.section == "magic"

    bad_version = blob[:8] + struct.pack("<I", FORMAT_VERSION + 1) + blob[12:]
    with pytest.raises(ImageError) as excinfo:
        CheckpointImage.decode(bad_version)
    assert excinfo.value.section == "version"

    with pytest.raises(ImageError) as excinfo:
        CheckpointImage.decode(blob[:40])
    assert excinfo.value.section == "meta"

    # Truncation mid-sections names the damaged section, not "meta".
    with pytest.raises(ImageError) as excinfo:
        CheckpointImage.decode(blob[:-64])
    assert excinfo.value.section in image.sections

    # A single flipped bit in a section payload fails that section's CRC.
    flipped = bytearray(blob)
    flipped[-10] ^= 0x40
    with pytest.raises(ImageError) as excinfo:
        CheckpointImage.decode(bytes(flipped))
    assert excinfo.value.section in image.sections


def test_incompatible_image_never_partially_restores():
    source = _boot_warm("simple")
    try:
        image = checkpoint_node(source)
        meta = json.loads(json.dumps(image.meta))  # deep copy
        meta["processes"][0]["threads"][0]["call_stack"] = ["somewhere", "else"]
        doctored = CheckpointImage(meta, dict(image.sections))
        with pytest.raises(ImageError) as excinfo:
            restore_image(doctored, node_id=1)
        assert excinfo.value.section == "threads"
    finally:
        _teardown(source)


def test_unreadable_image_file(tmp_path):
    with pytest.raises(ImageError) as excinfo:
        read_image(str(tmp_path / "missing.img"))
    assert excinfo.value.section == "magic"


# -- blackbox dumps -----------------------------------------------------------


def test_failed_restore_dumps_blackbox(tmp_path):
    source = _boot_warm("simple")
    try:
        image = checkpoint_node(source)
        blackbox_path = tmp_path / "restore-blackbox.json"
        config = MCRConfig(
            faults=FaultPlan().at("restore.image"),
            blackbox_path=str(blackbox_path),
        )
        with pytest.raises(ImageError):
            restore_image(image, node_id=1, config=config)
        assert blackbox_path.exists()
        dump = json.loads(blackbox_path.read_text())
        assert dump["reason"] == "restore.failed"
        assert dump["image_version"] == image.image_id
        assert dump["failure_site"] == "restore.image"
        assert dump["last_applied_delta_seq"] == 0
    finally:
        _teardown(source)


def test_failed_promotion_dumps_blackbox(tmp_path):
    primary = _boot_warm("simple")
    standby = None
    try:
        image = checkpoint_node(primary)
        blackbox_path = tmp_path / "promote-blackbox.json"
        config = MCRConfig(
            faults=FaultPlan().at("standby.promote"),
            blackbox_path=str(blackbox_path),
        )
        standby = WarmStandby.from_image(image, node_id=1, config=config)
        baseline = DeltaBaseline(image)
        primary.serve(2)
        primary.run_for(WARMUP_NS)
        delta = capture_delta(primary, baseline)
        assert standby.apply(delta.encode())
        with pytest.raises(PromotionError):
            standby.promote()
        assert blackbox_path.exists()
        dump = json.loads(blackbox_path.read_text())
        assert dump["reason"] == "standby.promote_failed"
        assert dump["image_version"] == image.image_id
        assert dump["last_applied_delta_seq"] == 1
        assert standby.last_blackbox is not None
    finally:
        _teardown(primary, None if standby is None else standby.node)
