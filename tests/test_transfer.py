"""Unit-level tests for the state-transfer engine on crafted worlds.

These bypass the controller: build two small program instances (old and
new), quiesce nothing, and drive ``StateTransfer`` directly, so individual
pairing/transform/fixup behaviours can be asserted in isolation.
"""

import pytest

from repro.errors import ConflictError
from repro.kernel import Kernel
from repro.mcr.annotations import Annotations
from repro.mcr.tracing.transfer import StateTransfer
from repro.runtime.instrument import BuildConfig
from repro.runtime.program import GlobalVar
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
)

from tests.helpers import boot_test_program, make_test_program

NODE_V1 = StructType("node", [("value", INT32), ("next", PointerType(None, name="node*"))])
NODE_V2 = StructType(
    "node", [("value", INT32), ("new", INT32), ("next", PointerType(None, name="node*"))]
)


def _world(globals_, types, version="1", kernel=None):
    program = make_test_program(globals_, types=types, version=version)
    return boot_test_program(program, kernel=kernel)


def _pair_worlds(globals_v1, types_v1, globals_v2=None, types_v2=None):
    kernel = Kernel()
    k1, s1, old = _world(globals_v1, types_v1, "1", kernel)
    k2, s2, new = _world(globals_v2 or globals_v1, types_v2 or types_v1, "2", kernel)
    return kernel, old, new


class TestPairingAndTransform:
    def test_dirty_global_transferred_by_symbol(self):
        kernel, old, new = _pair_worlds([GlobalVar("counter", INT64)], {})
        old.crt.gset("counter", 41)
        report = StateTransfer(old, new, new.program).run()
        assert new.crt.gget("counter") == 41

    def test_clean_global_skipped(self):
        kernel, old, new = _pair_worlds([GlobalVar("counter", INT64, init=7)], {})
        new.crt.gset("counter", 99)  # the new version's own value
        report = StateTransfer(old, new, new.program).run()
        # counter was startup-initialized and clean in old -> skipped.
        assert new.crt.gget("counter") == 99
        assert any(s.objects_skipped_clean for s in report.per_process)

    def test_linked_list_relocated_and_transformed(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            {"node": NODE_V1},
            [GlobalVar("head", PointerType(NODE_V2, name="node*"))],
            {"node": NODE_V2},
        )
        crt = old.crt
        thread = old.threads[1]
        n2 = crt.malloc_typed(thread, NODE_V1)
        crt.set(n2, NODE_V1, "value", 20)
        n1 = crt.malloc_typed(thread, NODE_V1)
        crt.set(n1, NODE_V1, "value", 10)
        crt.set(n1, NODE_V1, "next", n2)
        crt.gset("head", n1)
        StateTransfer(old, new, new.program).run()
        new_head = new.crt.gget("head")
        assert new_head != 0
        assert new.crt.get(new_head, NODE_V2, "value") == 10
        assert new.crt.get(new_head, NODE_V2, "new") == 0  # default-initialized
        nxt = new.crt.get(new_head, NODE_V2, "next")
        assert new.crt.get(nxt, NODE_V2, "value") == 20

    def test_interior_pointer_offset_preserved(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("p_into", PointerType(None))], {"node": NODE_V1}
        )
        crt = old.crt
        node = crt.malloc_typed(old.threads[1], NODE_V1)
        crt.set(node, NODE_V1, "value", 5)
        crt.gset("p_into", node + 4)  # points at a field, not the base
        StateTransfer(old, new, new.program).run()
        new_ptr = new.crt.gget("p_into")
        tag = new.tags.find_containing(new_ptr)
        assert tag is not None
        assert new_ptr - tag.address == 4

    def test_immutable_object_kept_at_same_address(self):
        kernel, old, new = _pair_worlds([GlobalVar("b", ArrayType(CHAR, 8))], {})
        crt = old.crt
        hidden = crt.malloc(48)
        old.space.write_bytes(hidden, b"hidden-data!")
        old.space.write_word(crt.global_addr("b"), hidden)
        # Reserve the span in the new heap (the controller's realloc step).
        chunk = old.heap.find_chunk(hidden)
        new.heap.reserve_range(chunk.base, chunk.total_size)
        StateTransfer(old, new, new.program).run()
        assert new.space.read_bytes(hidden, 12) == b"hidden-data!"
        assert new.space.read_word(new.crt.global_addr("b")) == hidden

    def test_pointer_to_dropped_global_conflicts(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("keep", PointerType(None)), GlobalVar("gone", INT64)],
            {},
            [GlobalVar("keep", PointerType(None))],  # v2 dropped "gone"
            {},
        )
        crt = old.crt
        crt.gset("gone", 1)  # dirty so it matters
        crt.gset("keep", crt.global_addr("gone"))  # live pointer to it
        with pytest.raises(ConflictError):
            StateTransfer(old, new, new.program).run()

    def test_nonupdatable_type_change_conflicts(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("b", ArrayType(CHAR, 8)),
             GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            {"node": NODE_V1},
            [GlobalVar("b", ArrayType(CHAR, 8)),
             GlobalVar("head", PointerType(NODE_V2, name="node*"))],
            {"node": NODE_V2},
        )
        crt = old.crt
        node = crt.malloc_typed(old.threads[1], NODE_V1)
        crt.gset("head", node)
        # Hide a pointer to the node: it becomes nonupdatable...
        old.space.write_word(crt.global_addr("b"), node)
        chunk = old.heap.find_chunk(node)
        new.heap.reserve_range(chunk.base, chunk.total_size)
        # ...so changing its type must conflict.
        with pytest.raises(ConflictError):
            StateTransfer(old, new, new.program).run()

    def test_object_handler_resolves_type_conflict(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("b", ArrayType(CHAR, 8)),
             GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            {"node": NODE_V1},
            [GlobalVar("b", ArrayType(CHAR, 8)),
             GlobalVar("head", PointerType(NODE_V2, name="node*"))],
            {"node": NODE_V2},
        )
        crt = old.crt
        node = crt.malloc_typed(old.threads[1], NODE_V1)
        crt.set(node, NODE_V1, "value", 9)
        crt.gset("head", node)
        old.space.write_word(crt.global_addr("b"), node)
        chunk = old.heap.find_chunk(node)
        new.heap.reserve_range(chunk.base, chunk.total_size)

        def node_handler(context):
            context.suppress()  # user decides: leave the old bytes alone

        annotations = new.program.annotations
        annotations.MCR_ADD_OBJ_HANDLER("node", node_handler)
        report = StateTransfer(old, new, new.program).run()
        assert report is not None  # no conflict raised

    def test_semantic_handler_rewrites_value(self):
        kernel, old, new = _pair_worlds([GlobalVar("count", INT64)], {})
        old.crt.gset("count", 3)

        def unit_change(context):
            context.replace(context.transformed * 1000)

        new.program.annotations.MCR_ADD_OBJ_HANDLER("count", unit_change)
        StateTransfer(old, new, new.program).run()
        assert new.crt.gget("count") == 3000

    def test_startup_object_matched_by_site(self):
        """Same allocation call stack in both versions -> same object."""
        from repro.kernel.process import sim_function

        def make_main(version):
            @sim_function
            def alloc_main(sys):
                crt = sys.process.crt
                node = crt.malloc_typed(sys.thread, NODE_V1)
                crt.set(node, NODE_V1, "value", version)
                crt.gset("head", node)
                while True:
                    sys.loop_iter("main")
                    yield from sys.nanosleep(10_000_000)

            return alloc_main

        kernel = Kernel()
        program_v1 = make_test_program(
            [GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            types={"node": NODE_V1},
            main=make_main(1),
        )
        program_v1.quiescent_points = {("alloc_main", "nanosleep")}
        k1, s1, old = boot_test_program(program_v1, kernel=kernel)
        program_v2 = make_test_program(
            [GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            types={"node": NODE_V1},
            main=make_main(2),
        )
        program_v2.quiescent_points = {("alloc_main", "nanosleep")}
        k2, s2, new = boot_test_program(program_v2, kernel=kernel)
        # Dirty the old node post-startup so it must transfer.
        old_node = old.crt.gget("head")
        old.crt.set(old_node, NODE_V1, "value", 111)
        StateTransfer(old, new, new.program).run()
        new_node = new.crt.gget("head")
        # The new version's OWN startup allocation received the content.
        assert new.crt.get(new_node, NODE_V1, "value") == 111
        chunk = new.heap.find_chunk(new_node)
        assert chunk.startup  # reused, not freshly malloc'd


class TestReportAccounting:
    def test_parallel_time_model(self):
        kernel, old, new = _pair_worlds([GlobalVar("x", INT64)], {})
        old.crt.gset("x", 1)
        transfer = StateTransfer(old, new, new.program)
        report = transfer.run()
        stats = report.per_process[0]
        expected = (
            transfer.cost.base_coordination_ns
            + transfer.cost.process_channel_setup_ns
            + stats.work_ns(transfer.cost)
        )
        assert report.total_ns == expected

    def test_table2_aggregation(self):
        kernel, old, new = _pair_worlds(
            [GlobalVar("head", PointerType(NODE_V1, name="node*"))],
            {"node": NODE_V1},
        )
        crt = old.crt
        node = crt.malloc_typed(old.threads[1], NODE_V1)
        crt.gset("head", node)
        report = StateTransfer(old, new, new.program).run()
        table2 = report.aggregate_table2()
        assert table2["precise"]["ptr"] >= 1
