"""Tests for client-perceived metrics and the flight recorder (PR 4).

Covers the histogram/percentile machinery (including the hypothesis
property that bucket-resolved percentiles land in the same bucket as the
exact nearest-rank reference), the flight recorder's hard budgets under
floods, the blackout-interval measurement, the controller's black-box
dump on rollback, and the ``metrics`` CLI command.
"""

import json
import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bench.reporting import latency_summary_ms
from repro.bench.updatetime import measure_client_perceived
from repro.cli import main
from repro.clock import VirtualClock, ns_to_ms
from repro.kernel import Kernel
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import FaultPlan
from repro.obs.counters import CounterSet
from repro.obs.export import chrome_trace, collector_to_dict
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES_NS,
    Histogram,
    MetricsRegistry,
    log_boundaries,
    prometheus_text,
)
from repro.obs.recorder import FlightRecorder
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import ClientLatencyLog, ClientPerceived
from repro.workloads.ab import ApacheBench


def _booted_simple(kernel):
    simple.setup_world(kernel)
    program = simple.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=100_000)
    return program, session


# -- Histogram ----------------------------------------------------------------


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram("lat", boundaries=[10, 100, 1000])
        for value in (5, 50, 500, 5000):
            h.observe(value)
        assert h.count == 4
        assert h.sum == 5555
        assert h.min == 5 and h.max == 5000
        assert h.bucket_counts == [1, 1, 1, 1]
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["p50"] == 100  # rank 2 -> bucket (10, 100]

    def test_percentile_clamps_to_max(self):
        h = Histogram("lat", boundaries=[1000, 2000])
        h.observe(150)
        # Nearest-rank p99 is the only sample; the bucket bound (1000)
        # must clamp to the observed max.
        assert h.percentile(99) == 150

    def test_percentile_overflow_bucket(self):
        h = Histogram("lat", boundaries=[10])
        h.observe(99)
        assert h.percentile(50) == 99

    def test_percentile_zero_is_min(self):
        # p0 must be the smallest observation, not its bucket's upper
        # bound (which would overstate it by up to one bucket width).
        h = Histogram("lat", boundaries=[10, 100, 1000])
        for value in (7, 50, 500):
            h.observe(value)
        assert h.percentile(0) == 7

    def test_percentile_hundred_is_max(self):
        h = Histogram("lat", boundaries=[10, 100, 1000])
        for value in (7, 50, 99):
            h.observe(value)
        assert h.percentile(100) == 99

    def test_percentile_extremes_single_sample(self):
        h = Histogram("lat", boundaries=[1000])
        h.observe(42)
        assert h.percentile(0) == 42
        assert h.percentile(100) == 42

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.percentile(0) == 0
        assert h.percentile(99) == 0
        assert h.percentile(100) == 0
        assert h.summary()["max"] == 0

    def test_percentile_range_validation(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", boundaries=[])
        with pytest.raises(ValueError):
            Histogram("bad", boundaries=[10, 10])
        with pytest.raises(ValueError):
            log_boundaries(0, 100)
        with pytest.raises(ValueError):
            log_boundaries(1, 100, factor=1.0)

    def test_log_buckets_cover_range(self):
        h = Histogram.log_buckets("lat", 1_000, 1_000_000)
        assert h.boundaries[0] == 1_000
        assert h.boundaries[-1] >= 1_000_000

    def test_merge(self):
        a = Histogram.from_values("a", [1, 10, 100])
        b = Histogram.from_values("b", [5, 50_000_000])
        a.merge(b)
        assert a.count == 5
        assert a.sum == 50_000_116
        assert a.min == 1 and a.max == 50_000_000

    def test_merge_rejects_mismatched_boundaries(self):
        a = Histogram("a", boundaries=[1, 2])
        b = Histogram("b", boundaries=[1, 3])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_summary_ms_requires_ns_unit(self):
        h = Histogram("ops", boundaries=[1, 2], unit="ops")
        with pytest.raises(ValueError):
            h.summary_ms()

    def test_summary_ms_conversion(self):
        h = Histogram.from_values("lat", [2_000_000])
        summary = h.summary_ms()
        assert summary["max_ms"] == pytest.approx(2.0)
        assert summary["p50_ms"] == pytest.approx(2.0)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=200),
        q=st.sampled_from([1, 25, 50, 75, 90, 95, 99, 100]),
    )
    @settings(max_examples=200, deadline=None)
    def test_percentile_within_one_bucket_of_exact(self, values, q):
        """Bucket-resolved percentile lands in the exact value's bucket.

        The returned value is the bucket upper bound clamped to max, so it
        is >= the exact nearest-rank percentile and ``bisect_left`` over
        the boundaries maps both to the same bucket index.
        """
        h = Histogram.from_values("lat", values)
        exact = sorted(values)[max(1, math.ceil(q / 100.0 * len(values))) - 1]
        resolved = h.percentile(q)
        assert resolved >= exact
        bounds = h.boundaries
        assert bisect_left(bounds, resolved) == bisect_left(bounds, exact)

    @given(
        a=st.lists(st.integers(min_value=0, max_value=10**9), max_size=50),
        b=st.lists(st.integers(min_value=0, max_value=10**9), max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_combined(self, a, b):
        merged = Histogram.from_values("a", a)
        merged.merge(Histogram.from_values("b", b))
        combined = Histogram.from_values("c", a + b)
        assert merged.bucket_counts == combined.bucket_counts
        assert merged.count == combined.count
        assert merged.sum == combined.sum


class TestMetricsRegistry:
    def test_observe_get_or_create(self):
        registry = MetricsRegistry()
        registry.observe("client.latency_ns", 5_000)
        registry.observe("client.latency_ns", 9_000)
        assert registry.get("client.latency_ns").count == 2
        assert "client.latency_ns" in registry
        assert len(registry) == 1

    def test_names_sorted_and_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("zeta", 1)
        registry.observe("alpha", 2)
        assert registry.names() == ["alpha", "zeta"]
        snap = registry.snapshot()
        assert list(snap) == ["alpha", "zeta"]
        assert snap["alpha"]["count"] == 1

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("shared", 1)
        b.observe("shared", 2)
        b.observe("only_b", 3)
        a.merge(b)
        assert a.get("shared").count == 2
        assert a.get("only_b").count == 1


class TestCounterMerge:
    def test_merge_is_in_place_and_sorts(self):
        a, b = CounterSet(), CounterSet()
        a.incr("x", 2)
        a.incr("z", 1)
        b.incr("x", 3)
        b.incr("a", 7)
        assert a.merge(b) is None  # in-place, like Histogram.merge
        assert a.snapshot() == {"a": 7, "x": 5, "z": 1}
        # The source is untouched.
        assert b.get("x") == 3 and b.get("a") == 7

    def test_merged_leaves_sources_untouched(self):
        a, b = CounterSet(), CounterSet()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("a", 7)
        out = a.merged(b)
        assert out.snapshot() == {"a": 7, "x": 5}
        assert a.get("x") == 2 and b.get("x") == 3

    def test_with_prefix_sorted(self):
        c = CounterSet()
        c.incr("sys.write", 1)
        c.incr("sys.read", 2)
        c.incr("alloc.bytes", 3)
        assert list(c.with_prefix("sys.")) == ["sys.read", "sys.write"]


class TestPrometheusText:
    def test_counters_and_histograms(self):
        counters = CounterSet()
        counters.incr("sys.read", 4)
        registry = MetricsRegistry()
        registry.observe("client.latency_ns", 1_500, boundaries=[1_000, 2_000])
        registry.observe("client.latency_ns", 500, boundaries=[1_000, 2_000])
        text = prometheus_text(counters=counters, metrics=registry)
        assert "# TYPE repro_sys_read gauge\nrepro_sys_read 4" in text
        assert "# TYPE repro_client_latency_ns histogram" in text
        assert 'repro_client_latency_ns_bucket{le="1000"} 1' in text
        assert 'repro_client_latency_ns_bucket{le="2000"} 2' in text
        assert 'repro_client_latency_ns_bucket{le="+Inf"} 2' in text
        assert "repro_client_latency_ns_sum 2000" in text
        assert "repro_client_latency_ns_count 2" in text
        assert text.endswith("\n")

    def test_deterministic(self):
        registry = MetricsRegistry()
        registry.observe("b.metric", 10)
        registry.observe("a.metric", 20)
        assert prometheus_text(metrics=registry) == prometheus_text(metrics=registry)


# -- FlightRecorder ------------------------------------------------------------


class TestFlightRecorder:
    def test_budget_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            FlightRecorder(clock, max_entries=0)
        with pytest.raises(ValueError):
            FlightRecorder(clock, max_bytes=0)
        with pytest.raises(ValueError):
            FlightRecorder(clock, sample_interval_steps=0)

    def test_entry_budget_evicts_oldest(self):
        clock = VirtualClock()
        recorder = FlightRecorder(clock, max_entries=3)
        for index in range(5):
            recorder.record("event", f"e{index}", {})
        names = [entry.name for entry in recorder.entries()]
        assert names == ["e2", "e3", "e4"]
        assert recorder.dropped == 2
        assert recorder.recorded == 5

    def test_oversized_entry_dropped_outright(self):
        clock = VirtualClock()
        recorder = FlightRecorder(clock, max_bytes=64)
        recorder.record("event", "ok", {})
        recorder.record("event", "huge", {"blob": "x" * 1000})
        assert [entry.name for entry in recorder.entries()] == ["ok"]
        assert recorder.dropped == 1

    @given(
        payload_sizes=st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=300),
        max_entries=st.integers(min_value=1, max_value=64),
        max_bytes=st.integers(min_value=32, max_value=4_096),
    )
    @settings(max_examples=100, deadline=None)
    def test_budgets_never_exceeded_under_flood(
        self, payload_sizes, max_entries, max_bytes
    ):
        clock = VirtualClock()
        recorder = FlightRecorder(
            clock, max_entries=max_entries, max_bytes=max_bytes
        )
        for size in payload_sizes:
            recorder.record("event", "flood", {"data": "y" * size})
            assert len(recorder) <= max_entries
            assert recorder.bytes_used <= max_bytes
        assert recorder.recorded + recorder.dropped >= len(payload_sizes)
        assert recorder.bytes_used == sum(e.cost for e in recorder.entries())

    def test_last_event_and_dump(self):
        clock = VirtualClock()
        recorder = FlightRecorder(clock)
        recorder.record("event", "fault.injected", {"site": "transfer.memory"})
        clock.advance(10)
        recorder.record("sample", "gauges", {"runnable": 3})
        clock.advance(10)
        recorder.record("event", "fault.injected", {"site": "rollback"})
        last = recorder.last_event("fault.injected")
        assert last["payload"]["site"] == "rollback"
        assert recorder.last_event("nope") is None
        dump = recorder.dump(
            "rolled_back", failure_site="rollback", open_spans=["update"]
        )
        assert dump["reason"] == "rolled_back"
        assert dump["last_fault"]["payload"]["site"] == "rollback"
        assert dump["open_spans"] == ["update"]
        assert len(dump["entries"]) == 3
        # The dump must round-trip through JSON (blackbox.json contract).
        assert json.loads(json.dumps(dump)) == dump

    def test_collector_wiring_mirrors_events(self):
        clock = VirtualClock()
        collector = obs.Collector(clock)
        obs.install(collector)
        try:
            obs.emit("update.finished", committed=True)
            obs.observe("client.latency_ns", 1_234)
        finally:
            obs.uninstall()
        assert [e.name for e in collector.recorder.entries()] == ["update.finished"]
        assert collector.metrics.get("client.latency_ns").count == 1

    def test_kernel_tick_sampling(self):
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        with obs.collecting(kernel.clock) as collector:
            collector.recorder.sample_interval_steps = 64
            ApacheBench(8080, requests=20, concurrency=2, path="sum").run(kernel)
        samples = [e for e in collector.recorder.entries() if e.kind == "sample"]
        assert collector.recorder.samples_taken > 0
        assert samples, "scheduler tick hook never sampled"
        payload = samples[-1].payload
        for key in (
            "runnable", "blocked", "processes", "fds",
            "heap_live_bytes", "heap_live_chunks", "heap_free_bytes",
            "dirty_faults",
        ):
            assert key in payload
        assert payload["processes"] > 0


# -- ClientLatencyLog / ClientPerceived ---------------------------------------


class TestClientLatency:
    def test_record_and_derivations(self):
        log = ClientLatencyLog()
        log.record(100, 250)
        log.record(300, 350)
        assert log.count == 2
        assert log.latencies_ns() == [150, 50]
        assert log.completions_ns() == [250, 350]
        assert log.histogram().count == 2

    def test_record_feeds_active_collector(self):
        clock = VirtualClock()
        with obs.collecting(clock) as collector:
            log = ClientLatencyLog()
            log.record(0, 42_000)
        histogram = collector.metrics.get("client.latency_ns")
        assert histogram.count == 1
        assert histogram.max == 42_000

    def test_blackout_longest_gap(self):
        log = ClientLatencyLog()
        for recv in (100, 200, 1_200, 1_300):
            log.record(recv - 10, recv)
        assert log.blackout_ns() == 1_000

    def test_blackout_window_edges_count(self):
        log = ClientLatencyLog()
        log.record(90, 100)
        # Nothing completes between 100 and the window end at 5_000.
        assert log.blackout_ns(window=(0, 5_000)) == 4_900

    def test_blackout_clamps_completion_before_window(self):
        log = ClientLatencyLog()
        log.record(400, 500)  # completed just before the window opens
        log.record(2_990, 3_000)
        # The pre-window completion clamps onto lo and bounds the leading
        # gap there; the measured stall is lo -> 3_000, not the window span.
        assert log.blackout_ns(window=(1_000, 5_000)) == 2_000

    def test_blackout_clamps_completion_after_window(self):
        log = ClientLatencyLog()
        log.record(990, 1_000)
        log.record(5_990, 6_000)  # completed just after the window closes
        assert log.blackout_ns(window=(0, 5_000)) == 4_000

    def test_blackout_all_completions_outside_window(self):
        log = ClientLatencyLog()
        log.record(5_500, 6_000)
        log.record(6_500, 7_000)
        # Every completion clamps onto an edge; the stall is the full span.
        assert log.blackout_ns(window=(0, 5_000)) == 5_000

    def test_blackout_empty(self):
        log = ClientLatencyLog()
        assert log.blackout_ns() == 0
        assert log.blackout_ns(window=(0, 777)) == 777

    def test_perceived_verdict(self):
        log = ClientLatencyLog()
        for recv in (1_000, 2_000, 50_000_000):
            log.record(recv - 100, recv)
        perceived = ClientPerceived.measure(log, budget_ns=10_000_000)
        assert not perceived.slo_ok  # ~50 ms gap > 10 ms budget
        assert perceived.blackout_ns == 49_998_000
        ok = ClientPerceived.measure(log, budget_ns=100_000_000)
        assert ok.slo_ok
        payload = ok.to_dict()
        assert payload["requests"] == 3
        assert payload["slo_ok"] is True
        assert payload["blackout_ms"] == pytest.approx(ns_to_ms(49_998_000))

    def test_latency_summary_ms_helper(self):
        row = latency_summary_ms([1_000_000, 2_000_000, 3_000_000])
        assert row["client_requests"] == 3
        assert row["client_max_ms"] == pytest.approx(3.0)
        assert row["client_sum_ms"] == pytest.approx(6.0)
        assert set(row) == {
            "client_requests", "client_p50_ms", "client_p95_ms",
            "client_p99_ms", "client_max_ms", "client_sum_ms",
        }


# -- controller black box ------------------------------------------------------


class TestBlackbox:
    def _fail_update(self, tmp_path=None):
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        path = str(tmp_path / "blackbox.json") if tmp_path is not None else None
        config = MCRConfig(
            faults=FaultPlan().at("transfer.memory"), blackbox_path=path
        )
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(simple.make_program(2), config=config)
        return ctl, result

    def test_rollback_dumps_blackbox_without_collector(self):
        assert obs.ACTIVE is None
        _ctl, result = self._fail_update()
        assert result.rolled_back
        assert obs.ACTIVE is None  # private collector restored
        blackbox = result.blackbox
        assert blackbox is not None
        assert blackbox["reason"] == "rolled_back"
        assert blackbox["failure_site"] == "transfer.memory"
        assert blackbox["last_fault"]["payload"]["site"] == "transfer.memory"
        assert blackbox["open_spans"] == ["update", "rollback"]
        assert blackbox["fingerprint"]["processes"]
        assert result.blackbox_path is None

    def test_rollback_writes_blackbox_file(self, tmp_path):
        ctl, result = self._fail_update(tmp_path)
        assert result.blackbox_path == str(tmp_path / "blackbox.json")
        with open(result.blackbox_path, encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk["failure_site"] == "transfer.memory"
        assert on_disk["last_fault"]["payload"]["site"] == "transfer.memory"
        assert any(
            entry["name"] == "fault.injected" for entry in on_disk["entries"]
        )
        status = ctl.status()
        assert status["last_update"] == "rolled_back"
        assert status["last_update_blackbox"] == result.blackbox_path

    def test_committed_update_has_no_blackbox(self):
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        ctl = McrCtl(kernel, session)
        result = ctl.live_update(simple.make_program(2))
        assert result.committed
        assert result.blackbox is None

    def test_caller_collector_not_displaced(self):
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        config = MCRConfig(faults=FaultPlan().at("transfer.memory"))
        ctl = McrCtl(kernel, session)
        with obs.collecting(kernel.clock) as collector:
            result = ctl.live_update(simple.make_program(2), config=config)
            assert obs.ACTIVE is collector
        assert result.blackbox is not None
        # The caller's collector did the recording.
        assert collector.recorder.last_event("fault.injected") is not None


# -- measurement harness / CLI -------------------------------------------------


class TestClientPerceivedMeasurement:
    def test_measure_client_perceived_httpd(self):
        row = measure_client_perceived("httpd")
        assert row["client_requests"] > 0
        assert row["workload_errors"] == 0
        assert row["blackout_ms"] > 0
        assert row["slo_ok"] is True
        assert row["client_p99_ms"] >= row["client_p50_ms"]
        # The update stall dominates the blackout, so p-max sees it too.
        assert row["client_max_ms"] >= row["blackout_ms"] * 0.5

    def test_mcr_ctl_stat_surfaces_client(self):
        kernel = Kernel()
        _program, session = _booted_simple(kernel)
        ctl = McrCtl(kernel, session)
        workload = ApacheBench(8080, requests=24, concurrency=2, path="sum")
        clients = workload(kernel)
        kernel.run(until=lambda: workload.latency.count >= 6, max_steps=2_000_000)
        result = ctl.live_update(simple.make_program(2))
        kernel.run(
            until=lambda: all(c.exited for c in clients), max_steps=5_000_000
        )
        assert result.committed
        result.client = ClientPerceived.measure(
            workload.latency, budget_ns=session.config.downtime_budget_ns
        )
        status = ctl.status()
        assert status["last_update_slo_ok"] is True
        assert status["last_update_blackout_ms"] > 0
        stat = ctl.stat()
        assert len(stat["updates"]) == 1
        assert stat["updates"][0]["client"]["requests"] == workload.latency.count

    def test_metrics_cli_json(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "simple", "--json"]) == 0
        out = capsys.readouterr().out
        assert "SLO met" in out
        assert "repro_client_latency_ns_bucket" in out
        with open(tmp_path / "METRICS_simple.json", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["committed"] is True
        assert payload["slo_verdict"] == "met"
        assert payload["client"]["requests"] > 0
        assert payload["client"]["slo_ok"] is True
        assert "client.latency_ns" in payload["metrics"]


# -- exports -------------------------------------------------------------------


class TestMetricsExport:
    def _collector_with_traffic(self):
        clock = VirtualClock()
        collector = obs.Collector(clock)
        collector.metrics.observe("client.latency_ns", 5_000)
        collector.metrics.observe("client.latency_ns", 9_000)
        collector.recorder.record("sample", "gauges", {"runnable": 2, "fds": 7})
        clock.advance(100)
        collector.recorder.record("event", "update.finished", {"committed": True})
        return collector

    def test_collector_to_dict_includes_metrics_and_flight(self):
        payload = collector_to_dict(self._collector_with_traffic())
        assert payload["metrics"]["client.latency_ns"]["count"] == 2
        flight = payload["flight"]
        assert flight["recorded"] == 2
        assert flight["dropped"] == 0
        assert flight["bytes_used"] > 0
        assert [entry["name"] for entry in flight["entries"]] == [
            "gauges", "update.finished",
        ]

    def test_chrome_trace_counter_events(self):
        trace = chrome_trace(self._collector_with_traffic())
        counter_events = [
            e for e in trace["traceEvents"] if e.get("ph") == "C"
        ]
        flight = [e for e in counter_events if e["name"] == "flight.gauges"]
        assert len(flight) == 1
        assert flight[0]["args"] == {"fds": 7, "runnable": 2}
        hist = [e for e in counter_events if e["name"] == "hist.client.latency_ns"]
        assert len(hist) == 1
        assert hist[0]["args"]["count"] == 2
        assert hist[0]["args"]["p99"] == 9_000
