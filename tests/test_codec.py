"""Codec round-trip tests, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_space import AddressSpace
from repro.types import codec
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT8,
    INT16,
    INT32,
    INT64,
    OpaqueType,
    PointerType,
    StructType,
    UINT32,
    UINT64,
    UnionType,
)


@pytest.fixture
def mem():
    space = AddressSpace()
    space.map(4096, address=0x10000, name="scratch")
    return space

ADDR = 0x10000


class TestScalars:
    def test_int32_roundtrip(self, mem):
        codec.write_value(mem, ADDR, INT32, -123456)
        assert codec.read_value(mem, ADDR, INT32) == -123456

    def test_uint64_roundtrip(self, mem):
        codec.write_value(mem, ADDR, UINT64, 2**63 + 5)
        assert codec.read_value(mem, ADDR, UINT64) == 2**63 + 5

    def test_signed_overflow_wraps(self, mem):
        codec.write_value(mem, ADDR, INT8, 200)  # C-style wrap
        assert codec.read_value(mem, ADDR, INT8) == 200 - 256

    def test_pointer_roundtrip(self, mem):
        codec.write_value(mem, ADDR, PointerType(None), 0xDEADBEEF)
        assert codec.read_value(mem, ADDR, PointerType(None)) == 0xDEADBEEF

    def test_char_roundtrip(self, mem):
        codec.write_value(mem, ADDR, CHAR, ord("x"))
        assert codec.read_value(mem, ADDR, CHAR) == ord("x")


class TestComposite:
    def test_struct_roundtrip(self, mem):
        s = StructType("s", [("a", INT32), ("p", PointerType(None)), ("b", INT16)])
        value = {"a": 7, "p": 0x1234, "b": -2}
        codec.write_value(mem, ADDR, s, value)
        assert codec.read_value(mem, ADDR, s) == value

    def test_partial_struct_write(self, mem):
        s = StructType("s", [("a", INT32), ("b", INT32)])
        codec.write_value(mem, ADDR, s, {"a": 1, "b": 2})
        codec.write_value(mem, ADDR, s, {"b": 9})
        assert codec.read_value(mem, ADDR, s) == {"a": 1, "b": 9}

    def test_int_array_roundtrip(self, mem):
        arr = ArrayType(INT32, 4)
        codec.write_value(mem, ADDR, arr, [1, -2, 3, -4])
        assert codec.read_value(mem, ADDR, arr) == [1, -2, 3, -4]

    def test_array_overflow_raises(self, mem):
        arr = ArrayType(INT32, 2)
        with pytest.raises(ValueError):
            codec.write_value(mem, ADDR, arr, [1, 2, 3])

    def test_char_array_as_bytes(self, mem):
        arr = ArrayType(CHAR, 8)
        codec.write_value(mem, ADDR, arr, b"hi")
        assert codec.read_value(mem, ADDR, arr) == b"hi\x00\x00\x00\x00\x00\x00"

    def test_union_as_bytes(self, mem):
        u = UnionType("u", [("a", INT64), ("b", ArrayType(CHAR, 4))])
        codec.write_value(mem, ADDR, u, b"\x01\x02")
        assert codec.read_value(mem, ADDR, u)[:2] == b"\x01\x02"

    def test_opaque_overflow_raises(self, mem):
        with pytest.raises(ValueError):
            codec.write_value(mem, ADDR, OpaqueType(4), b"too long!")

    def test_nested_struct(self, mem):
        inner = StructType("inner", [("x", INT32), ("y", INT32)])
        outer = StructType("outer", [("head", inner), ("count", INT64)])
        value = {"head": {"x": 1, "y": 2}, "count": 3}
        codec.write_value(mem, ADDR, outer, value)
        assert codec.read_value(mem, ADDR, outer) == value


class TestProperties:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_int32_roundtrip_property(self, value):
        space = AddressSpace()
        space.map(4096, address=0x10000, name="scratch")
        codec.write_value(space, 0x10000, INT32, value)
        assert codec.read_value(space, 0x10000, INT32) == value

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=16
        )
    )
    @settings(max_examples=50)
    def test_uint32_array_roundtrip_property(self, values):
        space = AddressSpace()
        space.map(4096, address=0x10000, name="scratch")
        arr = ArrayType(UINT32, len(values))
        codec.write_value(space, 0x10000, arr, values)
        assert codec.read_value(space, 0x10000, arr) == values

    @given(st.binary(max_size=32))
    @settings(max_examples=50)
    def test_opaque_roundtrip_property(self, data):
        space = AddressSpace()
        space.map(4096, address=0x10000, name="scratch")
        o = OpaqueType(32)
        codec.write_value(space, 0x10000, o, data)
        assert codec.read_value(space, 0x10000, o) == data.ljust(32, b"\x00")

    def test_word_helpers(self, mem):
        codec.write_word(mem, ADDR, 0xFFFF_FFFF_FFFF_FFFF + 5)  # masks to 4
        assert codec.read_word(mem, ADDR) == 4
