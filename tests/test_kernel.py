"""Tests for the simulated kernel: scheduling, sockets, processes, fds."""

import pytest

from repro.errors import AddressInUse, BadFileDescriptor, SimError
from repro.kernel import Kernel, TIMEOUT, sim_function
from repro.kernel.fdtable import FDTable, RESERVED_BASE
from repro.kernel.namespaces import PidNamespace


@sim_function
def _echo_server(sys, port):
    fd = yield from sys.socket()
    yield from sys.bind(fd, port)
    yield from sys.listen(fd)
    while True:
        conn = yield from sys.accept(fd)
        while True:
            data = yield from sys.recv(conn)
            if not data:
                break
            yield from sys.send(conn, data)
        yield from sys.close(conn)


@sim_function
def _client(sys, port, payloads, out):
    while True:
        try:
            fd = yield from sys.connect(port)
            break
        except SimError:
            yield from sys.nanosleep(500_000)
    for payload in payloads:
        yield from sys.send(fd, payload)
        out.append((yield from sys.recv(fd)))
    yield from sys.close(fd)


class TestScheduler:
    def test_echo_roundtrip(self, kernel):
        out = []
        kernel.spawn_process(_echo_server, args=(1234,), name="srv")
        kernel.spawn_process(_client, args=(1234, [b"a", b"bb"], out), name="cli")
        assert kernel.run(max_steps=10_000) == "idle"
        assert out == [b"a", b"bb"]

    def test_virtual_time_advances(self, kernel):
        @sim_function
        def sleeper(sys):
            yield from sys.nanosleep(5_000_000)

        kernel.spawn_process(sleeper)
        kernel.run(max_steps=100)
        assert kernel.clock.now_ns >= 5_000_000

    def test_timeout_delivery(self, kernel):
        results = []

        @sim_function
        def waiter(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 99)
            yield from sys.listen(fd)
            result = yield from sys.accept(fd, timeout_ns=1_000_000)
            results.append(result)

        kernel.spawn_process(waiter)
        kernel.run(max_steps=1_000)
        assert results == [TIMEOUT]

    def test_until_predicate_stops(self, kernel):
        @sim_function
        def spinner(sys):
            while True:
                yield from sys.sched_yield()

        kernel.spawn_process(spinner)
        target = {}
        reason = kernel.run(
            max_steps=10_000, until=lambda: kernel.steps_executed >= 50
        )
        assert reason == "until"

    def test_max_ns_budget(self, kernel):
        @sim_function
        def sleeper(sys):
            while True:
                yield from sys.nanosleep(10_000_000)

        kernel.spawn_process(sleeper)
        reason = kernel.run(max_ns=50_000_000, max_steps=100_000)
        assert reason == "max_ns"

    def test_cpu_charges_clock(self, kernel):
        @sim_function
        def burner(sys):
            yield from sys.cpu(123_000)

        kernel.spawn_process(burner)
        kernel.run(max_steps=10)
        assert kernel.clock.now_ns >= 123_000


class TestProcesses:
    def test_fork_clones_memory(self, kernel):
        seen = {}

        @sim_function
        def child(sys, addr):
            seen["child"] = sys.process.space.read_bytes(addr, 5)
            sys.process.space.write_bytes(addr, b"CCCCC")
            yield from sys.exit(0)

        @sim_function
        def parent(sys):
            addr = sys.process.heap.malloc(32)
            sys.process.space.write_bytes(addr, b"PPPPP")
            yield from sys.fork(child, args=(addr,), name="kid")
            yield from sys.wait_child()
            seen["parent_after"] = sys.process.space.read_bytes(addr, 5)

        kernel.spawn_process(parent)
        kernel.run(max_steps=10_000)
        assert seen["child"] == b"PPPPP"
        assert seen["parent_after"] == b"PPPPP"  # COW semantics: isolated

    def test_fork_shares_fds(self, kernel):
        results = []

        @sim_function
        def child(sys, fd):
            yield from sys.sendmsg(fd, b"hello-from-child")
            yield from sys.exit(0)

        @sim_function
        def parent(sys):
            a, b = yield from sys.socketpair()
            yield from sys.fork(child, args=(b,), name="kid")
            data, _fds = yield from sys.recvmsg(a)
            results.append(data)

        kernel.spawn_process(parent)
        kernel.run(max_steps=10_000)
        assert results == [b"hello-from-child"]

    def test_wait_child_returns_status(self, kernel):
        got = []

        @sim_function
        def child(sys):
            yield from sys.exit(7)

        @sim_function
        def parent(sys):
            pid = yield from sys.fork(child, name="kid")
            got.append((yield from sys.wait_child()))
            got.append(pid)

        kernel.spawn_process(parent)
        kernel.run(max_steps=10_000)
        assert got[0][1] == 7
        assert got[0][0] == got[1]

    def test_exec_replaces_image(self, kernel):
        trail = []

        @sim_function
        def helper(sys):
            trail.append("helper-ran")
            yield from sys.exit(0)

        @sim_function
        def prog(sys):
            trail.append("before-exec")
            yield from sys.exec("helper", helper)
            trail.append("unreachable")

        process = kernel.spawn_process(prog)
        kernel.run(max_steps=10_000)
        assert trail == ["before-exec", "helper-ran"]
        assert process.name == "helper"

    def test_terminate_tree(self, kernel):
        @sim_function
        def child(sys):
            while True:
                yield from sys.nanosleep(1_000_000)

        @sim_function
        def parent(sys):
            yield from sys.fork(child, name="kid")
            while True:
                yield from sys.nanosleep(1_000_000)

        root = kernel.spawn_process(parent)
        kernel.run(max_steps=100)
        assert len(root.tree()) == 2
        kernel.terminate_tree(root)
        assert root.exited and all(p.exited for p in kernel.processes.values())

    def test_pid_namespace_forced_ids(self, kernel):
        ns = PidNamespace(first_pid=500)
        ns.force_next_pid(42)
        assert ns.allocate() == 42
        assert ns.allocate() == 500

    def test_forced_pid_in_use_raises(self):
        ns = PidNamespace()
        pid = ns.allocate()
        with pytest.raises(SimError):
            ns.force_next_pid(pid)

    def test_same_pid_in_two_namespaces(self, kernel):
        @sim_function
        def idle(sys):
            while True:
                yield from sys.nanosleep(1_000_000)

        ns = PidNamespace(first_pid=1000)
        a = kernel.spawn_process(idle, name="a")
        ns.force_next_pid(a.pid)
        b = kernel.spawn_process(idle, name="b", namespace=ns)
        assert a.pid == b.pid
        assert kernel.process_by_pid(a.pid) is a
        assert kernel.process_by_pid(a.pid, namespace=ns) is b


class TestSockets:
    def test_bind_conflict(self, kernel):
        errors = []

        @sim_function
        def binder(sys, port):
            fd = yield from sys.socket()
            try:
                yield from sys.bind(fd, port)
                yield from sys.listen(fd)
            except AddressInUse as error:
                errors.append(error)
            while True:
                yield from sys.nanosleep(1_000_000_000)

        kernel.spawn_process(binder, args=(80,))
        kernel.spawn_process(binder, args=(80,))
        kernel.run(max_steps=500)
        assert len(errors) == 1

    def test_connection_refused(self, kernel):
        errors = []

        @sim_function
        def lone_client(sys):
            try:
                yield from sys.connect(4444)
            except SimError as error:
                errors.append(error)

        kernel.spawn_process(lone_client)
        kernel.run(max_steps=100)
        assert len(errors) == 1

    def test_epoll_watches_listener_and_stream(self, kernel):
        events = []

        @sim_function
        def server(sys):
            fd = yield from sys.socket()
            yield from sys.bind(fd, 777)
            yield from sys.listen(fd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl(epfd, "add", fd)
            ready = yield from sys.epoll_wait(epfd)
            events.append(("accept-ready", ready == [fd]))
            conn = yield from sys.accept(fd)
            yield from sys.epoll_ctl(epfd, "add", conn)
            ready = yield from sys.epoll_wait(epfd)
            events.append(("data-ready", conn in ready))
            data = yield from sys.recv(conn)
            events.append(("data", data))

        @sim_function
        def client(sys):
            while True:
                try:
                    fd = yield from sys.connect(777)
                    break
                except SimError:
                    yield from sys.nanosleep(100_000)
            yield from sys.send(fd, b"ping")
            while True:
                yield from sys.nanosleep(10_000_000)

        kernel.spawn_process(server)
        kernel.spawn_process(client)
        kernel.run(max_steps=5_000, max_ns=500_000_000)
        assert ("accept-ready", True) in events
        assert ("data-ready", True) in events
        assert ("data", b"ping") in events

    def test_fd_passing_preserves_object(self, kernel):
        results = []

        @sim_function
        def prog(sys):
            a, b = yield from sys.socketpair()
            listen = yield from sys.socket()
            yield from sys.bind(listen, 888)
            yield from sys.listen(listen)
            yield from sys.sendmsg(a, b"take-this", pass_fds=[listen])
            data, fds = yield from sys.recvmsg(b)
            obj_original = sys.process.fdtable.get(listen)
            obj_received = sys.process.fdtable.get(fds[0])
            results.append(obj_original is obj_received)

        kernel.spawn_process(prog)
        kernel.run(max_steps=1_000)
        assert results == [True]


class TestFDTable:
    def test_lowest_free_allocation(self):
        table = FDTable()
        assert table.install(object()) == 0
        assert table.install(object()) == 1
        table.close(0)
        assert table.install(object()) == 0

    def test_explicit_number(self):
        table = FDTable()
        assert table.install(object(), fd=5) == 5
        with pytest.raises(BadFileDescriptor):
            table.install(object(), fd=5)

    def test_reserved_range(self):
        table = FDTable()
        fd = table.install_reserved(object())
        assert fd >= RESERVED_BASE
        table.close(fd)
        # Reserved numbers are never reused.
        assert table.install_reserved(object()) != fd

    def test_block_reuse(self):
        table = FDTable()
        fd = table.install(object())
        table.close(fd)
        table.block_reuse(fd)
        assert table.install(object()) != fd

    def test_bad_fd(self):
        table = FDTable()
        with pytest.raises(BadFileDescriptor):
            table.get(3)

    def test_clone_shares_objects(self):
        class Obj:
            kind = "x"
            refcount = 1

            def acquire(self):
                self.refcount += 1

        table = FDTable()
        obj = Obj()
        fd = table.install(obj)
        twin = table.clone()
        assert twin.get(fd) is obj
        assert obj.refcount == 2


class TestFiles:
    def test_config_read(self, kernel):
        kernel.fs.create("/etc/x.conf", b"value=1\n")
        got = []

        @sim_function
        def reader(sys):
            fd = yield from sys.open("/etc/x.conf")
            got.append((yield from sys.read(fd)))
            yield from sys.close(fd)

        kernel.spawn_process(reader)
        kernel.run(max_steps=100)
        assert got == [b"value=1\n"]

    def test_write_and_stat(self, kernel):
        @sim_function
        def writer(sys):
            fd = yield from sys.open("/var/log/app.log", "w")
            yield from sys.write(fd, b"line1\n")
            yield from sys.write(fd, b"line2\n")
            yield from sys.close(fd)

        kernel.spawn_process(writer)
        kernel.run(max_steps=100)
        assert kernel.fs.read("/var/log/app.log") == b"line1\nline2\n"
        assert kernel.fs.size("/var/log/app.log") == 12
