"""The OpenSSH built-in test-suite analogue.

Each test session authenticates, runs a handful of remote commands (each
of which makes the server fork+exec a helper), checks session statistics,
and disconnects.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.servers.common import ClientLatencyLog, connect_with_retry


class SshSuite:
    """SSH auth + exec test-suite driver."""

    def __init__(self, port: int = 22, sessions: int = 6, commands: int = 3) -> None:
        self.port = port
        self.sessions = sessions
        self.commands = commands
        self.completed = 0
        self.errors = 0
        self.latency = ClientLatencyLog()

    def __call__(self, kernel: Kernel) -> List[Process]:
        suite = self

        @sim_function
        def ssh_session(sys, index):
            clock = sys.kernel.clock
            try:
                fd = yield from connect_with_retry(sys, suite.port)
            except SimError:
                suite.errors += 1
                return
            yield from sys.recv(fd)  # version banner
            start = clock.now_ns
            yield from sys.send(fd, f"AUTH tester{index} hunter2\n".encode())
            reply = yield from sys.recv(fd)
            if not reply.startswith(b"auth-ok"):
                suite.errors += 1
                yield from sys.close(fd)
                return
            suite.latency.record(start, clock.now_ns)  # auth exchange
            for step in range(suite.commands):
                start = clock.now_ns
                yield from sys.send(fd, f"EXEC test-step-{step}\n".encode())
                reply = yield from sys.recv(fd)
                if reply.startswith(b"helper-output"):
                    suite.completed += 1
                    suite.latency.record(start, clock.now_ns)
                else:
                    suite.errors += 1
            start = clock.now_ns
            yield from sys.send(fd, b"QUIT\n")
            reply = yield from sys.recv(fd)
            if reply:
                suite.latency.record(start, clock.now_ns)
            yield from sys.close(fd)

        return [
            kernel.spawn_process(ssh_session, args=(index,), name=f"ssh-test-{index}")
            for index in range(self.sessions)
        ]

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> int:
        start_ns = kernel.clock.now_ns
        clients = self(kernel)
        kernel.run(until=lambda: all(c.exited for c in clients), max_steps=max_steps)
        return kernel.clock.now_ns - start_ns
