"""The pyftpdlib FTP benchmark analogue.

The paper allows 100 users retrieving a 1 MB file; we run the same shape
scaled down.  Each user logs in (USER/PASS), retrieves the file, checks
STAT, and quits — which, against our vsftpd, exercises the fork-per-
connection path on every user.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.servers.common import ClientLatencyLog, connect_with_retry


class FtpBench:
    """FTP login + retrieve benchmark driver."""

    def __init__(
        self,
        port: int = 21,
        users: int = 10,
        retrievals: int = 2,
        path: str = "/pub/file1m.bin",
    ) -> None:
        self.port = port
        self.users = users
        self.retrievals = retrievals
        self.path = path
        self.completed = 0
        self.errors = 0
        self.latency = ClientLatencyLog()

    def __call__(self, kernel: Kernel) -> List[Process]:
        bench = self

        @sim_function
        def ftp_user(sys, user_index):
            clock = sys.kernel.clock
            try:
                fd = yield from connect_with_retry(sys, bench.port)
            except SimError:
                bench.errors += 1
                return
            yield from sys.recv(fd)  # banner
            start = clock.now_ns
            yield from sys.send(fd, f"USER user{user_index}\n".encode())
            yield from sys.recv(fd)
            yield from sys.send(fd, b"PASS secret\n")
            reply = yield from sys.recv(fd)
            if not reply.startswith(b"230"):
                bench.errors += 1
                yield from sys.close(fd)
                return
            bench.latency.record(start, clock.now_ns)  # login exchange
            for _ in range(bench.retrievals):
                start = clock.now_ns
                yield from sys.send(fd, f"RETR {bench.path}\n".encode())
                data = yield from sys.recv(fd)
                while data and b"226" not in data:
                    data = yield from sys.recv(fd)
                if data:
                    bench.completed += 1
                    bench.latency.record(start, clock.now_ns)
                else:
                    bench.errors += 1
                    break
            start = clock.now_ns
            yield from sys.send(fd, b"QUIT\n")
            reply = yield from sys.recv(fd)
            if reply:
                bench.latency.record(start, clock.now_ns)
            yield from sys.close(fd)

        return [
            kernel.spawn_process(ftp_user, args=(index,), name=f"ftp-user-{index}")
            for index in range(self.users)
        ]

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> int:
        start_ns = kernel.clock.now_ns
        clients = self(kernel)
        kernel.run(until=lambda: all(c.exited for c in clients), max_steps=max_steps)
        return kernel.clock.now_ns - start_ns
