"""Quiescence-profiling workloads (paper §8, "Engineering effort").

Three scripts, matching the paper's description:

* ``web_profile``  — "opens a number of long-lived HTTP connections and
  issues one HTTP request for a very large file in parallel";
* ``ssh_profile``  — "open[s] a number of long-lived SSH connections in
  authentication/post-authentication state";
* ``ftp_profile``  — long-lived FTP connections plus "one FTP request for
  a very large file in parallel".

Each must drive the server into every execution-stalling state that is a
legal quiescent state at update time, then let the clients exit so the
profiler can classify thread lifetimes.
"""

from __future__ import annotations

from typing import Callable, List

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.servers.common import connect_with_retry

# How long idle connections stall the server before the script lets go:
# long enough to dominate every thread's blocking-time profile.
IDLE_HOLD_NS = 400_000_000


def _parallel_profile(
    kernel: Kernel,
    port: int,
    idle_setup: Callable,
    active_setup: Callable,
    idle_count: int = 3,
) -> List[Process]:
    @sim_function
    def idle_client(sys, index):
        fd = yield from connect_with_retry(sys, port, attempts=200)
        yield from idle_setup(sys, fd, index)
        yield from sys.nanosleep(IDLE_HOLD_NS)
        yield from sys.close(fd)

    @sim_function
    def active_client(sys):
        fd = yield from connect_with_retry(sys, port, attempts=200)
        yield from active_setup(sys, fd)
        # Stay connected a while after the big transfer too.
        yield from sys.nanosleep(IDLE_HOLD_NS // 2)
        yield from sys.close(fd)

    clients = [
        kernel.spawn_process(idle_client, args=(index,), name=f"profile-idle-{index}")
        for index in range(idle_count)
    ]
    clients.append(kernel.spawn_process(active_client, name="profile-active"))
    return clients


def web_profile(port: int, big_path: str = "/big.bin") -> Callable[[Kernel], List[Process]]:
    def workload(kernel: Kernel) -> List[Process]:
        @sim_function
        def idle_setup(sys, fd, index):
            yield from sys.send(fd, b"GET /index.html\n")
            yield from sys.recv(fd)

        @sim_function
        def active_setup(sys, fd):
            yield from sys.send(fd, f"GET {big_path}\n".encode())
            yield from sys.recv(fd)

        return _parallel_profile(kernel, port, idle_setup, active_setup)

    return workload


def ftp_profile(port: int = 21, big_path: str = "/pub/file1m.bin") -> Callable[[Kernel], List[Process]]:
    def workload(kernel: Kernel) -> List[Process]:
        @sim_function
        def idle_setup(sys, fd, index):
            yield from sys.recv(fd)  # banner
            yield from sys.send(fd, f"USER prof{index}\n".encode())
            yield from sys.recv(fd)
            yield from sys.send(fd, b"PASS secret\n")
            yield from sys.recv(fd)

        @sim_function
        def active_setup(sys, fd):
            yield from sys.recv(fd)  # banner
            yield from sys.send(fd, b"USER active\n")
            yield from sys.recv(fd)
            yield from sys.send(fd, b"PASS secret\n")
            yield from sys.recv(fd)
            yield from sys.send(fd, f"RETR {big_path}\n".encode())
            data = yield from sys.recv(fd)
            while data and b"226" not in data:
                data = yield from sys.recv(fd)

        return _parallel_profile(kernel, port, idle_setup, active_setup)

    return workload


def ssh_profile(port: int = 22) -> Callable[[Kernel], List[Process]]:
    def workload(kernel: Kernel) -> List[Process]:
        @sim_function
        def idle_setup(sys, fd, index):
            yield from sys.recv(fd)  # banner
            if index % 2 == 0:
                # Post-authentication state for half the connections.
                yield from sys.send(fd, f"AUTH prof{index} pw\n".encode())
                yield from sys.recv(fd)

        @sim_function
        def active_setup(sys, fd):
            yield from sys.recv(fd)
            yield from sys.send(fd, b"AUTH active pw\n")
            yield from sys.recv(fd)
            yield from sys.send(fd, b"EXEC big-task\n")
            yield from sys.recv(fd)

        return _parallel_profile(kernel, port, idle_setup, active_setup)

    return workload
