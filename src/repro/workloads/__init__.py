"""Client workloads: benchmarks and quiescence-profiling scripts.

* ``ab``       — the Apache-benchmark analogue (keep-alive HTTP GETs).
* ``ftpbench`` — the pyftpdlib-benchmark analogue (FTP logins + RETRs).
* ``sshsuite`` — the OpenSSH built-in-test-suite analogue.
* ``profiles`` — the §8 quiescence-profiling scripts: long-lived idle
  connections plus one large parallel transfer.
* ``holders``  — connection holders for update-time experiments (open N
  connections, freeze them across a live update — Figure 3).
"""

from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.sshsuite import SshSuite
from repro.workloads.holders import ConnectionHolder
from repro.workloads import profiles

__all__ = ["ApacheBench", "FtpBench", "SshSuite", "ConnectionHolder", "profiles"]
