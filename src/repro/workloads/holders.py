"""Connection holders: keep N client connections open across an update.

Figure 3 measures state-transfer time as a function of the number of open
connections at live-update time.  A ``ConnectionHolder`` connects N
clients, performs each protocol's minimal setup (FTP/SSH login so the
server forks a session process per connection), then parks the clients
until released — the paper's "allowed a number of users to connect to our
test programs after completing the execution of our benchmarks".
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.servers.common import ClientLatencyLog, connect_with_retry


class ConnectionHolder:
    """Opens and parks ``count`` connections of the given protocol kind."""

    def __init__(self, port: int, count: int, kind: str = "http") -> None:
        if kind not in ("http", "ftp", "ssh"):
            raise ValueError(f"unknown connection kind: {kind}")
        self.port = port
        self.count = count
        self.kind = kind
        self.ready = 0
        self.errors = 0
        self._release = False
        self.clients: List[Process] = []
        self.latency = ClientLatencyLog()

    def release(self) -> None:
        self._release = True

    def establish(self, kernel: Kernel, max_steps: int = 8_000_000) -> None:
        """Spawn the clients and run until all connections are set up."""
        holder = self

        @sim_function
        def holder_client(sys, index):
            clock = sys.kernel.clock
            try:
                fd = yield from connect_with_retry(sys, holder.port, attempts=200)
            except SimError:
                holder.errors += 1
                return
            if holder.kind == "ftp":
                yield from sys.recv(fd)  # banner
                start = clock.now_ns
                yield from sys.send(fd, f"USER hold{index}\n".encode())
                yield from sys.recv(fd)
                yield from sys.send(fd, b"PASS secret\n")
                yield from sys.recv(fd)
                holder.latency.record(start, clock.now_ns)  # login exchange
                # One retrieval, so the held session carries transfer
                # state (and its type-unsafe cached pointers).
                start = clock.now_ns
                yield from sys.send(fd, b"RETR /pub/readme.txt\n")
                data = yield from sys.recv(fd)
                while data and b"226" not in data:
                    data = yield from sys.recv(fd)
                holder.latency.record(start, clock.now_ns)
            elif holder.kind == "ssh":
                yield from sys.recv(fd)  # banner
                start = clock.now_ns
                yield from sys.send(fd, f"AUTH hold{index} pw\n".encode())
                yield from sys.recv(fd)
                holder.latency.record(start, clock.now_ns)
            else:
                # HTTP: issue one request so the connection is fully
                # established server-side (accepted + registered).
                start = clock.now_ns
                yield from sys.send(fd, b"GET /index.html\n")
                yield from sys.recv(fd)
                holder.latency.record(start, clock.now_ns)
            holder.ready += 1
            while not holder._release:
                yield from sys.nanosleep(20_000_000)
            yield from sys.close(fd)

        self.clients = [
            kernel.spawn_process(holder_client, args=(index,), name=f"hold-{index}")
            for index in range(self.count)
        ]
        kernel.run(
            until=lambda: self.ready + self.errors >= self.count,
            max_steps=max_steps,
        )

    def finish(self, kernel: Kernel, max_steps: int = 2_000_000) -> None:
        self.release()
        kernel.run(
            until=lambda: all(c.exited for c in self.clients),
            max_steps=max_steps,
        )
