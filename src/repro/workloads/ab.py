"""The Apache benchmark (AB) analogue.

The paper configures AB to issue 100,000 keep-alive requests for a 1 KB
file; we run the same shape scaled down (the virtual clock makes ratios
size-independent).  Each concurrent client issues ``requests //
concurrency`` GETs over one keep-alive connection and records per-request
virtual latencies.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.replay import rng as replay_rng
from repro.servers.common import ClientLatencyLog, connect_with_retry


class ApacheBench:
    """HTTP GET benchmark driver."""

    def __init__(
        self,
        port: int,
        requests: int = 200,
        concurrency: int = 4,
        path: str = "/file1k.bin",
        reconnect_stall_ns: int = None,
        jitter_ns: int = 0,
    ) -> None:
        self.port = port
        self.requests = requests
        self.concurrency = concurrency
        self.path = path
        # Client think time: with ``jitter_ns`` set, each request is
        # preceded by a uniform 0..jitter_ns virtual-time sleep drawn
        # from the named ``workload.ab.jitter`` replay stream, so runs
        # with jitter stay deterministic (and recordable) per seed.
        # The default of 0 takes zero draws — byte-identical to before.
        self.jitter_ns = jitter_ns
        # With ``reconnect_stall_ns`` set, a client whose response stalls
        # longer than that abandons its keep-alive connection and retries
        # the request over a fresh one — real AB's timeout/retry posture.
        # A fresh connect lands on whichever worker is live, which is what
        # lets clients ride out a rolling per-worker update.  None keeps
        # the original block-forever behaviour.
        self.reconnect_stall_ns = reconnect_stall_ns
        self.reconnects = 0
        self.completed = 0
        self.errors = 0
        self.latency = ClientLatencyLog()

    @property
    def latencies_ns(self) -> List[int]:
        return self.latency.latencies_ns()

    def __call__(self, kernel: Kernel) -> List[Process]:
        per_client = max(1, self.requests // self.concurrency)
        bench = self
        jitter = (
            replay_rng.stream("workload.ab.jitter") if self.jitter_ns else None
        )

        @sim_function
        def ab_client(sys):
            clock = sys.kernel.clock
            try:
                fd = yield from connect_with_retry(sys, bench.port)
            except SimError:
                bench.errors += per_client
                return
            for _ in range(per_client):
                if jitter is not None:
                    yield from sys.nanosleep(jitter.randint(0, bench.jitter_ns))
                start = clock.now_ns
                attempts = 0
                while True:
                    try:
                        yield from sys.send(fd, f"GET {bench.path}\n".encode())
                        reply = yield from sys.recv(
                            fd, timeout_ns=bench.reconnect_stall_ns
                        )
                    except SimError:
                        reply = None
                    if isinstance(reply, (bytes, bytearray)) and reply:
                        bench.completed += 1
                        bench.latency.record(start, clock.now_ns)
                        break
                    if bench.reconnect_stall_ns is None or attempts >= 100:
                        bench.errors += 1
                        yield from sys.close(fd)
                        return
                    # Stalled (or dropped) mid-update: reconnect and retry
                    # this request; a live worker picks up the new socket.
                    attempts += 1
                    bench.reconnects += 1
                    yield from sys.close(fd)
                    try:
                        fd = yield from connect_with_retry(sys, bench.port)
                    except SimError:
                        bench.errors += 1
                        return
            yield from sys.close(fd)

        return [
            kernel.spawn_process(ab_client, name=f"ab-{index}")
            for index in range(self.concurrency)
        ]

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> int:
        """Drive to completion; returns elapsed virtual ns."""
        start_ns = kernel.clock.now_ns
        clients = self(kernel)
        kernel.run(until=lambda: all(c.exited for c in clients), max_steps=max_steps)
        return kernel.clock.now_ns - start_ns
