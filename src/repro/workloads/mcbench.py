"""The memcached benchmark analogue (memtier/mc-crusher shape).

Each concurrent client drives one keep-alive connection with a mixed
set/get stream against the simulated memcache server, recording
per-operation virtual latencies.  The interface mirrors
``ApacheBench`` (``__call__`` spawning clients, ``run`` driving to
completion, a ``ClientLatencyLog``), so every bench that accepts a
workload — updatetime's mid-flight client-perceived measurement in
particular — takes memcache as a first-class subject.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.replay import rng as replay_rng
from repro.servers.common import ClientLatencyLog, connect_with_retry


class McBench:
    """Mixed set/get memcache benchmark driver."""

    def __init__(
        self,
        port: int,
        operations: int = 200,
        concurrency: int = 4,
        reconnect_stall_ns: int = None,
        jitter_ns: int = 0,
    ) -> None:
        self.port = port
        self.operations = operations
        self.concurrency = concurrency
        # Same deterministic think-time knob as ApacheBench: uniform
        # 0..jitter_ns sleep per operation, drawn from the named
        # ``workload.mc.jitter`` replay stream; 0 takes zero draws.
        self.jitter_ns = jitter_ns
        # Same timeout/retry posture as ApacheBench: with a stall bound
        # set, a client abandons a wedged connection and retries the
        # operation over a fresh connect; None blocks forever.
        self.reconnect_stall_ns = reconnect_stall_ns
        self.reconnects = 0
        self.completed = 0
        self.errors = 0
        self.latency = ClientLatencyLog()

    @property
    def latencies_ns(self) -> List[int]:
        return self.latency.latencies_ns()

    def _script(self, client: int, per_client: int) -> List[tuple]:
        """(request line, expected reply prefix) per operation.

        Write-then-read per key so every get hits, with a periodic
        ``nstats`` mixed in — the stats path is what carries the
        server's version tag, so the stream itself would catch a
        wrong-version server mid-rollout.
        """
        ops: List[tuple] = []
        for index in range(per_client):
            if index % 8 == 7:
                ops.append(("nstats", "STATS"))
            elif index % 2 == 0:
                ops.append((f"set k{client}_{index % 8} v{index}", "STORED"))
            else:
                # Read back the key the previous op stored, so every get
                # hits and a wrong reply means the server, not the script.
                ops.append((f"get k{client}_{(index - 1) % 8}", "VALUE"))
        return ops

    def __call__(self, kernel: Kernel) -> List[Process]:
        per_client = max(1, self.operations // self.concurrency)
        bench = self
        jitter = (
            replay_rng.stream("workload.mc.jitter") if self.jitter_ns else None
        )

        @sim_function
        def mc_client(sys, index):
            clock = sys.kernel.clock
            try:
                fd = yield from connect_with_retry(sys, bench.port)
            except SimError:
                bench.errors += per_client
                return
            for line, expect in bench._script(index, per_client):
                if jitter is not None:
                    yield from sys.nanosleep(jitter.randint(0, bench.jitter_ns))
                start = clock.now_ns
                attempts = 0
                while True:
                    try:
                        yield from sys.send(fd, (line + "\n").encode())
                        reply = yield from sys.recv(
                            fd, timeout_ns=bench.reconnect_stall_ns
                        )
                    except SimError:
                        reply = None
                    if (
                        isinstance(reply, (bytes, bytearray))
                        and reply
                        and reply.decode(errors="replace").startswith(expect)
                    ):
                        bench.completed += 1
                        bench.latency.record(start, clock.now_ns)
                        break
                    if bench.reconnect_stall_ns is None or attempts >= 100:
                        bench.errors += 1
                        yield from sys.close(fd)
                        return
                    attempts += 1
                    bench.reconnects += 1
                    yield from sys.close(fd)
                    try:
                        fd = yield from connect_with_retry(sys, bench.port)
                    except SimError:
                        bench.errors += 1
                        return
            yield from sys.close(fd)

        return [
            kernel.spawn_process(mc_client, args=(index,), name=f"mc-{index}")
            for index in range(self.concurrency)
        ]

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> int:
        """Drive to completion; returns elapsed virtual ns."""
        start_ns = kernel.clock.now_ns
        clients = self(kernel)
        kernel.run(until=lambda: all(c.exited for c in clients), max_steps=max_steps)
        return kernel.clock.now_ns - start_ns
