"""Line-protocol driver for the command servers (simple, memcache).

Each client connects once and plays the scripted ``(line, expected reply
prefix)`` exchanges — AB's ``GET <path>`` shape only draws ``err
unknown`` from these protocols, which would make a probe vacuous.
Shared by the fault matrix and the record/replay scenario runner.
"""

from __future__ import annotations

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import sim_function
from repro.servers.common import connect_with_retry


class LineBench:
    """Scripted line-protocol exchange driver."""

    def __init__(self, port: int, script, clients: int = 1) -> None:
        self.port = port
        self.script = list(script)
        self.clients = clients
        self.completed = 0
        self.errors = 0

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> None:
        bench = self

        @sim_function
        def line_client(sys):
            try:
                fd = yield from connect_with_retry(sys, bench.port)
            except SimError:
                bench.errors += len(bench.script)
                return
            for line, expect in bench.script:
                yield from sys.send(fd, (line + "\n").encode())
                reply = yield from sys.recv(fd)
                if reply and reply.decode(errors="replace").startswith(expect):
                    bench.completed += 1
                else:
                    bench.errors += 1
            yield from sys.close(fd)

        procs = [
            kernel.spawn_process(line_client, name=f"line-{index}")
            for index in range(self.clients)
        ]
        kernel.run(until=lambda: all(p.exited for p in procs), max_steps=max_steps)
