"""SLO-gated canary → wave rollout across a fleet of nodes.

The rollout protocol (the fleet-scale analogue of one MCR update's
checkpoint/commit/rollback discipline):

1. **Canary** — update exactly one node mid-traffic, judge it by what
   its *clients* saw: the update must commit AND the node's measured
   blackout must fit ``downtime_budget_ns`` (``ClientPerceived``, the
   CheckSync criterion).  A failed canary verdict aborts the rollout and
   auto-rolls-back the fleet — with only the canary possibly updated,
   that means the fleet ends exactly where it started.
2. **Waves** — widen geometrically (1 → k → k·growth → … → all).  Every
   wave's nodes leave load-balancer rotation for their blackout (their
   request stream shifts to the healthy remainder), update "in parallel"
   in virtual time, then rejoin.  Each node is judged like the canary.
3. **Fault policy** — a mid-wave failure (a node's update rolls back, or
   commits outside the SLO) resolves by policy: ``revert`` walks every
   already-committed node back to the old version, ``converge`` retries
   the failed node until the fleet is fully updated.  Either way the end
   state is uniform — all-old or all-new, never mixed — which the bench
   asserts per node via ``TreeFingerprint`` and protocol-level version
   probes.

In-update rollbacks restore the node byte-identically (MCR's fingerprint
verification); reverting an already-*committed* node is a fresh live
update back to the old program — semantic state carries over, exactly as
a real fleet rolls back a bad release.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from repro.clock import ns_to_ms
from repro.fleet.fleet import Fleet
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import FaultPlan
from repro.obs.metrics import Histogram
from repro.servers.common import ClientPerceived


def wave_plan(total: int, canary: int = 1, growth: int = 4) -> List[int]:
    """Wave sizes 1 → k → k·growth → … covering ``total`` nodes."""
    sizes: List[int] = []
    remaining = total
    size = max(1, canary)
    while remaining > 0:
        take = min(size, remaining)
        sizes.append(take)
        remaining -= take
        size = max(size * growth, growth)
    return sizes


class NodeOutcome:
    """One node's judged update attempt within a rollout."""

    def __init__(
        self,
        node: Node,
        wave: int,
        committed: bool,
        rolled_back: bool,
        blackout_ns: int,
        slo_ok: bool,
        duration_ns: int,
        rollback_verified: Optional[bool],
        failure_site: Optional[str],
        error: Optional[str],
        retried: bool = False,
    ) -> None:
        self.node_id = node.node_id
        self.wave = wave
        self.committed = committed
        self.rolled_back = rolled_back
        self.blackout_ns = blackout_ns
        self.slo_ok = slo_ok
        self.duration_ns = duration_ns
        self.rollback_verified = rollback_verified
        self.failure_site = failure_site
        self.error = error
        self.retried = retried

    @property
    def ok(self) -> bool:
        return self.committed and self.slo_ok

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "wave": self.wave,
            "committed": self.committed,
            "rolled_back": self.rolled_back,
            "blackout_ms": ns_to_ms(self.blackout_ns),
            "slo_ok": self.slo_ok,
            "duration_ms": ns_to_ms(self.duration_ns),
            "rollback_verified": self.rollback_verified,
            "failure_site": self.failure_site,
            "error": self.error,
            "retried": self.retried,
        }


class RolloutReport:
    """Everything one rollout did, judged and aggregated."""

    def __init__(self, fleet: Fleet, from_version: int, to_version: int,
                 budget_ns: int) -> None:
        self.fleet = fleet
        self.from_version = from_version
        self.to_version = to_version
        self.budget_ns = budget_ns
        self.outcomes: List[NodeOutcome] = []
        self.waves_run = 0
        self.outcome = "updated"          # "updated" | "reverted"
        self.gate_failures: List[int] = []  # node ids that failed their gate
        self.reverted_nodes: List[int] = []
        self.revert_failures: List[int] = []
        self.converge_retries = 0
        self.start_ns = fleet.now_ns
        self.end_ns = fleet.now_ns

    # -- aggregates ----------------------------------------------------------

    def updated_blackouts_ns(self) -> List[int]:
        return [o.blackout_ns for o in self.outcomes if o.committed]

    def blackout_summary_ms(self) -> Dict[str, object]:
        return Histogram.from_values(
            "fleet.node_blackout_ns", self.updated_blackouts_ns()
        ).summary_ms()

    @property
    def end_versions(self) -> List[int]:
        return self.fleet.versions()

    @property
    def uniform(self) -> bool:
        """All-old or all-new, never mixed — the fleet-level invariant."""
        versions = set(self.end_versions)
        if len(versions) != 1:
            return False
        expected = (
            self.to_version if self.outcome == "updated" else self.from_version
        )
        return versions == {expected} and not self.revert_failures

    def to_dict(self) -> Dict[str, object]:
        fleet = self.fleet
        summary = self.blackout_summary_ms()
        return {
            "nodes": len(fleet),
            "from_version": self.from_version,
            "to_version": self.to_version,
            "outcome": self.outcome,
            "uniform": self.uniform,
            "waves": self.waves_run,
            "updated_nodes": sum(1 for o in self.outcomes if o.committed),
            "gate_failures": list(self.gate_failures),
            "reverted_nodes": list(self.reverted_nodes),
            "converge_retries": self.converge_retries,
            "requests_sent": fleet.requests_sent,
            "requests_completed": fleet.requests_completed,
            "requests_lost": fleet.requests_lost,
            "requests_shifted": fleet.lb.requests_shifted,
            "node_blackout_p50_ms": summary["p50_ms"],
            "node_blackout_p99_ms": summary["p99_ms"],
            "node_blackout_max_ms": summary["max_ms"],
            "fleet_blackout_ms": ns_to_ms(
                fleet.fleet_blackout_ns((self.start_ns, self.end_ns))
            ),
            "downtime_budget_ms": ns_to_ms(self.budget_ns),
            "rollout_ms": ns_to_ms(self.end_ns - self.start_ns),
            "node_outcomes": [o.to_dict() for o in self.outcomes],
        }


class Orchestrator:
    """Drives SLO-gated canary → wave rollouts over one fleet."""

    def __init__(
        self,
        fleet: Fleet,
        budget_ns: Optional[int] = None,
        canary: int = 1,
        wave_growth: int = 4,
        on_fault: str = "revert",
        window_ns: int = 2_000_000,
        requests_per_window: Optional[int] = None,
        windows_between_waves: int = 2,
        update_config: Optional[MCRConfig] = None,
    ) -> None:
        if on_fault not in ("revert", "converge"):
            raise ValueError(f"on_fault must be 'revert' or 'converge', got {on_fault!r}")
        self.fleet = fleet
        self.budget_ns = (
            budget_ns
            if budget_ns is not None
            else (update_config or MCRConfig()).downtime_budget_ns
        )
        self.canary = canary
        self.wave_growth = wave_growth
        self.on_fault = on_fault
        self.window_ns = window_ns
        self.requests_per_window = requests_per_window or max(4, len(fleet))
        self.windows_between_waves = windows_between_waves
        self.update_config = update_config

    # -- traffic -------------------------------------------------------------

    def serve_windows(self, count: int) -> None:
        for _ in range(count):
            self.fleet.serve_window(self.requests_per_window, self.window_ns)

    # -- the rollout ---------------------------------------------------------

    def rollout(
        self,
        to_version: Optional[int] = None,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
    ) -> RolloutReport:
        """Canary → widening waves → converged or fully-reverted fleet.

        ``fault_plans`` arms a per-node ``FaultPlan`` (fault-matrix style)
        for that node's update attempt — the mid-wave-fault experiments
        inject through here.
        """
        fleet = self.fleet
        from_version = fleet.nodes[0].version
        target = to_version if to_version is not None else from_version + 1
        report = RolloutReport(fleet, from_version, target, self.budget_ns)
        fault_plans = fault_plans or {}
        order = list(fleet.nodes)
        waves: List[List[Node]] = []
        for size in wave_plan(len(order), canary=self.canary, growth=self.wave_growth):
            waves.append(order[:size])
            order = order[size:]
        aborted = False
        for wave_index, wave_nodes in enumerate(waves):
            report.waves_run += 1
            is_canary_wave = wave_index == 0
            # The wave leaves rotation: its stream shifts to the healthy
            # remainder, which gets one window queued to serve across the
            # coming blackout interval.
            for node in wave_nodes:
                fleet.lb.mark_updating(node.node_id)
            for node_id, count in fleet.lb.route(self.requests_per_window).items():
                fleet.by_id[node_id].serve(count)
            wave_outcomes = [
                self._update_and_judge(
                    node, wave_index, target, fault_plans.get(node.node_id)
                )
                for node in wave_nodes
            ]
            # Healthy nodes execute their queued requests across the same
            # virtual interval the updates consumed.
            fleet.sync()
            for node in wave_nodes:
                fleet.lb.mark_healthy(node.node_id)
            report.outcomes.extend(wave_outcomes)
            failed = [o for o in wave_outcomes if not o.ok]
            if failed:
                report.gate_failures.extend(o.node_id for o in failed)
                if is_canary_wave or self.on_fault == "revert":
                    # A failed canary verdict always reverts the fleet.
                    self._revert(report)
                    aborted = True
                    break
                self._converge(report, failed, target)
            self.serve_windows(self.windows_between_waves)
        if not aborted:
            report.outcome = "updated"
        fleet.drain()
        report.end_ns = fleet.now_ns
        return report

    def _update_and_judge(
        self, node: Node, wave_index: int, target: int,
        faults: Optional[FaultPlan],
    ) -> NodeOutcome:
        config = self.update_config
        if faults is not None:
            config = copy.copy(config) if config is not None else MCRConfig()
            config.faults = faults
        t0 = node.now_ns
        result = node.update(
            program=node.module.make_program(target), config=config
        )
        # In-flight requests held through the update complete here; their
        # completion stamps bound the measured blackout.
        node.drain()
        t1 = node.now_ns
        perceived = ClientPerceived.measure(
            node.latency, budget_ns=self.budget_ns, window=(t0, t1)
        )
        result.client = perceived
        return NodeOutcome(
            node,
            wave_index,
            committed=result.committed,
            rolled_back=result.rolled_back,
            blackout_ns=perceived.blackout_ns,
            slo_ok=perceived.slo_ok,
            duration_ns=result.total_ns,
            rollback_verified=result.rollback_verified,
            failure_site=result.failure_site,
            error=type(result.error).__name__ if result.error else None,
        )

    def _revert(self, report: RolloutReport) -> None:
        """Walk every committed node back to the old version (fleet rollback)."""
        report.outcome = "reverted"
        for node in self.fleet.nodes:
            if node.version == report.from_version:
                continue
            result = node.update(
                program=node.module.make_program(report.from_version)
            )
            node.drain()
            if result.committed:
                report.reverted_nodes.append(node.node_id)
            else:  # a failed revert leaves the node new-version: loud, not mixed-silent
                report.revert_failures.append(node.node_id)

    def _converge(
        self, report: RolloutReport, failed: List[NodeOutcome], target: int
    ) -> None:
        """Retry failed nodes until the wave converges (fault plans are
        one-shot: the re-run is the clean attempt)."""
        for outcome in failed:
            node = self.fleet.by_id[outcome.node_id]
            for _attempt in range(2):
                if node.version == target:
                    break
                report.converge_retries += 1
                retry = self._update_and_judge(node, outcome.wave, target, None)
                retry.retried = True
                report.outcomes.append(retry)
                if retry.ok:
                    break
