"""Crash-failover drills: primary + warm standby under fault injection.

The robustness counterpart of the rollout orchestrator: instead of a
*planned* live update, the ``FailoverDrill`` kills the primary outright
(``Kernel.crash_tree`` — no fd release, no port cleanup, mid-window)
and measures what clients actually experience while the load balancer
fails over to a warm standby kept fresh by the incremental checkpoint
stream of ``repro.checkpoint``:

* **RTO** — crash time to the first request completed by the standby;
* **requests lost** — end-to-end, with the in-flight requests that died
  with the primary re-issued against the promoted standby (the retry a
  real client library performs against the VIP);
* **staleness** — how many delta sequences the standby was behind when
  promoted (CheckSync-style bounded divergence under stream faults).

Every checkpoint-plane fault site can be armed mid-drill.  Checkpoint-
side faults (``checkpoint.capture``/``write``/``delta``) never disturb
serving — the drill swallows them and the primary continues cleanly;
stream/restore/promote faults degrade the standby instead, and the
drill still converges by promoting the stale standby or cold-restoring
from the last good durable image.  ``run`` never raises: the outcome is
always a ``FailoverResult``.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, List, Optional

from repro import obs
from repro.checkpoint import (
    DeltaBaseline,
    StandbyChannel,
    WarmStandby,
    capture_delta,
    checkpoint_node,
    read_image,
    restore_image,
    resume_node,
    write_image,
)
from repro.fleet.lb import LoadBalancer
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.servers.common import ClientLatencyLog, ClientPerceived

# Failure-detection delay: the lease/heartbeat timeout before the fleet
# declares the primary dead and starts promotion (virtual ns).
DETECT_NS = 5_000_000

PRIMARY_ID = 0
STANDBY_ID = 1
COLD_ID = 2

# Post-drain settle before cutting the seed image (see _run).
_SETTLE_NS = 2_000_000


class FailoverResult:
    """Everything one drill measured, JSON-ready via ``to_dict``."""

    def __init__(self, server: str) -> None:
        self.server = server
        self.crashed = False
        self.promoted = False
        self.cold_restored = False
        self.primary_survived = False
        self.served_after = False
        self.requests_sent = 0
        self.requests_completed = 0
        self.requests_lost = 0
        self.reissued = 0
        self.rto_ns: Optional[int] = None
        self.image_bytes = 0
        self.delta_bytes = 0
        self.deltas_sent = 0
        self.checkpoint_failures = 0
        self.standby_stale = False
        self.stale_lag = 0          # source seq - applied seq at promotion
        self.fired_sites: List[str] = []
        self.perceived: Optional[Dict[str, Any]] = None
        self.blackbox: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "server": self.server,
            "crashed": self.crashed,
            "promoted": self.promoted,
            "cold_restored": self.cold_restored,
            "primary_survived": self.primary_survived,
            "served_after": self.served_after,
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_lost": self.requests_lost,
            "reissued": self.reissued,
            "rto_ms": None if self.rto_ns is None else self.rto_ns / 1e6,
            "image_kb": self.image_bytes // 1024,
            "delta_bytes": self.delta_bytes,
            "deltas_sent": self.deltas_sent,
            "checkpoint_failures": self.checkpoint_failures,
            "standby_stale": self.standby_stale,
            "stale_lag": self.stale_lag,
            "fired_sites": list(self.fired_sites),
            "perceived": self.perceived,
            "blackbox": self.blackbox,
            "error": self.error,
        }


class FailoverDrill:
    """One primary/standby pair driven through windows, cadence, and a crash."""

    def __init__(
        self,
        server: str = "simple",
        config: Optional[MCRConfig] = None,
        windows: int = 10,
        window_ns: int = 20_000_000,
        requests_per_window: int = 6,
        crash: bool = True,
        crash_window: Optional[int] = None,
        detect_ns: int = DETECT_NS,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.server = server
        self.config = config or MCRConfig()
        self.windows = windows
        self.window_ns = window_ns
        self.requests_per_window = requests_per_window
        self.crash = crash
        self.crash_window = (
            crash_window if crash_window is not None else max(1, windows // 2)
        )
        self.detect_ns = detect_ns
        self.checkpoint_path = checkpoint_path or self.config.checkpoint_path
        self._owns_path = False
        # Drill state.
        self.primary: Optional[Node] = None
        self.standby: Optional[WarmStandby] = None
        self.channel = StandbyChannel()
        self.baseline: Optional[DeltaBaseline] = None
        self.last_image = None
        self.durable_ok = False
        self.source_seq = 0

    # -- checkpoint plumbing (fault-tolerant: failures never stop serving) -----

    def _fired(self, result: FailoverResult, error: Exception) -> None:
        site = getattr(error, "fault_site", None)
        result.fired_sites.append(site or type(error).__name__)

    def _cut_full(self, result: FailoverResult) -> bool:
        """Cut + durably write a full image, (re)seed baseline and standby."""
        try:
            image = checkpoint_node(self.primary, self.config)
        except Exception as error:
            result.checkpoint_failures += 1
            self._fired(result, error)
            return False
        self.last_image = image
        result.image_bytes = image.total_bytes()
        self.baseline = DeltaBaseline(image)
        self.source_seq = 0
        self._write_durable(result)
        return True

    def _write_durable(self, result: FailoverResult) -> None:
        if not self.checkpoint_path or self.last_image is None:
            return
        try:
            write_image(self.last_image, self.checkpoint_path, self.config)
            self.durable_ok = True
        except Exception as error:
            result.checkpoint_failures += 1
            self._fired(result, error)

    def _boot_standby(self, result: FailoverResult) -> None:
        if self.last_image is None:
            return
        for _attempt in (1, 2):  # a failed restore is retried once
            try:
                self.standby = WarmStandby.from_image(
                    self.last_image, node_id=STANDBY_ID, config=self.config
                )
                return
            except Exception as error:
                self._fired(result, error)

    def _cadence_tick(self, result: FailoverResult) -> None:
        """Cut the next delta and stream it (or repair whatever failed)."""
        if self.last_image is None:
            self._cut_full(result) and self._boot_standby(result)
            return
        if not self.durable_ok and self.checkpoint_path:
            self._write_durable(result)  # retry a torn image write
        if self.standby is None:
            self._boot_standby(result)
        try:
            delta = capture_delta(self.primary, self.baseline, self.config)
        except Exception as error:
            result.checkpoint_failures += 1
            self._fired(result, error)
            return
        if delta is None:
            # Tree shape changed: resync standby from a fresh full image.
            if self._cut_full(result) and self.standby is not None:
                self.standby.resync(self.last_image)
            return
        self.source_seq = delta.seq
        result.deltas_sent += 1
        result.delta_bytes += delta.total_bytes()
        try:
            self.channel.send(delta, self.config)
        except Exception as error:
            self._fired(result, error)
            return  # dropped on the floor -> the standby will see a gap
        if self.standby is not None:
            for blob in self.channel.drain():
                self.standby.apply(blob)

    # -- the crash + failover --------------------------------------------------

    def _failover(self, result: FailoverResult) -> Optional[Node]:
        """Kill the primary, promote (or cold-restore); returns the new server."""
        primary = self.primary
        crash_ns = primary.now_ns
        result.crashed = True
        pending = primary.pending()
        with primary.scope():
            primary.kernel.crash_tree(primary.root)
        obs.emit("failover.crash", severity="warn", at_ns=crash_ns)
        serving: Optional[Node] = None
        if self.standby is not None:
            self._sync_clock(self.standby.node, crash_ns + self.detect_ns)
            result.standby_stale = self.standby.stale
            result.stale_lag = self.source_seq - self.standby.applied_seq
            try:
                serving = self.standby.promote()
                result.promoted = True
            except Exception as error:
                self._fired(result, error)
                result.blackbox = self.standby.last_blackbox
        if serving is None:
            serving = self._cold_restore(result, crash_ns)
        if serving is None:
            return None
        result.reissued = pending
        serving.serve(pending)
        return serving

    def _cold_restore(self, result: FailoverResult, crash_ns: int) -> Optional[Node]:
        """Last resort: restore from the last good durable (or in-memory) image."""
        image = None
        if self.durable_ok and self.checkpoint_path:
            try:
                image = read_image(self.checkpoint_path)
            except Exception as error:
                self._fired(result, error)
        if image is None:
            image = self.last_image
        if image is None:
            result.error = "no image to restore from"
            return None
        try:
            node = restore_image(image, node_id=COLD_ID, config=self.config)
        except Exception as error:
            self._fired(result, error)
            result.error = f"cold restore failed: {error}"
            return None
        # Cold restore pays the full image read + graft, not a warm promote.
        self._sync_clock(node, crash_ns + self.detect_ns)
        node.kernel.clock.advance(image.total_bytes())  # ~1 ns/byte rehydrate
        resume_node(node)
        result.cold_restored = True
        obs.emit("failover.cold_restore", image_id=image.image_id)
        return node

    @staticmethod
    def _sync_clock(node: Node, to_ns: int) -> None:
        """Lockstep a quiesced node's clock with the fleet deadline."""
        delta = to_ns - node.now_ns
        if delta > 0:
            node.kernel.clock.advance(delta)

    # -- the drill -------------------------------------------------------------

    def run(self) -> FailoverResult:
        result = FailoverResult(self.server)
        if self.checkpoint_path is None:
            handle = tempfile.NamedTemporaryFile(
                prefix="mcr-image-", suffix=".img", delete=False
            )
            handle.close()
            self.checkpoint_path = handle.name
            self._owns_path = True
        try:
            self._run(result)
        except Exception as error:  # pragma: no cover - the never-raise backstop
            result.error = f"drill error: {error!r}"
        finally:
            if self._owns_path:
                try:
                    os.unlink(self.checkpoint_path)
                except OSError:
                    pass
        return result

    def _run(self, result: FailoverResult) -> None:
        self.primary = Node.boot(
            self.server, node_id=PRIMARY_ID, config=self.config
        )
        lb = LoadBalancer([PRIMARY_ID, STANDBY_ID])
        lb.mark_updating(STANDBY_ID)  # warm, but out of rotation
        # Warm up, then seed the image/baseline/standby.  Settle the
        # kernel after the drain: a worker that has not yet processed a
        # client's EOF still holds the accepted-connection fd, and the
        # restore validation (rightly) refuses an image with connection
        # fds a fresh boot cannot have — this is what used to wedge the
        # httpd rows of the full cadence sweep into cold-restore loops.
        self.primary.serve(self.requests_per_window)
        self.primary.drain()
        self.primary.settle(_SETTLE_NS)
        self._cut_full(result)
        self._boot_standby(result)
        serving = self.primary
        crash_ns: Optional[int] = None
        start_ns = serving.now_ns
        last_cp_ns = start_ns
        interval = self.config.checkpoint_interval_ns
        for window in range(self.windows):
            deadline = start_ns + (window + 1) * self.window_ns
            serving.serve(self.requests_per_window)
            if self.crash and window == self.crash_window and not result.crashed:
                serving.advance_to(deadline - self.window_ns // 2)
                crash_ns = serving.now_ns
                serving = self._failover(result)
                if serving is None:
                    break
                lb.mark_updating(PRIMARY_ID)
                lb.mark_healthy(serving.node_id)
            serving.advance_to(deadline)
            if serving is self.primary and self.standby is not None:
                self._sync_clock(self.standby.node, deadline)
            if serving is self.primary and deadline - last_cp_ns >= interval:
                self._cadence_tick(result)
                last_cp_ns = deadline
        if serving is not None:
            serving.drain()
            result.served_after = bool(serving.served_version() or serving.completed)
            result.primary_survived = serving is self.primary
            self._measure(result, serving, crash_ns, start_ns)
        self._teardown(serving)

    def _measure(
        self,
        result: FailoverResult,
        serving: Node,
        crash_ns: Optional[int],
        start_ns: int,
    ) -> None:
        nodes = [self.primary]
        if serving is not self.primary:
            nodes.append(serving)
        result.requests_sent = sum(n.requests_sent for n in nodes) - result.reissued
        result.requests_completed = sum(n.completed for n in nodes)
        result.requests_lost = sum(n.lost for n in nodes)
        if result.crashed and self.primary is not None:
            # In-flight clients frozen with the crashed kernel: their
            # re-issues completed (or were lost) on the standby; anything
            # still pending there after the final drain is lost for good.
            result.requests_lost += serving.pending() if serving else 0
        merged = ClientLatencyLog()
        for node in nodes:
            merged.samples.extend(node.latency.samples)
        merged.samples.sort()
        end_ns = serving.now_ns
        result.perceived = ClientPerceived.measure(
            merged,
            self.config.downtime_budget_ns,
            window=(start_ns, end_ns),
        ).to_dict()
        if crash_ns is not None and serving is not self.primary:
            after = [r for _s, r in serving.latency.samples if r >= crash_ns]
            if after:
                result.rto_ns = min(after) - crash_ns

    def _teardown(self, serving: Optional[Node]) -> None:
        for node in (
            self.primary,
            self.standby.node if self.standby is not None else None,
            serving,
        ):
            if node is not None:
                try:
                    node.teardown()
                except Exception:  # a dead kernel may refuse; best effort
                    pass


def run_failover_drill(
    server: str = "simple",
    config: Optional[MCRConfig] = None,
    **kwargs: Any,
) -> FailoverResult:
    """Convenience wrapper: build a drill, run it, return the result."""
    return FailoverDrill(server, config=config, **kwargs).run()
