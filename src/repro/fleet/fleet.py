"""The fleet harness: N nodes multiplexed in lockstep virtual time.

Every node owns an independent kernel and virtual clock; the harness
advances them in synchronized slices, so "the rest of the fleet keeps
serving while node 7 is in its update blackout" is literal — the other
kernels execute their request streams across the same virtual interval
the update consumed on node 7.  Host-side the nodes run sequentially;
virtual-time-side they are concurrent, which is the only notion of time
any measurement in this repo uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.lb import LoadBalancer
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import TreeFingerprint
from repro.runtime.instrument import BuildConfig


class Fleet:
    """N stamped-out nodes behind one simulated load balancer."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        self.nodes: List[Node] = list(nodes)
        self.by_id: Dict[int, Node] = {node.node_id: node for node in self.nodes}
        self.lb = LoadBalancer([node.node_id for node in self.nodes])
        self.requests_shed = 0  # windows routed while every node was out

    @classmethod
    def boot(
        cls,
        size: int,
        server: str = "simple",
        version: int = 1,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
    ) -> "Fleet":
        """Stamp out ``size`` nodes of ``server`` (cheap: ~2 ms per node)."""
        return cls(
            [
                Node.boot(server, node_id=index, version=version,
                          build=build, config=config)
                for index in range(size)
            ]
        )

    def __len__(self) -> int:
        return len(self.nodes)

    # -- lockstep time --------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Fleet time: the furthest-ahead node clock."""
        return max(node.now_ns for node in self.nodes)

    def sync(self) -> None:
        """Advance every node to the fleet-wide maximum clock.

        After an update advanced one node's clock by its blackout, this
        is what charges the same interval to every other node — their
        pending request streams execute across it.
        """
        deadline = self.now_ns
        for node in self.nodes:
            node.advance_to(deadline)

    def serve_window(self, requests: int, window_ns: int) -> Dict[int, int]:
        """Route one traffic window and advance the whole fleet through it.

        Requests split across in-rotation nodes; every node (in rotation
        or not) then runs the same virtual interval.  An empty routing
        map (full-fleet blackout) sheds the window's requests.
        """
        counts = self.lb.route(requests)
        if requests > 0 and not counts:
            self.requests_shed += requests
        for node_id, count in counts.items():
            self.by_id[node_id].serve(count)
        deadline = self.now_ns + window_ns
        for node in self.nodes:
            node.advance_to(deadline)
        return counts

    def drain(self) -> None:
        """Complete every issued request fleet-wide, then re-sync clocks."""
        for node in self.nodes:
            node.drain()
        self.sync()

    # -- aggregates -----------------------------------------------------------

    @property
    def requests_sent(self) -> int:
        return sum(node.requests_sent for node in self.nodes)

    @property
    def requests_completed(self) -> int:
        return sum(node.completed for node in self.nodes)

    @property
    def requests_lost(self) -> int:
        return sum(node.lost for node in self.nodes) + self.requests_shed

    def versions(self) -> List[int]:
        return [node.version for node in self.nodes]

    def served_versions(self) -> List[Optional[int]]:
        """Protocol-probed live version per node (None where unsupported)."""
        return [node.served_version() for node in self.nodes]

    def fingerprints(self) -> Dict[int, TreeFingerprint]:
        return {node.node_id: node.fingerprint() for node in self.nodes}

    def fleet_blackout_ns(self, window: Optional[Tuple[int, int]] = None) -> int:
        """Longest gap in *fleet-wide* completions.

        The client-perceived availability of the whole service: while any
        node completes requests, the fleet is up.  With the balancer
        shifting streams around per-node blackouts this stays near the
        inter-window idle gap even while individual nodes are dark.
        """
        completions = sorted(
            stamp
            for node in self.nodes
            for stamp in node.latency.completions_ns()
        )
        if window is not None:
            lo, hi = window
            completions = [lo] + [min(max(c, lo), hi) for c in completions] + [hi]
        if len(completions) < 2:
            return 0
        return max(b - a for a, b in zip(completions, completions[1:]))

    def teardown(self) -> None:
        for node in self.nodes:
            node.teardown()
