"""Planned live migration: pre-copy deltas, stop-and-copy, LB cutover.

The planned counterpart of ``repro.fleet.failover``: instead of waiting
for the primary to die and promoting whatever the warm standby last
applied, a ``MigrationDrill`` *moves* a serving tree to a new "host"
with the machinery of ``repro.checkpoint`` (CRIU-style iterative
pre-copy over the same image/delta format):

1. **seed** — cut a full image of the primary and restore it into the
   migration target, parked at the quiescence barrier;
2. **pre-copy** — while the primary keeps serving, repeatedly cut
   ``capture_delta`` rounds and stream them over the ``StandbyChannel``;
   the convergence policy stops when a round ships fewer than
   ``convergence_bytes`` bytes (the dirty rate has converged) or after
   ``max_precopy_rounds``;
3. **stop-and-copy** — drain in-flight requests, park the primary under
   real quiescence (``hold_quiesced``), cut the final delta with the
   tree frozen, stream + apply it, and fingerprint-verify the target by
   promoting it (``WarmStandby.promote``);
4. **cutover** — flip the load balancer to the target and retire the
   primary; any request still pending is re-issued against the target.

The client-perceived cost is the **brownout**: the longest gap in
completed responses spanning the cutover instant — the planned-update
analogue of the crash drill's RTO, measured the same way so ``bench
migrate`` can put them side by side.

Fault semantics mirror the failover drill's convergence contract.  A
``migrate.precopy`` fault (or a stream fault mid-round) costs one round
— a stale target is re-seeded from a fresh full image and the migration
still completes.  A ``migrate.stopcopy`` or ``migrate.cutover`` fault
(or a failed promotion) aborts the migration: the barrier is released,
the half-built target is torn down, and the primary resumes serving
exactly where it stopped.  ``run`` never raises; every drill ends with
**migrated XOR primary-kept-serving**, never both dead.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro import obs
from repro.checkpoint import (
    DeltaBaseline,
    StandbyChannel,
    WarmStandby,
    capture_delta,
    capture_delta_locked,
    checkpoint_node,
    hold_quiesced,
)
from repro.errors import SimError
from repro.fleet.lb import LoadBalancer
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import fire
from repro.servers.common import ClientLatencyLog, ClientPerceived

PRIMARY_ID = 0
TARGET_ID = 1

# Default convergence policy: stop pre-copying once a round ships less
# than one page of dirty state, or after this many rounds regardless.
DEFAULT_CONVERGENCE_BYTES = 4096
DEFAULT_MAX_PRECOPY_ROUNDS = 6

# Requests bracketing the cutover instant on each side, so the measured
# brownout is the client-visible cost of the cutover itself rather than
# whatever idle time the request windows happen to leave around it.
CUTOVER_PROBES = 2

# Virtual time the drill lets the tree settle after a drain before
# cutting a full image or the final delta: a worker that has not yet
# processed a client's EOF still holds the accepted-connection fd, and
# boot-and-graft validation (rightly) refuses an image with connection
# fds a fresh boot cannot have.
SETTLE_NS = 2_000_000


class MigrationAbort(SimError):
    """Internal control flow: abandon the cutover, keep the primary."""


class MigrationResult:
    """Everything one migration drill measured, JSON-ready via ``to_dict``."""

    def __init__(self, server: str) -> None:
        self.server = server
        self.migrated = False
        self.aborted = False
        self.abort_reason: Optional[str] = None
        self.primary_survived = False
        self.served_after = False
        self.requests_sent = 0
        self.requests_completed = 0
        self.requests_lost = 0
        self.reissued = 0
        self.image_bytes = 0
        self.reseeds = 0            # full-image resyncs after drift/staleness
        self.precopy_rounds = 0
        self.precopy_failures = 0
        self.precopy_bytes: List[int] = []
        self.converged_precopy = False
        self.stopcopy_bytes: Optional[int] = None
        self.cutover_started_ns: Optional[int] = None
        self.brownout_ns: Optional[int] = None
        self.fired_sites: List[str] = []
        self.perceived: Optional[Dict[str, Any]] = None
        self.blackbox: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "server": self.server,
            "migrated": self.migrated,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "primary_survived": self.primary_survived,
            "served_after": self.served_after,
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_lost": self.requests_lost,
            "reissued": self.reissued,
            "image_kb": self.image_bytes // 1024,
            "reseeds": self.reseeds,
            "precopy_rounds": self.precopy_rounds,
            "precopy_failures": self.precopy_failures,
            "precopy_bytes": list(self.precopy_bytes),
            "precopy_kb_total": sum(self.precopy_bytes) // 1024,
            "converged_precopy": self.converged_precopy,
            "stopcopy_bytes": self.stopcopy_bytes,
            "brownout_ms": (
                None if self.brownout_ns is None else self.brownout_ns / 1e6
            ),
            "fired_sites": list(self.fired_sites),
            "perceived": self.perceived,
            "blackbox": self.blackbox,
            "error": self.error,
        }


class MigrationDrill:
    """One primary migrated to a fresh target while it keeps serving."""

    def __init__(
        self,
        server: str = "simple",
        config: Optional[MCRConfig] = None,
        windows: int = 12,
        window_ns: int = 20_000_000,
        requests_per_window: int = 6,
        precopy_interval_ns: Optional[int] = None,
        convergence_bytes: int = DEFAULT_CONVERGENCE_BYTES,
        max_precopy_rounds: int = DEFAULT_MAX_PRECOPY_ROUNDS,
    ) -> None:
        self.server = server
        self.config = config or MCRConfig()
        self.windows = windows
        self.window_ns = window_ns
        self.requests_per_window = requests_per_window
        # Pre-copy cadence: how much serving time elapses between delta
        # rounds (defaults to the checkpoint cadence knob, the same one
        # the failover bench sweeps).
        self.precopy_interval_ns = (
            precopy_interval_ns
            if precopy_interval_ns is not None
            else self.config.checkpoint_interval_ns
        )
        self.convergence_bytes = convergence_bytes
        self.max_precopy_rounds = max(1, max_precopy_rounds)
        # Drill state.
        self.primary: Optional[Node] = None
        self.target: Optional[WarmStandby] = None
        self.channel = StandbyChannel()
        self.baseline: Optional[DeltaBaseline] = None
        self.ready_to_cut = False

    # -- seeding / re-seeding --------------------------------------------------

    def _fired(self, result: MigrationResult, error: Exception) -> None:
        site = getattr(error, "fault_site", None)
        result.fired_sites.append(site or type(error).__name__)

    def _seed(self, result: MigrationResult) -> bool:
        """Cut a full image and (re)build the parked target from it."""
        try:
            image = checkpoint_node(self.primary, self.config)
        except Exception as error:
            self._fired(result, error)
            return False
        result.image_bytes = max(result.image_bytes, image.total_bytes())
        self.baseline = DeltaBaseline(image)
        try:
            if self.target is None:
                self.target = WarmStandby.from_image(
                    image, node_id=TARGET_ID, config=self.config
                )
            else:
                self.target.resync(image)
                result.reseeds += 1
        except Exception as error:
            self._fired(result, error)
            return False
        return True

    # -- pre-copy --------------------------------------------------------------

    def _precopy_round(self, result: MigrationResult) -> None:
        """One delta round; failures cost the round, never the primary."""
        if self.target is None or self.baseline is None:
            if not self._seed(result):
                result.precopy_failures += 1
            return
        try:
            fire(self.config, "migrate.precopy")
            delta = capture_delta(self.primary, self.baseline, self.config)
        except Exception as error:
            result.precopy_failures += 1
            self._fired(result, error)
            return
        if delta is None:
            # Structural drift: only a fresh full image can resync.
            self._seed(result)
            return
        result.precopy_rounds += 1
        result.precopy_bytes.append(delta.total_bytes())
        try:
            self.channel.send(delta, self.config)
        except Exception as error:
            result.precopy_failures += 1
            self._fired(result, error)
            # The delta is gone but the baseline already advanced past
            # it: every later delta would arrive at the target with a
            # sequence gap.  Unlike the failover drill (which lets the
            # standby go stale and reports the lag), a planned migration
            # has time to repair in place — reseed from a full image.
            self._seed(result)
            return
        for blob in self.channel.drain():
            self.target.apply(blob)
        if self.target.stale:
            # A dropped or damaged delta bounded the target's freshness;
            # a planned migration has time to repair it in place.
            self._seed(result)
            return
        if delta.total_bytes() <= self.convergence_bytes:
            result.converged_precopy = True
            self.ready_to_cut = True
        elif result.precopy_rounds >= self.max_precopy_rounds:
            self.ready_to_cut = True

    # -- stop-and-copy + cutover -----------------------------------------------

    def _cutover(self, result: MigrationResult, lb: LoadBalancer) -> Optional[Node]:
        """Freeze, ship the last delta, promote the target; None on abort."""
        primary = self.primary
        primary.serve(CUTOVER_PROBES)
        primary.drain()  # finish in-flight + probe work before the barrier
        primary.settle(SETTLE_NS)  # workers release served-connection fds
        result.cutover_started_ns = primary.now_ns
        try:
            with hold_quiesced(primary, self.config):
                fire(self.config, "migrate.stopcopy")
                delta = capture_delta_locked(primary, self.baseline, self.config)
                if delta is None:
                    raise MigrationAbort("structural drift at stop-and-copy")
                result.stopcopy_bytes = delta.total_bytes()
                # The copy happens with the source frozen, so its stream
                # time is part of the brownout the clients experience.
                primary.kernel.clock.advance(
                    self.channel.send(delta, self.config)
                )
                for blob in self.channel.drain():
                    self.target.apply(blob)
                if self.target.stale:
                    raise MigrationAbort(
                        f"target stale at stop-and-copy "
                        f"(applied_seq={self.target.applied_seq})"
                    )
                _sync_clock(self.target.node, primary.now_ns)
                fire(self.config, "migrate.cutover")
                serving = self.target.promote()
        except Exception as error:
            # Abort: the barrier is already released (hold_quiesced's
            # finally), the primary resumes serving, the target retires.
            self._fired(result, error)
            result.aborted = True
            result.abort_reason = repr(error)
            self._dump_blackbox(result, error)
            self._retire_target()
            obs.emit("migrate.aborted", severity="warn", reason=repr(error))
            return None
        result.migrated = True
        lb.mark_updating(PRIMARY_ID)
        lb.mark_healthy(TARGET_ID)
        pending = primary.pending()
        result.reissued = pending
        serving.serve(pending + CUTOVER_PROBES)
        serving.drain()
        obs.emit(
            "migrate.cutover_done",
            rounds=result.precopy_rounds,
            stopcopy_bytes=result.stopcopy_bytes,
        )
        return serving

    def _dump_blackbox(self, result: MigrationResult, error: Exception) -> None:
        """Stamp the flight recorder with the aborted cutover's story."""
        collector = self.primary.collector
        result.blackbox = collector.recorder.dump(
            "migrate.aborted",
            failure_site=getattr(error, "fault_site", None)
            or type(error).__name__,
            precopy_rounds=result.precopy_rounds,
            precopy_failures=result.precopy_failures,
            reseeds=result.reseeds,
            stopcopy_bytes=result.stopcopy_bytes,
            target_applied_seq=(
                self.target.applied_seq if self.target is not None else None
            ),
        )
        path = getattr(self.config, "blackbox_path", None)
        if path:
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(result.blackbox, handle, indent=2, sort_keys=True)
            except OSError:  # the dump must never make an abort worse
                pass

    def _retire_target(self) -> None:
        if self.target is not None:
            try:
                self.target.node.teardown()
            except Exception:  # best effort; the primary must keep serving
                pass
            self.target = None
            self.baseline = None

    # -- the drill -------------------------------------------------------------

    def run(self) -> MigrationResult:
        result = MigrationResult(self.server)
        try:
            self._run(result)
        except Exception as error:  # pragma: no cover - the never-raise backstop
            result.error = f"drill error: {error!r}"
        return result

    def _run(self, result: MigrationResult) -> None:
        self.primary = Node.boot(
            self.server, node_id=PRIMARY_ID, config=self.config
        )
        lb = LoadBalancer([PRIMARY_ID, TARGET_ID])
        lb.mark_updating(TARGET_ID)  # the target warms out of rotation
        # Warm up, then seed the target from a full image (after the
        # post-drain settle so served-connection fds are released).
        self.primary.serve(self.requests_per_window)
        self.primary.drain()
        self.primary.settle(SETTLE_NS)
        self._seed(result)
        serving = self.primary
        start_ns = serving.now_ns
        last_round_ns = start_ns
        migration_done = self.target is None  # a failed seed = no migration
        if migration_done:
            result.aborted = True
            result.abort_reason = result.abort_reason or "seeding failed"
        for window in range(self.windows):
            deadline = start_ns + (window + 1) * self.window_ns
            serving.serve(self.requests_per_window)
            serving.advance_to(deadline)
            if migration_done:
                continue
            _sync_clock(self.target.node, deadline)
            # Force the cutover while windows remain, so the migrated
            # tree still has traffic to prove itself against.
            if window >= self.windows - 3:
                self.ready_to_cut = True
            if not self.ready_to_cut and deadline - last_round_ns >= self.precopy_interval_ns:
                self._precopy_round(result)
                last_round_ns = deadline
            if self.ready_to_cut:
                migrated = self._cutover(result, lb)
                migration_done = True
                if migrated is not None:
                    serving = migrated
        if serving is not None:
            serving.drain()
            result.served_after = bool(serving.served_version() or serving.completed)
            result.primary_survived = serving is self.primary
            self._measure(result, serving, start_ns)
        self._teardown(serving)

    def _measure(
        self, result: MigrationResult, serving: Node, start_ns: int
    ) -> None:
        nodes = [self.primary]
        if serving is not self.primary:
            nodes.append(serving)
        result.requests_sent = sum(n.requests_sent for n in nodes) - result.reissued
        result.requests_completed = sum(n.completed for n in nodes)
        result.requests_lost = sum(n.lost for n in nodes)
        if result.migrated:
            # Anything left queued on the retired primary is gone.
            result.requests_lost += self.primary.pending()
        merged = ClientLatencyLog()
        for node in nodes:
            merged.samples.extend(node.latency.samples)
        merged.samples.sort()
        end_ns = serving.now_ns
        result.perceived = ClientPerceived.measure(
            merged,
            self.config.downtime_budget_ns,
            window=(start_ns, end_ns),
        ).to_dict()
        if result.migrated and result.cutover_started_ns is not None:
            # The brownout: the longest completed-response gap spanning
            # the cutover — directly comparable to the crash drill's RTO.
            cut = result.cutover_started_ns
            completions = sorted(recv for _send, recv in merged.samples)
            before = [r for r in completions if r <= cut]
            after = [r for r in completions if r > cut]
            if before and after:
                result.brownout_ns = after[0] - before[-1]

    def _teardown(self, serving: Optional[Node]) -> None:
        for node in (
            self.primary,
            self.target.node if self.target is not None else None,
            serving,
        ):
            if node is not None:
                try:
                    node.teardown()
                except Exception:  # a retired kernel may refuse; best effort
                    pass


def _sync_clock(node: Node, to_ns: int) -> None:
    """Lockstep a quiesced node's clock with the drill deadline."""
    delta = to_ns - node.now_ns
    if delta > 0:
        node.kernel.clock.advance(delta)


def run_migration_drill(
    server: str = "simple",
    config: Optional[MCRConfig] = None,
    **kwargs: Any,
) -> MigrationResult:
    """Convenience wrapper: build a drill, run it, return the result."""
    return MigrationDrill(server, config=config, **kwargs).run()
