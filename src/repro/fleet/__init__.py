"""Fleet-scale live update: stampable nodes, a simulated load balancer,
and an SLO-gated canary → wave rollout orchestrator.

One Python process hosts the whole fleet: each :class:`Node` owns an
independent kernel, virtual clock, server tree, MCR session, and obs
collector, and :class:`Fleet` multiplexes them in lockstep virtual time.
:class:`Orchestrator` then drives live updates across the fleet the way
production rollouts do — canary one node, judge it by client-perceived
downtime against the budget, widen in waves, and revert or converge on
mid-wave faults so the fleet never ends mixed-version.
"""

from repro.fleet.fleet import Fleet
from repro.fleet.lb import LoadBalancer
from repro.fleet.node import Node
from repro.fleet.orchestrator import (
    NodeOutcome,
    Orchestrator,
    RolloutReport,
    wave_plan,
)

__all__ = [
    "Fleet",
    "LoadBalancer",
    "Node",
    "NodeOutcome",
    "Orchestrator",
    "RolloutReport",
    "wave_plan",
]
