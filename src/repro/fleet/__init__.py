"""Fleet-scale live update: stampable nodes, a simulated load balancer,
and an SLO-gated canary → wave rollout orchestrator.

One Python process hosts the whole fleet: each :class:`Node` owns an
independent kernel, virtual clock, server tree, MCR session, and obs
collector, and :class:`Fleet` multiplexes them in lockstep virtual time.
:class:`Orchestrator` then drives live updates across the fleet the way
production rollouts do — canary one node, judge it by client-perceived
downtime against the budget, widen in waves, and revert or converge on
mid-wave faults so the fleet never ends mixed-version.
"""

from repro.fleet.fleet import Fleet
from repro.fleet.lb import LoadBalancer
from repro.fleet.node import Node
from repro.fleet.orchestrator import (
    NodeOutcome,
    Orchestrator,
    RolloutReport,
    wave_plan,
)

# The failover/migration drivers sit atop repro.checkpoint, which
# itself boots fleet Nodes — import them lazily so ``import
# repro.checkpoint`` does not re-enter this package mid-initialisation.
_FAILOVER_EXPORTS = ("FailoverDrill", "FailoverResult", "run_failover_drill")
_MIGRATION_EXPORTS = (
    "MigrationAbort",
    "MigrationDrill",
    "MigrationResult",
    "run_migration_drill",
)


def __getattr__(name: str):
    if name in _FAILOVER_EXPORTS:
        from repro.fleet import failover

        return getattr(failover, name)
    if name in _MIGRATION_EXPORTS:
        from repro.fleet import migration

        return getattr(migration, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FailoverDrill",
    "FailoverResult",
    "Fleet",
    "MigrationAbort",
    "MigrationDrill",
    "MigrationResult",
    "run_migration_drill",
    "LoadBalancer",
    "Node",
    "NodeOutcome",
    "Orchestrator",
    "RolloutReport",
    "wave_plan",
]
