"""The simulated fleet load balancer: routes request windows to nodes.

The balancer models what a real L4/L7 front end does during a rolling
update: each traffic window's requests are split across the nodes that
are *in rotation*, and a node entering its update blackout is taken out
of rotation so its share shifts onto the healthy remainder.  Requests
already in flight on the updating node are not touched — MCR holds the
connections through the update, so they complete after commit; only the
*new* stream moves.  That is exactly the CheckSync judgement criterion:
the process is briefly down, the clients never are.

Routing is deterministic (largest-remainder apportionment with a
rotating tie-break) so every fleet bench is bit-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


class LoadBalancer:
    """Deterministic request-window router over a fixed node set."""

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids: List[int] = list(node_ids)
        self._out: set = set()
        # Rotating offset so remainder requests spread across nodes over
        # successive windows instead of always landing on the lowest id.
        self._offset = 0
        self.windows_routed = 0
        self.requests_routed = 0
        self.requests_shifted = 0  # routed while >=1 node was out

    # -- rotation control ----------------------------------------------------

    def mark_updating(self, node_id: int) -> None:
        """Take a node out of rotation for its update blackout."""
        self._out.add(node_id)

    def mark_healthy(self, node_id: int) -> None:
        """Return a node to rotation (post-commit or post-rollback)."""
        self._out.discard(node_id)

    def in_rotation(self) -> List[int]:
        return [n for n in self.node_ids if n not in self._out]

    def out_of_rotation(self) -> List[int]:
        return [n for n in self.node_ids if n in self._out]

    # -- routing -------------------------------------------------------------

    def route(self, requests: int) -> Dict[int, int]:
        """Split one window's ``requests`` across in-rotation nodes.

        Whole-number largest-remainder split: every in-rotation node gets
        ``requests // n``, and the remainder goes to successive nodes
        starting at a rotating offset.  With every node out of rotation
        (a full-fleet blackout) the window is routed nowhere and the
        caller sees an empty map — those requests are *shed*, which the
        orchestrator counts as lost.
        """
        live = self.in_rotation()
        self.windows_routed += 1
        if not live or requests <= 0:
            return {}
        base, remainder = divmod(requests, len(live))
        counts = {node_id: base for node_id in live}
        for index in range(remainder):
            counts[live[(self._offset + index) % len(live)]] += 1
        self._offset = (self._offset + remainder) % max(1, len(live))
        self.requests_routed += requests
        if self._out:
            self.requests_shifted += requests
        return {node_id: count for node_id, count in counts.items() if count}
