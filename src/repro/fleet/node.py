"""One stampable simulated host: kernel + server tree + workload + collector.

A ``Node`` is the unit the fleet plane multiplexes: everything a live
update touches — the kernel (with its own virtual clock), the server
tree, the MCR session, the client latency log, and the observability
collector — is owned by the node instance.  Nothing node-scoped lives in
module globals, so any number of nodes coexist in one Python process and
an update on one leaves every other node's tree byte-identical (the
``TreeFingerprint`` regression in ``tests/test_fleet.py`` pins this).

Construction is cheap (~2 ms for the ``simple`` server after module
import, well under the 50 ms budget), so a 16+-node fleet stamps out in
well under a second.  All node activity — serving request windows,
running updates — happens under ``obs.scoped(node.collector)``, which is
what keeps concurrent kernels from cross-publishing spans, counters, or
flight-recorder samples.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, sim_function
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.controller import UpdateResult
from repro.mcr.faults import TreeFingerprint
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import Program, load_program
from repro.servers.common import ClientLatencyLog, connect_with_retry

# Per-server request line + expected reply prefix for the fleet's
# one-shot clients.  Every simulated server speaks a line protocol, so
# one client shape covers them all; the expectation keeps the probe
# non-vacuous (an "ERROR unknown" reply never counts as served).
REQUEST_SCRIPTS: Dict[str, Tuple[str, str]] = {
    "simple": ("sum", "sum"),
    "memcache": ("NSTATS", "STATS"),
    "httpd": ("GET /file1k.bin", ""),
    "nginx": ("GET /file1k.bin", ""),
}

# A client whose response stalls longer than this abandons the
# connection and retries over a fresh connect (real load balancers and
# AB behave this way); it is what lets request streams ride out a
# per-node blackout without losing requests.
DEFAULT_STALL_NS = 5_000_000


class Node:
    """Kernel + server tree + workload + collector, cheap to stamp out."""

    def __init__(
        self,
        node_id: int,
        server: str,
        kernel: Kernel,
        module,
        program: Program,
        session: MCRSession,
        collector: obs.Collector,
        port: int,
        stall_ns: int = DEFAULT_STALL_NS,
    ) -> None:
        self.node_id = node_id
        self.server = server
        self.kernel = kernel
        self.module = module
        self.program = program
        self.session = session
        self.collector = collector
        self.port = port
        self.stall_ns = stall_ns
        self.ctl = McrCtl(kernel, session)
        self.version = int(program.version)
        # Client-perceived bookkeeping, fleet-visible.
        self.latency = ClientLatencyLog()
        self.requests_sent = 0
        self.completed = 0
        self.lost = 0
        self.reconnects = 0
        self._clients: List[Process] = []
        self.updates: List[UpdateResult] = []
        self.torn_down = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def boot(
        cls,
        server: str,
        node_id: int = 0,
        version: int = 1,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
        stall_ns: int = DEFAULT_STALL_NS,
        max_steps: int = 400_000,
    ) -> "Node":
        """Stamp out one node running ``server`` at ``version``.

        The whole boot — world setup, program load, startup — runs under
        the node's own fresh collector, so even startup spans and
        counters land in node-local state.
        """
        module = importlib.import_module(f"repro.servers.{server}")
        kernel = Kernel()
        collector = obs.Collector(kernel.clock)
        with obs.scoped(collector):
            module.setup_world(kernel)
            program = module.make_program(version)
            session = MCRSession(kernel, program, build or BuildConfig.full(), config)
            load_program(
                kernel, program, build=build or BuildConfig.full(), session=session
            )
            kernel.run(until=lambda: session.startup_complete, max_steps=max_steps)
        if not session.startup_complete:
            raise SimError(f"node {node_id} ({server}): startup did not complete")
        port = program.metadata.get("port")
        return cls(
            node_id, server, kernel, module, program, session, collector, port,
            stall_ns=stall_ns,
        )

    # -- scheduling -----------------------------------------------------------

    def scope(self):
        """The obs activation every slice of node activity runs under."""
        return obs.scoped(self.collector)

    @property
    def now_ns(self) -> int:
        return self.kernel.clock.now_ns

    def run_for(self, duration_ns: int, max_steps: Optional[int] = None) -> str:
        """Advance this node by exactly ``duration_ns`` of virtual time."""
        with self.scope():
            return self.kernel.run_for(duration_ns, max_steps=max_steps)

    def run_until_idle(self, max_steps: Optional[int] = None) -> str:
        with self.scope():
            return self.kernel.run_until_idle(max_steps=max_steps)

    def advance_to(self, deadline_ns: int, max_steps: Optional[int] = None) -> None:
        """Run until the node's clock reaches the fleet-wide deadline."""
        delta = deadline_ns - self.now_ns
        if delta > 0:
            self.run_for(delta, max_steps=max_steps)

    def settle(self, duration_ns: int, max_steps: int = 200_000) -> None:
        """Run ~``duration_ns`` of cleanup without a far-future clock jump.

        ``run_for`` can overshoot its deadline when the only remaining
        event is a periodic timer tens of ms away — the scheduler jumps
        the clock straight to it.  A sleeper process pins the deadline
        horizon to ``duration_ns``, so post-drain housekeeping (EOF
        processing, served-connection fd release) runs while the clock
        moves only that far.  Checkpoint capture uses this: an image cut
        before the fd release holds connection fds a fresh boot cannot
        reproduce, which restore validation rejects.
        """
        with self.scope():
            sleeper = self.kernel.spawn_process(
                _settle_sleeper,
                args=(duration_ns,),
                name=f"settle-{self.node_id}",
            )
            self.kernel.run(until=lambda: sleeper.exited, max_steps=max_steps)

    # -- the request stream ---------------------------------------------------

    def serve(self, requests: int) -> None:
        """Queue ``requests`` one-shot clients into this node's kernel.

        The clients run when the node next advances; each records its
        virtual-time latency into ``self.latency`` on completion.  A
        request is *lost* only when its retry budget is exhausted — a
        stall during a live update reconnects and retries instead, so a
        healthy update loses nothing.
        """
        line, expect = REQUEST_SCRIPTS.get(self.server, ("GET /", ""))
        for _ in range(requests):
            self.requests_sent += 1
            self._clients.append(
                self.kernel.spawn_process(
                    _oneshot_request,
                    args=(self, line, expect),
                    name=f"fleet-client-{self.node_id}-{self.requests_sent}",
                )
            )

    def pending(self) -> int:
        """Queued/in-flight requests not yet completed or lost."""
        self._clients = [c for c in self._clients if not c.exited]
        return len(self._clients)

    def drain(self, max_steps: int = 2_000_000) -> None:
        """Run until every issued request has completed or been lost."""
        with self.scope():
            self.kernel.run(
                until=lambda: all(c.exited for c in self._clients),
                max_steps=max_steps,
            )
        self._clients = [c for c in self._clients if not c.exited]

    # -- updates --------------------------------------------------------------

    def update(
        self,
        program: Optional[Program] = None,
        to_version: Optional[int] = None,
        config: Optional[MCRConfig] = None,
    ) -> UpdateResult:
        """Run one live update of this node (mid-flight requests ride along).

        The controller records into this node's collector — never into
        whatever other node's scope happens to be ambient.
        """
        if program is None:
            program = self.module.make_program(to_version or self.version + 1)
        with self.scope():
            result = self.ctl.live_update(
                program, config=config, collector=self.collector
            )
        if result.committed:
            self.session = self.ctl.session
            self.program = program
            self.version = int(program.version)
        self.updates.append(result)
        return result

    # -- state inspection -----------------------------------------------------

    @property
    def root(self) -> Process:
        return self.session.root_process

    def fingerprint(self) -> TreeFingerprint:
        """Byte-level capture of this node's entire server tree."""
        return TreeFingerprint.capture(self.kernel, self.root)

    def served_version(self, max_steps: int = 200_000) -> Optional[int]:
        """Ask the *server* which version is live (protocol-level probe)."""
        probe = _VersionProbe(self)
        with self.scope():
            probe.run(max_steps=max_steps)
        return probe.version

    def teardown(self) -> None:
        """Kill the tree and release every port — node-local only."""
        if self.torn_down:
            return
        self.torn_down = True
        with self.scope():
            for process in self.kernel.live_processes():
                self.kernel.terminate_process(process)


@sim_function
def _settle_sleeper(sys, duration_ns: int):
    yield from sys.nanosleep(duration_ns)


@sim_function
def _oneshot_request(sys, node: Node, line: str, expect: str):
    """One fleet request: connect, send one line, await one reply.

    Retry posture mirrors real client libraries: a response stalled
    longer than ``node.stall_ns`` abandons the connection and retries
    over a fresh connect, which lands on whichever worker is live.
    """
    clock = sys.kernel.clock
    start = clock.now_ns
    try:
        fd = yield from connect_with_retry(sys, node.port)
    except SimError:
        node.lost += 1
        return
    attempts = 0
    while True:
        try:
            yield from sys.send(fd, (line + "\n").encode())
            reply = yield from sys.recv(fd, timeout_ns=node.stall_ns)
        except SimError:
            reply = None
        if (
            isinstance(reply, (bytes, bytearray))
            and reply
            and reply.decode(errors="replace").startswith(expect)
        ):
            node.completed += 1
            node.latency.record(start, clock.now_ns)
            break
        attempts += 1
        if attempts > 100:
            node.lost += 1
            break
        node.reconnects += 1
        yield from sys.close(fd)
        try:
            fd = yield from connect_with_retry(sys, node.port)
        except SimError:
            node.lost += 1
            return
    yield from sys.close(fd)


class _VersionProbe:
    """Protocol-level 'which version answers here' probe.

    Reads the version the serving tree itself reports (``version`` for
    the simple server, ``NSTATS``'s trailing ``vN`` for memcache), so
    fleet end-state checks are grounded in observed behaviour, not
    orchestrator bookkeeping.
    """

    _SCRIPTS = {
        "simple": ("version", "version "),
        "memcache": ("NSTATS", " v"),
    }

    def __init__(self, node: Node) -> None:
        self.node = node
        self.version: Optional[int] = None

    def run(self, max_steps: int = 200_000) -> None:
        script = self._SCRIPTS.get(self.node.server)
        if script is None:
            return
        line, marker = script
        probe = self

        @sim_function
        def version_client(sys):
            try:
                fd = yield from connect_with_retry(sys, probe.node.port)
            except SimError:
                return
            yield from sys.send(fd, (line + "\n").encode())
            reply = yield from sys.recv(fd)
            if isinstance(reply, (bytes, bytearray)) and reply:
                text = reply.decode(errors="replace").strip()
                if marker in text:
                    tail = text.rsplit(marker, 1)[1].split()[0]
                    try:
                        probe.version = int(tail)
                    except ValueError:
                        probe.version = None
            yield from sys.close(fd)

        kernel = self.node.kernel
        process = kernel.spawn_process(version_client, name="version-probe")
        kernel.run(until=lambda: process.exited, max_steps=max_steps)
