"""Per-process file-descriptor tables.

Implements the behaviours mutable reinitialization leans on (paper §5):

* POSIX lowest-free-number allocation — the source of the clash/reuse
  problems the paper describes for naive fd inheritance.
* A **reserved range** at the top of the fd space: during replay in the
  new version, fds inherited from the old version are installed at their
  original numbers, and *newly created* fds that must stay separable are
  allocated from the reserved range so their numbers can never collide
  with or be reused as ordinary descriptors (global separability).
* ``block_reuse`` — numbers that may never be re-handed-out after close
  (separability of startup-time descriptors).
* fork-time duplication sharing the underlying open descriptions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import BadFileDescriptor

RESERVED_BASE = 900   # bottom of the reserved (non-reusable) fd range
FD_MAX = 1024         # top of the reserved range
STASH_BASE = 4096     # inheritance stash: above the reserved range, so
STASH_MAX = 65536     # stash numbers can never collide with recorded
                      # startup fd numbers (RESERVED_BASE..FD_MAX) and the
                      # range is wide enough for 1000-worker trees, whose
                      # global inheritance stashes a few fds per worker


class FDTable:
    """fd number -> kernel object (socket, open file, ...)."""

    def __init__(self) -> None:
        self._entries: Dict[int, Any] = {}
        self._blocked_numbers: set = set()
        self._next_reserved = RESERVED_BASE
        self._next_stash = STASH_BASE

    # -- allocation ---------------------------------------------------------

    def install(self, obj: Any, fd: Optional[int] = None) -> int:
        """Install ``obj``; POSIX lowest-free allocation unless ``fd`` given."""
        if fd is None:
            fd = self._lowest_free()
        elif fd in self._entries:
            raise BadFileDescriptor(fd)
        self._entries[fd] = obj
        return fd

    def install_reserved(self, obj: Any) -> int:
        """Install in the reserved range; the number is never reused."""
        fd = self._next_reserved
        while fd in self._entries or fd in self._blocked_numbers:
            fd += 1
        if fd >= FD_MAX:
            raise BadFileDescriptor(fd)
        self._next_reserved = fd + 1
        self._entries[fd] = obj
        self._blocked_numbers.add(fd)
        return fd

    def install_stash(self, obj: Any) -> int:
        """Install in the inheritance-stash range (never reused either)."""
        fd = self._next_stash
        while fd in self._entries or fd in self._blocked_numbers:
            fd += 1
        if fd >= STASH_MAX:
            raise BadFileDescriptor(fd)
        self._next_stash = fd + 1
        self._entries[fd] = obj
        self._blocked_numbers.add(fd)
        return fd

    def _lowest_free(self) -> int:
        fd = 0
        while fd in self._entries or fd in self._blocked_numbers:
            fd += 1
        if fd >= RESERVED_BASE:
            raise BadFileDescriptor(fd)
        return fd

    # -- lookup / release -----------------------------------------------------

    def get(self, fd: int) -> Any:
        try:
            return self._entries[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def try_get(self, fd: int) -> Optional[Any]:
        return self._entries.get(fd)

    def close(self, fd: int) -> Any:
        try:
            return self._entries.pop(fd)
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def dup(self, fd: int) -> int:
        obj = self.get(fd)
        return self.install(obj)

    def block_reuse(self, fd: int) -> None:
        """Forbid this number from ever being allocated again."""
        self._blocked_numbers.add(fd)

    # -- introspection ---------------------------------------------------------

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return iter(sorted(self._entries.items()))

    def fds(self) -> List[int]:
        return sorted(self._entries)

    def clone(self) -> "FDTable":
        """fork(): same numbers, shared underlying objects."""
        twin = FDTable()
        twin._entries = dict(self._entries)
        twin._blocked_numbers = set(self._blocked_numbers)
        twin._next_reserved = self._next_reserved
        twin._next_stash = self._next_stash
        for obj in twin._entries.values():
            acquire = getattr(obj, "acquire", None)
            if acquire is not None:
                acquire()
        return twin
