"""Processes and threads of the simulated machine.

A ``Thread`` owns a generator (its execution), an explicit call stack of
function names (maintained by the ``@sim_function`` decorator), and loop
bookkeeping for the quiescence profiler.  The explicit call stack is what
makes the paper's *call-stack IDs* — "computed by simply hashing all the
active function names on the call stack of the thread issuing the system
call" (§5) — a real, version-agnostic quantity in this reproduction.

A ``Process`` owns an address space, a ptmalloc heap, a tag store, and a
file-descriptor table; it records the call-stack ID of the ``fork`` that
created it, which mutable reinitialization and parallel state transfer use
to pair processes across versions.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.mem.address_space import AddressSpace
from repro.mem.ptmalloc import PtMallocHeap
from repro.mem.tags import TagStore
from repro.kernel.fdtable import FDTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel

RUNNABLE = "runnable"
BLOCKED = "blocked"
EXITED = "exited"


class WaitQueue:
    """Threads parked on one kernel object (a scheduler wait channel).

    The v2 scheduler polls a blocked thread's readiness predicate only
    when something could have changed it.  Every kernel object a thread
    can wait on (sockets, barriers, processes for ``wait_child``) owns a
    ``WaitQueue``; blocking registers the thread here and the object calls
    :meth:`kick` at each state change that could satisfy a waiter, which
    marks the registered threads *poll-hot* on their kernel.

    Entries are ``(thread, park_seq)`` pairs validated lazily: a woken or
    re-parked thread carries a newer ``park_seq``, so stale entries are
    dropped on the next kick (or pruned when the queue grows) instead of
    requiring explicit deregistration on every wake.
    """

    __slots__ = ("_entries", "_prune_at")

    def __init__(self) -> None:
        self._entries: List[Any] = []
        self._prune_at = 64

    def park(self, thread: "Thread") -> None:
        entries = self._entries
        if len(entries) >= self._prune_at:
            # Amortized-O(1) staleness sweep: prune, then defer the next
            # sweep until the queue doubles again.  A fixed threshold
            # would rescan a legitimately-large queue (1000 acceptors on
            # one listener) on every park — quadratic.
            entries[:] = [
                e for e in entries if e[0].state == BLOCKED and e[0].park_seq == e[1]
            ]
            self._prune_at = max(64, 2 * len(entries))
        entries.append((thread, thread.park_seq))

    def kick(self) -> None:
        """Wake candidates: mark every validly-parked thread poll-hot.

        A kicked thread is *not* woken here — the scheduler re-runs its
        readiness predicate on the next poll round (two waiters racing for
        one connection must still resolve to one winner).  Valid entries
        are kept registered for exactly that reason.
        """
        entries = self._entries
        if not entries:
            return
        keep = []
        for entry in entries:
            thread, seq = entry
            if thread.state == BLOCKED and thread.park_seq == seq:
                thread.process.kernel.mark_poll_hot(thread)
                keep.append(entry)
        self._entries = keep


def call_stack_id(names: List[str]) -> int:
    """Version-agnostic context hash of the active function names."""
    digest = hashlib.sha1("/".join(names).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def sim_function(fn: Callable[..., Generator]) -> Callable[..., Generator]:
    """Mark a generator function as a simulated program function.

    Pushes/pops the function name on the calling thread's explicit call
    stack around the ``yield from``, so syscalls issued inside see the
    correct context.  The first positional argument must be the thread's
    ``Sys`` API object (convention mirrored from C's implicit stack).
    """

    @functools.wraps(fn)
    def wrapper(sys_api, *args, **kwargs):
        thread = sys_api.thread
        thread.call_stack.append(fn.__name__)
        try:
            result = yield from fn(sys_api, *args, **kwargs)
        finally:
            thread.call_stack.pop()
        return result

    wrapper.__sim_function__ = True
    return wrapper


class Thread:
    """One schedulable execution context."""

    def __init__(
        self,
        tid: int,
        process: "Process",
        body: Generator,
        name: str = "main",
        creation_stack: Optional[List[str]] = None,
    ) -> None:
        self.tid = tid
        self.process = process
        self.body = body
        self.name = name
        self.state = RUNNABLE
        self.call_stack: List[str] = []
        self.creation_stack: List[str] = list(creation_stack or ["spawn"])
        self.creation_stack_id = call_stack_id(self.creation_stack)
        # Value (or exception) to deliver on next resume.
        self.pending_value: Any = None
        self.pending_exception: Optional[BaseException] = None
        # Blocking bookkeeping (set by the kernel).
        self.wait_ready: Optional[Callable[[], Any]] = None
        self.wait_deadline_ns: Optional[int] = None
        self.wake_hint_ns: Optional[int] = None
        self.block_started_ns: int = 0
        self.blocked_on: str = ""
        # v2 scheduler wait-channel bookkeeping: ``park_seq`` versions each
        # park (stale WaitQueue/deadline entries carry an older value),
        # ``poll_hot`` marks a kicked thread awaiting re-poll, and
        # ``always_polled`` flags waits with uninstrumented predicates
        # (select) that must be polled every round.
        self.park_seq = 0
        self.poll_hot = False
        self.always_polled = False
        self.wait_channels: tuple = ()
        # Quiescence/profiling bookkeeping.
        self.reached_qp = False  # arrived at its quiescent point at least once
        self.loop_stack: List[str] = []
        self.loop_counts: Dict[str, int] = {}
        self.blocking_time_ns: Dict[str, int] = {}
        self.at_barrier = False
        self.exit_value: Any = None
        # Wall of separation for MCR: which version/world this thread is in.
        self.started_ns = 0

    def stack_id(self) -> int:
        return call_stack_id(self.call_stack)

    def top_function(self) -> str:
        return self.call_stack[-1] if self.call_stack else "<entry>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.process.pid}:{self.tid} {self.name} "
            f"{self.state} at {self.top_function()}>"
        )


class Process:
    """A simulated process: memory image + threads + kernel objects."""

    def __init__(
        self,
        pid: int,
        kernel: "Kernel",
        name: str,
        parent: Optional["Process"] = None,
        space: Optional[AddressSpace] = None,
        heap: Optional[PtMallocHeap] = None,
        tags: Optional[TagStore] = None,
        fdtable: Optional[FDTable] = None,
        creation_stack: Optional[List[str]] = None,
    ) -> None:
        self.pid = pid
        self.kernel = kernel
        self.name = name
        self.parent = parent
        self.children: List["Process"] = []
        self.space = space if space is not None else AddressSpace()
        self.heap = heap if heap is not None else PtMallocHeap(self.space)
        self.tags = tags if tags is not None else TagStore()
        self.fdtable = fdtable if fdtable is not None else FDTable()
        self.threads: Dict[int, Thread] = {}
        self._next_tid = 1
        # Wait channel for ``wait_child`` callers: kicked when a child of
        # this process exits.
        self.waitq = WaitQueue()
        # Last kernel step that executed one of this process's threads;
        # the flight recorder uses it to recompute per-process gauges only
        # for processes that actually ran since the previous sample.
        self.gauge_stamp = 0
        self.exited = False
        self.exit_status = 0
        self.namespace: Any = None  # PidNamespace; set by the kernel
        self.global_id = 0
        self.creation_stack: List[str] = list(creation_stack or ["spawn"])
        self.creation_stack_id = call_stack_id(self.creation_stack)
        # Per-process MCR runtime (libmcr.so analogue); None when the
        # program runs uninstrumented.
        self.runtime: Any = None
        # Program handle (set by the loader) for symbol lookup.
        self.program: Any = None
        if parent is not None:
            parent.children.append(self)

    def add_thread(
        self,
        body: Generator,
        name: str = "main",
        creation_stack: Optional[List[str]] = None,
    ) -> Thread:
        thread = Thread(self._next_tid, self, body, name, creation_stack)
        self._next_tid += 1
        self.threads[thread.tid] = thread
        return thread

    def live_threads(self) -> List[Thread]:
        return [t for t in self.threads.values() if t.state != EXITED]

    def all_threads_blocked(self) -> bool:
        live = self.live_threads()
        return bool(live) and all(t.state == BLOCKED for t in live)

    def descendants(self) -> List["Process"]:
        """All live descendant processes, depth-first."""
        result: List["Process"] = []
        for child in self.children:
            if not child.exited:
                result.append(child)
            result.extend(child.descendants())
        return result

    def tree(self) -> List["Process"]:
        """This process plus all live descendants."""
        me = [] if self.exited else [self]
        return me + self.descendants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.pid} {self.name}{' exited' if self.exited else ''}>"
