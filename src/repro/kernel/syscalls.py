"""Syscall requests, the cost model, and per-syscall semantics.

A simulated thread performs a syscall by yielding a ``SyscallRequest``; the
kernel dispatches it here.  A handler returns either an immediate result or
a ``Blocked`` marker carrying a readiness predicate — the scheduler parks
the thread and polls the predicate (with an optional timeout deadline).

This module is *the* interception boundary of the reproduction: MCR's
dynamic instrumentation wraps requests before they reach the kernel
(recording, replay, unblockification), exactly as ``libmcr.so`` interposes
on libc in the paper.

The deterministic cost model (`BASE_COSTS`, nanoseconds of virtual time)
stands in for hardware timing; Table-3 style overhead ratios come from
instrumented builds charging extra work through the same clock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro import obs
from repro.errors import BadFileDescriptor, SimError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Thread


class _Timeout:
    """Sentinel returned by timed blocking calls that expired."""

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _Timeout()


class SyscallRequest:
    """What a simulated thread yields to enter the kernel."""

    __slots__ = ("name", "args", "timeout_ns")

    def __init__(self, name: str, args: Optional[Dict[str, Any]] = None, timeout_ns: Optional[int] = None) -> None:
        self.name = name
        self.args = args or {}
        self.timeout_ns = timeout_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<syscall {self.name}({self.args})>"


class Blocked:
    """Handler result: park the thread until ``ready`` returns (True, v).

    ``wake_ns`` is an absolute virtual-time hint: the predicate can only
    become true at/after that time (nanosleep), so the scheduler may jump
    the clock there when nothing else is runnable.

    ``channels`` names the kernel objects (each owning a
    ``process.WaitQueue``) whose state changes can make ``ready`` flip
    true; the scheduler parks the thread on them and re-polls only when
    one is kicked.  An empty tuple with no timeout and no ``wake_ns``
    means the predicate is uninstrumented (select): the scheduler then
    polls it every round, preserving the original semantics.
    """

    __slots__ = ("ready", "reason", "wake_ns", "channels")

    def __init__(
        self,
        ready: Callable[[], Any],
        reason: str,
        wake_ns: Optional[int] = None,
        channels: tuple = (),
    ) -> None:
        self.ready = ready  # returns (is_ready, value)
        self.reason = reason
        self.wake_ns = wake_ns
        self.channels = channels


class ExitProcess:
    """Handler result: terminate the calling process."""

    __slots__ = ("status",)

    def __init__(self, status: int) -> None:
        self.status = status


class ReplaceImage:
    """Handler result: exec() replaced the process image."""

    __slots__ = ()


# Virtual-time cost of each syscall, in nanoseconds.  Values are ballpark
# figures for a 2014-era Linux box; only *ratios* matter for the evaluation.
BASE_COSTS: Dict[str, int] = {
    "socket": 2_000,
    "bind": 1_500,
    "listen": 1_500,
    "accept": 3_000,
    "connect": 6_000,
    "send": 2_000,
    "recv": 2_000,
    "close": 1_000,
    "select": 1_500,
    "epoll_create": 2_000,
    "epoll_ctl": 1_200,
    "epoll_wait": 1_500,
    "socketpair": 3_000,
    "sendmsg": 2_500,
    "recvmsg": 2_500,
    "open": 4_000,
    "read": 2_500,
    "write": 2_500,
    "unlink": 2_000,
    "stat": 1_000,
    "fork": 150_000,
    "exec": 250_000,
    "exit": 1_000,
    "wait_child": 1_000,
    "thread_create": 30_000,
    "getpid": 200,
    "gettid": 200,
    "nanosleep": 700,
    "cpu": 0,
    "barrier_wait": 500,
    "mmap": 5_000,
    "munmap": 2_000,
    "sched_yield": 300,
}


class SyscallTable:
    """Dispatches requests to handlers; owned by the kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._handlers: Dict[str, Callable] = {
            name[len("sys_"):]: getattr(self, name)
            for name in dir(self)
            if name.startswith("sys_")
        }

    def dispatch(self, thread: "Thread", request: SyscallRequest) -> Any:
        handler = self._handlers.get(request.name)
        if handler is None:
            raise SimError(f"unknown syscall: {request.name}")
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("syscall." + request.name)
            collector.counters.incr("syscall.total")
        return handler(thread, **request.args)

    def cost_of(self, name: str) -> int:
        return BASE_COSTS.get(name, 1_000)

    def _install(self, thread: "Thread", obj: Any, reserved: bool) -> int:
        """Install a new descriptor.

        ``reserved`` is injected by the MCR runtime for *startup-time* fd
        creation: numbers come from the reserved (non-reusable) range at
        the end of the fd space, enforcing global separability (paper §5)
        — a startup descriptor number can never be reused, so replay can
        always tell which recorded operation an inherited number belongs
        to.
        """
        table = thread.process.fdtable
        if reserved:
            return table.install_reserved(obj)
        return table.install(obj)

    # -- network -------------------------------------------------------------

    def sys_socket(self, thread: "Thread", reserved: bool = False) -> int:
        sock = self.kernel.net.new_socket()
        return self._install(thread, sock, reserved)

    def sys_bind(self, thread: "Thread", fd: int, port: int) -> int:
        table = thread.process.fdtable
        sock = table.get(fd)
        if sock.kind != "socket":
            raise BadFileDescriptor(fd)
        listener = self.kernel.net.bind_listen(sock, port)
        # bind+listen collapsed into the bind object swap; listen() below
        # is then a no-op state check, which keeps fd identity stable.
        table.close(fd)
        table.install(listener, fd=fd)
        return 0

    def sys_listen(self, thread: "Thread", fd: int, backlog: int = 128) -> int:
        listener = thread.process.fdtable.get(fd)
        if listener.kind != "listener":
            raise BadFileDescriptor(fd)
        listener.backlog = backlog
        return 0

    def sys_accept(self, thread: "Thread", fd: int, reserved: bool = False) -> Any:
        listener = thread.process.fdtable.get(fd)
        if listener.kind != "listener":
            raise BadFileDescriptor(fd)

        def ready():
            if listener.can_accept():
                endpoint = listener.pop_connection()
                new_fd = self._install(thread, endpoint, reserved)
                return True, new_fd
            return False, None

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, f"accept:{listener.port}", channels=(listener,))

    def sys_connect(self, thread: "Thread", port: int, reserved: bool = False) -> int:
        endpoint = self.kernel.net.connect(port)
        return self._install(thread, endpoint, reserved)

    def sys_send(self, thread: "Thread", fd: int, data: bytes) -> int:
        endpoint = thread.process.fdtable.get(fd)
        if endpoint.kind != "stream":
            raise BadFileDescriptor(fd)
        return endpoint.send(bytes(data))

    def sys_recv(self, thread: "Thread", fd: int, size: int = 65536) -> Any:
        endpoint = thread.process.fdtable.get(fd)
        if endpoint.kind != "stream":
            raise BadFileDescriptor(fd)

        def ready():
            if endpoint.inbox:
                return True, endpoint.recv(size)
            if endpoint.peer_closed or endpoint.closed:
                return True, b""
            return False, None

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, f"recv:{endpoint.conn_id}", channels=(endpoint,))

    def sys_select(self, thread: "Thread", fds: List[int]) -> Any:
        table = thread.process.fdtable

        def ready():
            ready_fds = []
            for fd in fds:
                obj = table.try_get(fd)
                if obj is None:
                    continue
                if obj.kind == "listener" and obj.can_accept():
                    ready_fds.append(fd)
                elif obj.kind == "stream" and obj.readable():
                    ready_fds.append(fd)
                elif obj.kind == "unix" and obj.readable():
                    ready_fds.append(fd)
            if ready_fds:
                return True, ready_fds
            return False, None

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, "select")

    def sys_epoll_create(self, thread: "Thread", reserved: bool = False) -> int:
        epoll = self.kernel.net.new_epoll()
        return self._install(thread, epoll, reserved)

    def sys_epoll_ctl(self, thread: "Thread", epfd: int, op: str, fd: int) -> int:
        epoll = thread.process.fdtable.get(epfd)
        if epoll.kind != "epoll":
            raise BadFileDescriptor(epfd)
        if op == "add":
            epoll.add(fd, thread.process.fdtable.get(fd))
        elif op == "del":
            epoll.remove(fd)
        else:
            raise SimError(f"epoll_ctl: unknown op {op!r}")
        return 0

    def sys_epoll_wait(self, thread: "Thread", epfd: int) -> Any:
        epoll = thread.process.fdtable.get(epfd)
        if epoll.kind != "epoll":
            raise BadFileDescriptor(epfd)

        def ready():
            fds = epoll.ready_fds()
            if fds:
                return True, fds
            return False, None

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, "epoll_wait", channels=(epoll,))

    def sys_socketpair(self, thread: "Thread", reserved: bool = False) -> Any:
        a, b = self.kernel.net.socketpair()
        return (self._install(thread, a, reserved), self._install(thread, b, reserved))

    def sys_sendmsg(self, thread: "Thread", fd: int, data: bytes, pass_fds: Optional[List[int]] = None) -> int:
        endpoint = thread.process.fdtable.get(fd)
        if endpoint.kind != "unix":
            raise BadFileDescriptor(fd)
        objects = []
        for passed in pass_fds or []:
            objects.append(thread.process.fdtable.get(passed))
        endpoint.sendmsg(bytes(data), objects)
        return len(data)

    def sys_recvmsg(
        self,
        thread: "Thread",
        fd: int,
        install_at: Optional[List[int]] = None,
        install_reserved: bool = False,
    ) -> Any:
        """Receive (data, passed objects); install objects as fds.

        ``install_at`` optionally pins the received objects to specific fd
        numbers; ``install_reserved`` installs them in the reserved
        (non-reusable) range instead — the MCR global-inheritance path
        stashes inherited descriptors there until replay claims them.
        """
        endpoint = thread.process.fdtable.get(fd)
        if endpoint.kind != "unix":
            raise BadFileDescriptor(fd)

        def ready():
            if not endpoint.readable():
                return False, None
            data, objects = endpoint.recvmsg()
            new_fds = []
            for index, obj in enumerate(objects):
                acquire = getattr(obj, "acquire", None)
                if acquire is not None:
                    acquire()
                if install_reserved:
                    # Inheritance stash: its own fd region, disjoint from
                    # the reserved startup range, so stash numbers never
                    # collide with recorded startup fd numbers.
                    new_fds.append(thread.process.fdtable.install_stash(obj))
                    continue
                target = None
                if install_at is not None and index < len(install_at):
                    target = install_at[index]
                new_fds.append(thread.process.fdtable.install(obj, fd=target))
            return True, (data, new_fds)

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, "recvmsg", channels=(endpoint,))

    def sys_close(self, thread: "Thread", fd: int) -> int:
        obj = thread.process.fdtable.close(fd)
        release = getattr(obj, "release", None)
        if release is not None:
            release()
            if obj.refcount <= 0:
                if obj.kind == "stream":
                    obj.close()
                elif obj.kind == "listener":
                    self.kernel.net.release_port(obj)
                elif obj.kind == "unix":
                    # Drains undelivered fd-passing messages too.
                    obj.close()
        else:
            if obj.kind == "stream":
                obj.close()
            elif obj.kind == "listener":
                self.kernel.net.release_port(obj)
        return 0

    # -- filesystem ------------------------------------------------------------

    def sys_open(self, thread: "Thread", path: str, flags: str = "r", reserved: bool = False) -> int:
        open_file = self.kernel.fs.open(path, flags)
        return self._install(thread, open_file, reserved)

    def sys_read(self, thread: "Thread", fd: int, size: int = 65536) -> bytes:
        obj = thread.process.fdtable.get(fd)
        if obj.kind == "file":
            return obj.read(size)
        raise BadFileDescriptor(fd)

    def sys_write(self, thread: "Thread", fd: int, data: bytes) -> int:
        obj = thread.process.fdtable.get(fd)
        if obj.kind == "file":
            return obj.write(bytes(data))
        raise BadFileDescriptor(fd)

    def sys_unlink(self, thread: "Thread", path: str) -> int:
        self.kernel.fs.unlink(path)
        return 0

    def sys_stat(self, thread: "Thread", path: str) -> Any:
        size = self.kernel.fs.size(path)
        if size is None:
            return None
        return {"path": path, "size": size}

    # -- processes & threads -----------------------------------------------------

    def sys_fork(self, thread: "Thread", child_main: Callable, args: tuple = (), name: str = "") -> int:
        child = self.kernel.do_fork(thread, child_main, args, name)
        return child.pid

    def sys_exec(self, thread: "Thread", image_name: str, main: Callable, args: tuple = ()) -> Any:
        self.kernel.do_exec(thread, image_name, main, args)
        return ReplaceImage()

    def sys_exit(self, thread: "Thread", status: int = 0) -> ExitProcess:
        return ExitProcess(status)

    def sys_wait_child(self, thread: "Thread") -> Any:
        process = thread.process

        def ready():
            for child in process.children:
                if child.exited and not getattr(child, "_reaped", False):
                    child._reaped = True
                    return True, (child.pid, child.exit_status)
            return False, None

        is_ready, value = ready()
        if is_ready:
            return value
        return Blocked(ready, "wait_child", channels=(process,))

    def sys_thread_create(self, thread: "Thread", main: Callable, args: tuple = (), name: str = "thread") -> int:
        new_thread = self.kernel.do_thread_create(thread, main, args, name)
        return new_thread.tid

    def sys_getpid(self, thread: "Thread") -> int:
        return thread.process.pid

    def sys_gettid(self, thread: "Thread") -> int:
        return thread.tid

    # -- time & scheduling ----------------------------------------------------

    def sys_nanosleep(self, thread: "Thread", duration_ns: int) -> Any:
        deadline = self.kernel.clock.now_ns + duration_ns

        def ready():
            if self.kernel.clock.now_ns >= deadline:
                return True, None
            return False, None

        return Blocked(ready, "nanosleep", wake_ns=deadline)

    def sys_cpu(self, thread: "Thread", duration_ns: int) -> None:
        """Charge pure compute time to the virtual clock."""
        self.kernel.clock.advance(duration_ns)
        return None

    def sys_sched_yield(self, thread: "Thread") -> None:
        return None

    def sys_barrier_wait(self, thread: "Thread", barrier: Any) -> Any:
        thread.at_barrier = True
        barrier.arrived += 1

        def ready():
            if barrier.released:
                thread.at_barrier = False
                return True, None
            return False, None

        return Blocked(ready, "barrier", channels=(barrier,))

    # -- memory ------------------------------------------------------------------

    def sys_mmap(self, thread: "Thread", size: int, address: Optional[int] = None, fixed: bool = False, name: str = "anon") -> int:
        mapping = thread.process.space.map(size, address=address, name=name, fixed=fixed)
        return mapping.base

    def sys_munmap(self, thread: "Thread", address: int) -> int:
        thread.process.space.unmap(address)
        return 0
