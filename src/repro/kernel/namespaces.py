"""PID namespaces with forced-ID allocation.

Process and thread IDs are immutable state objects in MCR: servers stash
pids in global data structures, so the new version's worker processes must
receive *the same pids* as their old-version counterparts.  On Linux MCR
does this the CRIU way, via PID namespaces and ``ns_last_pid``; here the
namespace exposes ``force_next_pid`` with the same contract: the next fork
in the namespace returns the requested id, which must not be in use.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import SimError


class PidNamespace:
    """Allocates process ids; supports CRIU-style forced ids."""

    def __init__(self, first_pid: int = 100) -> None:
        self._next_pid = first_pid
        self._in_use: Set[int] = set()
        self._forced: Optional[int] = None

    def force_next_pid(self, pid: int) -> None:
        """The next allocation must return ``pid`` (ns_last_pid analogue)."""
        if pid in self._in_use:
            raise SimError(f"cannot force pid {pid}: already in use")
        self._forced = pid

    def allocate(self) -> int:
        if self._forced is not None:
            pid = self._forced
            self._forced = None
            self._in_use.add(pid)
            return pid
        while self._next_pid in self._in_use:
            self._next_pid += 1
        pid = self._next_pid
        self._next_pid += 1
        self._in_use.add(pid)
        return pid

    def release(self, pid: int) -> None:
        self._in_use.discard(pid)

    def in_use(self, pid: int) -> bool:
        return pid in self._in_use
