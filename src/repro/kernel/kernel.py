"""The simulated kernel: world state plus a cooperative scheduler.

Scheduling model: a round-robin run queue of threads.  Each step resumes a
thread's generator with the result of its previous syscall; the generator
yields its next ``SyscallRequest``; the syscall table executes it.  Blocking
syscalls park the thread with a readiness predicate plus the *wait
channels* (kernel objects) whose state changes can satisfy it; timed calls
carry a virtual-time deadline (this is what MCR's unblockification builds
on).  When nothing is runnable the clock jumps to the earliest deadline,
so blocking costs no host time.

The v2 scheduler polls a blocked thread's predicate only when (a) one of
its wait channels was kicked, (b) its deadline or wake hint came due (a
heap, not a scan), or (c) the wait carries no channels and no timing — an
uninstrumented predicate like ``select``, polled every round as before.
Idle workers therefore cost nothing per round, which is what makes
1000-worker process trees steppable.  Before declaring the world idle the
scheduler still polls *every* blocked thread once, so a readiness change
no channel announced degrades to the old behavior instead of hanging.

Virtual time advances by a per-step cost plus the dispatched syscall's cost
(see ``syscalls.BASE_COSTS``); soft-dirty write-protect faults taken by the
running process are charged as they occur.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.clock import VirtualClock
from repro.errors import SimError
from repro.kernel.files import SimFileSystem
from repro.kernel.namespaces import PidNamespace
from repro.kernel.process import BLOCKED, EXITED, Process, RUNNABLE, Thread, WaitQueue
from repro.kernel.sockets import NetworkStack
from repro.kernel.syscalls import (
    Blocked,
    ExitProcess,
    ReplaceImage,
    SyscallRequest,
    SyscallTable,
    TIMEOUT,
)


class KernelConfig:
    """Tunables for the world (cost model knobs)."""

    def __init__(
        self,
        step_cost_ns: int = 150,
        soft_dirty_fault_cost_ns: int = 2_500,
        max_steps_default: int = 5_000_000,
    ) -> None:
        self.step_cost_ns = step_cost_ns
        self.soft_dirty_fault_cost_ns = soft_dirty_fault_cost_ns
        self.max_steps_default = max_steps_default


class Barrier:
    """Quiescence-protocol rendezvous: threads park until released."""

    def __init__(self, expected: int = 0) -> None:
        self.expected = expected
        self.arrived = 0
        self.released = False
        self.waitq = WaitQueue()

    def release(self) -> None:
        self.released = True
        self.waitq.kick()


class Kernel:
    """World state: processes, network, filesystem, namespace, clock."""

    def __init__(self, config: Optional[KernelConfig] = None, clock: Optional[VirtualClock] = None) -> None:
        self.config = config or KernelConfig()
        self.clock = clock or VirtualClock()
        self.net = NetworkStack()
        self.fs = SimFileSystem()
        self.pidns = PidNamespace()  # the root (default) namespace
        self.syscalls = SyscallTable(self)
        # Keyed by a kernel-global id: pids are only unique per namespace
        # (MCR restarts the new version in its own namespace so old-version
        # pids can be mirrored).
        self.processes: Dict[int, Process] = {}
        self._next_global_id = 1
        self._run_queue: Deque[Thread] = deque()
        # All currently-blocked threads, in park order.  A dict (insertion
        # ordered, O(1) add/remove) rather than a list: at 1000-worker
        # scale the old list's O(n) remove-on-wake dominated.
        self._blocked: Dict[Thread, None] = {}
        # v2 scheduler poll sets: threads whose wait channel was kicked,
        # threads with uninstrumented predicates (polled every round), and
        # a heap of (when_ns, entry_seq, thread, park_seq) deadlines/wake
        # hints.  Heap and _polled entries are validated lazily against
        # the thread's park_seq.
        self._hot: List[Thread] = []
        self._polled: List[Tuple[Thread, int]] = []
        self._deadlines: List[Tuple[int, int, Thread, int]] = []
        self._park_counter = 0
        self._heap_counter = 0
        self._fault_charged: Dict[int, int] = {}
        self.steps_executed = 0
        # Deterministic record/replay: when a ``repro.replay.TraceLog``
        # is bound here (``trace.bind_kernel(kernel)``), every scheduler
        # pick folds into its rolling pick-order CRC.
        self.trace = None

    # -- process/thread lifecycle ---------------------------------------------

    def spawn_process(
        self,
        main: Callable,
        args: Tuple = (),
        name: str = "proc",
        parent: Optional[Process] = None,
        creation_stack: Optional[List[str]] = None,
        namespace: Optional[PidNamespace] = None,
    ) -> Process:
        """Create a fresh process running ``main(sys, *args)``."""
        ns = namespace or self.pidns
        pid = ns.allocate()
        process = Process(pid, self, name, parent=parent, creation_stack=creation_stack)
        process.namespace = ns
        self._register(process)
        self._start_thread(process, main, args, "main", creation_stack)
        return process

    def _register(self, process: Process) -> None:
        process.global_id = self._next_global_id
        self._next_global_id += 1
        self.processes[process.global_id] = process

    def do_fork(self, caller: Thread, child_main: Callable, args: Tuple, name: str) -> Process:
        parent = caller.process
        namespace = getattr(parent, "namespace", None) or self.pidns
        pid = namespace.allocate()
        child_name = name or f"{parent.name}-child"
        space = parent.space.clone()
        creation_stack = list(caller.call_stack) + [getattr(child_main, "__name__", "child")]
        child = Process(
            pid,
            self,
            child_name,
            parent=parent,
            space=space,
            heap=parent.heap.clone_into(space),
            tags=parent.tags.clone(),
            fdtable=parent.fdtable.clone(),
            creation_stack=creation_stack,
        )
        child.program = parent.program
        child.namespace = namespace
        for attr in ("build", "symbols", "libs"):
            if hasattr(parent, attr):
                setattr(child, attr, getattr(parent, attr))
        if hasattr(parent, "crt"):
            from repro.runtime.cruntime import CRuntime

            child.crt = CRuntime(child)
        self._register(child)
        if parent.runtime is not None:
            child.runtime = parent.runtime.on_fork(child)
        self._start_thread(child, child_main, args, "main", creation_stack)
        return child

    def fork_for_restore(
        self,
        parent: Process,
        child_main: Callable,
        args: Tuple,
        name: str,
        creation_stack: List[str],
        forced_pid: Optional[int] = None,
    ) -> Process:
        """Fork a child of ``parent`` outside any running thread.

        MCR's post-startup reinit handlers use this to recreate volatile
        quiescent states: new-version counterparts of old-version processes
        that were spawned on demand (per-connection workers).  The explicit
        ``creation_stack`` and ``forced_pid`` make the child pair with its
        old-version counterpart.
        """
        namespace = getattr(parent, "namespace", None) or self.pidns
        if forced_pid is not None:
            namespace.force_next_pid(forced_pid)
        pid = namespace.allocate()
        space = parent.space.clone()
        child = Process(
            pid,
            self,
            name,
            parent=parent,
            space=space,
            heap=parent.heap.clone_into(space),
            tags=parent.tags.clone(),
            fdtable=parent.fdtable.clone(),
            creation_stack=creation_stack,
        )
        child.program = parent.program
        child.namespace = namespace
        for attr in ("build", "symbols", "libs"):
            if hasattr(parent, attr):
                setattr(child, attr, getattr(parent, attr))
        if hasattr(parent, "crt"):
            from repro.runtime.cruntime import CRuntime

            child.crt = CRuntime(child)
        self._register(child)
        if parent.runtime is not None:
            child.runtime = parent.runtime.on_fork(child)
        self._start_thread(child, child_main, args, "main", creation_stack)
        return child

    def do_exec(self, caller: Thread, image_name: str, main: Callable, args: Tuple) -> None:
        """Replace the process image (exec of an uninstrumented helper)."""
        from repro.mem.address_space import AddressSpace
        from repro.mem.ptmalloc import PtMallocHeap
        from repro.mem.tags import TagStore

        process = caller.process
        for thread in list(process.threads.values()):
            if thread is not caller and thread.state != EXITED:
                self._retire_thread(thread)
        process.name = image_name
        process.space = AddressSpace()
        process.heap = PtMallocHeap(process.space)
        process.tags = TagStore()
        process.runtime = None  # exec'd helpers run uninstrumented
        process.program = None
        creation_stack = list(caller.call_stack) + [image_name]
        self._start_thread(process, main, args, "main", creation_stack)
        # The caller thread itself is retired by the scheduler on return.

    def do_thread_create(self, caller: Thread, main: Callable, args: Tuple, name: str) -> Thread:
        creation_stack = list(caller.call_stack) + [getattr(main, "__name__", name)]
        return self._start_thread(caller.process, main, args, name, creation_stack)

    def _start_thread(
        self,
        process: Process,
        main: Callable,
        args: Tuple,
        name: str,
        creation_stack: Optional[List[str]] = None,
    ) -> Thread:
        from repro.kernel.sysapi import Sys

        thread = process.add_thread(None, name, creation_stack)
        sys_api = Sys(thread)
        thread.body = main(sys_api, *args)
        thread.started_ns = self.clock.now_ns
        self._run_queue.append(thread)
        return thread

    def terminate_process(self, process: Process, status: int = 0) -> None:
        """Kill a process (exit(), MCR rollback, or old-version teardown)."""
        if process.exited:
            return
        for thread in list(process.threads.values()):
            self._retire_thread(thread)
        for fd in list(process.fdtable.fds()):
            try:
                obj = process.fdtable.close(fd)
            except SimError:
                continue
            release = getattr(obj, "release", None)
            if release is not None:
                release()
                if obj.refcount <= 0:
                    if obj.kind == "stream":
                        obj.close()
                    elif obj.kind == "listener":
                        self.net.release_port(obj)
                    elif obj.kind == "unix":
                        # close() also drains undelivered fd-passing
                        # messages so a dead channel pins nothing.
                        obj.close()
        process.exited = True
        process.exit_status = status
        namespace = getattr(process, "namespace", None) or self.pidns
        namespace.release(process.pid)
        # A parent blocked in wait_child can now reap this process.
        parent = process.parent
        if parent is not None and not parent.exited:
            parent.waitq.kick()

    def terminate_tree(self, process: Process, status: int = 0) -> None:
        """Kill a process and every live descendant (rollback/teardown)."""
        for descendant in process.descendants():
            self.terminate_process(descendant, status)
        self.terminate_process(process, status)

    def crash_tree(self, process: Process, status: int = 137) -> None:
        """Kill a tree *abruptly*: no fd release, no port cleanup.

        Models a host/process crash (SIGKILL, power loss) for failover
        drills: descriptors are simply abandoned — connected peers see a
        dead endpoint, the listener stays in the port table wedged — and
        nothing that orderly ``terminate_process`` teardown would have
        done (refcount releases, accept-queue drains) happens.  Recovery
        must come from a checkpoint image, never from this kernel.
        """
        for victim in [process] + process.descendants():
            if victim.exited:
                continue
            for thread in list(victim.threads.values()):
                self._retire_thread(thread)
            victim.exited = True
            victim.exit_status = status
            namespace = getattr(victim, "namespace", None) or self.pidns
            namespace.release(victim.pid)

    def _retire_thread(self, thread: Thread) -> None:
        if thread.state == EXITED:
            return
        thread.state = EXITED
        if thread.body is not None:
            thread.body.close()
        if thread in self._run_queue:
            self._run_queue.remove(thread)
        self._blocked.pop(thread, None)

    # -- scheduler ----------------------------------------------------------------

    def run(
        self,
        max_steps: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
        max_ns: Optional[int] = None,
    ) -> str:
        """Run the world.  Returns the stop reason.

        * ``"until"``     — the ``until`` predicate became true
        * ``"idle"``      — no thread runnable, none can ever become ready
        * ``"max_steps"`` / ``"max_ns"`` — budget exhausted
        """
        budget = max_steps if max_steps is not None else self.config.max_steps_default
        deadline_ns = None if max_ns is None else self.clock.now_ns + max_ns
        while True:
            if until is not None and until():
                return "until"
            if budget <= 0:
                return "max_steps"
            if deadline_ns is not None and self.clock.now_ns >= deadline_ns:
                return "max_ns"
            made_progress = False
            # Run every currently-runnable thread one step.
            for _ in range(len(self._run_queue)):
                if until is not None and until():
                    return "until"
                if budget <= 0:
                    return "max_steps"
                thread = self._run_queue.popleft()
                if thread.state != RUNNABLE:
                    continue
                self._step(thread)
                budget -= 1
                made_progress = True
            # Poll kicked / deadline-due / always-polled blocked threads.
            woken = self._poll_blocked()
            made_progress = made_progress or woken
            if not made_progress and not self._run_queue:
                if self._advance_to_next_deadline():
                    continue
                # No deadline left to jump to.  Before declaring the world
                # dead, poll every blocked thread once: a readiness change
                # no wait channel announced must still wake its waiter
                # (this is the fast path's safety net, not its hot path).
                if self._poll_blocked(full=True):
                    continue
                return "idle"

    def run_for(self, duration_ns: int, max_steps: Optional[int] = None) -> str:
        """Run the world for exactly ``duration_ns`` of virtual time.

        Unlike a bare ``clock.advance``, any runnable thread gets to
        execute while the interval elapses — this is what lets a rolling
        live update charge one worker batch's transfer time while the
        not-yet-quiesced workers keep serving clients.  If the world goes
        idle (or parks at barriers) before the deadline, the clock is
        topped up so the caller's interval is always fully charged.
        """
        if duration_ns <= 0:
            return "until"
        deadline_ns = self.clock.now_ns + duration_ns
        reason = self.run(max_steps=max_steps, max_ns=duration_ns)
        if self.clock.now_ns < deadline_ns:
            self.clock.advance(deadline_ns - self.clock.now_ns)
        return reason

    def _step(self, thread: Thread) -> None:
        self.steps_executed += 1
        self.clock.advance(self.config.step_cost_ns)
        if self.trace is not None:
            self.trace.on_pick(thread)
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("kernel.steps")
            # Gauge-sampling dirty mark: the flight recorder recomputes
            # per-process gauges only for processes stamped since its
            # previous sample.
            thread.process.gauge_stamp = self.steps_executed
            # Scheduler tick hook: every N-th step the flight recorder
            # takes a gauge sample of the world (runnable/blocked counts,
            # allocator occupancy, fd totals, dirty faults).
            collector.recorder.tick(self)
        try:
            if thread.pending_exception is not None:
                exc = thread.pending_exception
                thread.pending_exception = None
                request = thread.body.throw(exc)
            else:
                value = thread.pending_value
                thread.pending_value = None
                request = thread.body.send(value)
        except StopIteration as stop:
            thread.state = EXITED
            thread.exit_value = getattr(stop, "value", None)
            self._maybe_reap_process(thread.process)
            return
        if not isinstance(request, SyscallRequest):
            raise SimError(
                f"thread {thread} yielded {request!r}, expected a SyscallRequest"
            )
        self.clock.advance(self.syscalls.cost_of(request.name))
        try:
            result = self.syscalls.dispatch(thread, request)
        except SimError as error:
            # Deliver the fault into the program like an errno would be.
            thread.pending_exception = error
            self._run_queue.append(thread)
            return
        self._charge_faults(thread.process)
        if isinstance(result, Blocked):
            collector = obs.ACTIVE
            if collector is not None:
                collector.counters.incr("sched.blocks")
                collector.events.emit(
                    "sched.block",
                    severity="debug",
                    thread=f"{thread.process.name}:{thread.name}",
                    reason=result.reason,
                )
            thread.state = BLOCKED
            thread.wait_ready = result.ready
            thread.blocked_on = result.reason
            if request.timeout_ns is not None:
                thread.wait_deadline_ns = self.clock.now_ns + request.timeout_ns
            else:
                thread.wait_deadline_ns = None
            thread.wake_hint_ns = result.wake_ns
            thread.block_started_ns = self.clock.now_ns
            self._park(thread, result.channels)
            return
        if isinstance(result, ExitProcess):
            self.terminate_process(thread.process, result.status)
            return
        if isinstance(result, ReplaceImage):
            self._retire_thread(thread)
            return
        thread.pending_value = result
        self._run_queue.append(thread)

    def _park(self, thread: Thread, channels: Tuple) -> None:
        """Register a freshly-blocked thread with the poll machinery."""
        self._park_counter += 1
        thread.park_seq = seq = self._park_counter
        thread.poll_hot = False
        thread.wait_channels = channels
        for channel in channels:
            channel.waitq.park(thread)
        deadline = thread.wait_deadline_ns
        if deadline is not None:
            self._push_deadline(deadline, thread, seq)
        hint = thread.wake_hint_ns
        if hint is not None and hint != deadline:
            self._push_deadline(hint, thread, seq)
        # No channel and no timing: the predicate is uninstrumented
        # (select) — fall back to polling it every round.
        thread.always_polled = not channels and deadline is None and hint is None
        if thread.always_polled:
            self._polled.append((thread, seq))
        self._blocked[thread] = None

    def _push_deadline(self, when_ns: int, thread: Thread, park_seq: int) -> None:
        # The entry counter breaks timestamp ties (threads don't compare).
        self._heap_counter += 1
        heapq.heappush(self._deadlines, (when_ns, self._heap_counter, thread, park_seq))

    def mark_poll_hot(self, thread: Thread) -> None:
        """A wait channel was kicked: re-poll this thread next round."""
        if not thread.poll_hot:
            thread.poll_hot = True
            self._hot.append(thread)

    def _poll_blocked(self, full: bool = False) -> bool:
        """Poll blocked threads whose readiness could have changed.

        The candidate set is: threads some wait channel kicked since the
        last round, threads whose deadline/wake hint came due (popped from
        the heap), and always-polled threads (select).  Candidates are
        polled in park order — exactly the order the original
        scan-everything scheduler used — so wake order is unchanged.
        ``full=True`` polls every blocked thread (the pre-idle safety
        net).
        """
        now = self.clock.now_ns
        if full:
            for thread in self._hot:
                thread.poll_hot = False
            self._hot = []
            candidates = list(self._blocked)
        else:
            candidates = []
            heap = self._deadlines
            while heap and heap[0][0] <= now:
                _when, _entry, thread, seq = heapq.heappop(heap)
                if thread.state == BLOCKED and thread.park_seq == seq:
                    candidates.append(thread)
            if self._hot:
                hot, self._hot = self._hot, []
                for thread in hot:
                    thread.poll_hot = False
                    if thread.state == BLOCKED:
                        candidates.append(thread)
            if self._polled:
                keep = []
                for entry in self._polled:
                    thread, seq = entry
                    if thread.state == BLOCKED and thread.park_seq == seq:
                        candidates.append(thread)
                        keep.append(entry)
                self._polled = keep
            if not candidates:
                return False
            if len(candidates) > 1:
                candidates.sort(key=lambda t: t.park_seq)
        woken = False
        last: Optional[Thread] = None
        for thread in candidates:
            if thread is last or thread.state != BLOCKED:
                continue  # duplicate entry, or woken earlier this round
            last = thread
            is_ready, value = thread.wait_ready()
            if is_ready:
                self._wake(thread, value)
                woken = True
                continue
            deadline = thread.wait_deadline_ns
            if deadline is not None and now >= deadline:
                self._wake(thread, TIMEOUT)
                woken = True
                continue
            if (
                not thread.always_polled
                and not thread.wait_channels
                and (deadline is None or deadline <= now)
            ):
                # A wake hint that did not pan out and nothing else left
                # to re-arm this thread: degrade it to always-polled
                # rather than let it sleep forever.
                thread.always_polled = True
                self._polled.append((thread, thread.park_seq))
        return woken

    def _wake(self, thread: Thread, value: Any) -> None:
        # Account blocking time against the call site (profiler input).
        site = f"{thread.top_function()}:{thread.blocked_on.split(':')[0]}"
        elapsed = self.clock.now_ns - getattr(thread, "block_started_ns", self.clock.now_ns)
        thread.blocking_time_ns[site] = thread.blocking_time_ns.get(site, 0) + elapsed
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("sched.wakes")
            if value is TIMEOUT:
                collector.counters.incr("sched.wake_timeouts")
            collector.events.emit(
                "sched.wake",
                severity="debug",
                thread=f"{thread.process.name}:{thread.name}",
                site=site,
                blocked_ns=elapsed,
            )
        self._blocked.pop(thread, None)
        thread.state = RUNNABLE
        thread.wait_ready = None
        thread.wait_deadline_ns = None
        thread.wake_hint_ns = None
        thread.wait_channels = ()
        thread.always_polled = False
        thread.blocked_on = ""
        thread.pending_value = value
        self._run_queue.append(thread)

    def _advance_to_next_deadline(self) -> bool:
        # Earliest *valid* heap entry; stale ones (woken or re-parked
        # threads) are discarded on the way.
        heap = self._deadlines
        target = None
        while heap:
            when_ns, _entry, thread, seq = heap[0]
            if thread.state == BLOCKED and thread.park_seq == seq:
                target = when_ns
                break
            heapq.heappop(heap)
        if target is None:
            return False
        if target > self.clock.now_ns:
            collector = obs.ACTIVE
            if collector is not None:
                collector.counters.incr("sched.clock_jumps")
                collector.events.emit(
                    "sched.clock_jump",
                    severity="debug",
                    jump_ns=target - self.clock.now_ns,
                )
            self.clock.advance(target - self.clock.now_ns)
        return True

    def _charge_faults(self, process: Process) -> None:
        seen = self._fault_charged.get(process.pid, 0)
        current = process.space.soft_dirty_faults
        if current > seen:
            self.clock.advance(
                (current - seen) * self.config.soft_dirty_fault_cost_ns
            )
            self._fault_charged[process.pid] = current

    def _maybe_reap_process(self, process: Process) -> None:
        if not process.exited and not process.live_threads():
            self.terminate_process(process, 0)

    # -- queries used by MCR and tests -----------------------------------------------

    def live_processes(self) -> List[Process]:
        return [p for p in self.processes.values() if not p.exited]

    def process_by_pid(self, pid: int, namespace: Optional[PidNamespace] = None) -> Optional[Process]:
        ns = namespace or self.pidns
        for process in self.processes.values():
            if process.pid == pid and process.namespace is ns and not process.exited:
                return process
        return None

    def threads_blocked_at_barrier(self) -> List[Thread]:
        return [t for t in self._blocked if t.at_barrier]

    def run_until_idle(self, max_steps: Optional[int] = None) -> str:
        return self.run(max_steps=max_steps)
