"""A small simulated filesystem.

Servers read configuration files at startup and write logs; vsftpd and
httpd serve file content.  The filesystem is shared world state (all
processes see the same tree), which is exactly why replayed startup code in
the new version must not blindly re-execute destructive file operations —
mutable reinitialization decides per-syscall whether to replay or run live.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimError


class SimFile:
    """An inode: content plus an identity."""

    _next_inode = 1

    def __init__(self, content: bytes = b"") -> None:
        self.content = bytearray(content)
        self.inode = SimFile._next_inode
        SimFile._next_inode += 1


class OpenFile:
    """An open-file description (shared across dup/fork), with an offset."""

    def __init__(self, file: SimFile, path: str, flags: str) -> None:
        self.file = file
        self.path = path
        self.flags = flags
        self.offset = 0
        self.refcount = 1

    kind = "file"

    def acquire(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1

    def read(self, size: int) -> bytes:
        data = bytes(self.file.content[self.offset : self.offset + size])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if "a" in self.flags:
            self.file.content.extend(data)
        else:
            end = self.offset + len(data)
            if end > len(self.file.content):
                self.file.content.extend(b"\x00" * (end - len(self.file.content)))
            self.file.content[self.offset : end] = data
            self.offset = end
        return len(data)


class SimFileSystem:
    """Path -> file map; flat namespace with directory-ish prefixes."""

    def __init__(self) -> None:
        self._files: Dict[str, SimFile] = {}

    def create(self, path: str, content: bytes = b"") -> SimFile:
        file = SimFile(content)
        self._files[path] = file
        return file

    def open(self, path: str, flags: str = "r") -> OpenFile:
        file = self._files.get(path)
        if file is None:
            if "w" in flags or "a" in flags:
                file = self.create(path)
            else:
                raise SimError(f"no such file: {path}")
        if "w" in flags:
            file.content = bytearray()
        return OpenFile(file, path, flags)

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        if path not in self._files:
            raise SimError(f"no such file: {path}")
        del self._files[path]

    def read(self, path: str) -> bytes:
        file = self._files.get(path)
        if file is None:
            raise SimError(f"no such file: {path}")
        return bytes(file.content)

    def listdir(self, prefix: str) -> List[str]:
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> Optional[int]:
        file = self._files.get(path)
        return None if file is None else len(file.content)
