"""Simulated OS kernel: processes, threads, scheduling, fds, sockets.

Simulated programs are generator coroutines that ``yield``
``SyscallRequest`` objects; the kernel executes each request and resumes
the generator with its result.  Everything MCR interposes on in the paper —
the syscall boundary (record/replay), fork/thread creation (forced IDs,
process pairing), fd allocation (reserved ranges), blocking calls
(unblockification) — is therefore a real interception point here.

One deliberate deviation from POSIX, documented in DESIGN.md: ``fork`` and
``thread_create`` take an explicit continuation function for the child
(Python generators cannot be cloned).  All evaluated servers use the
``if (fork() == 0) { child_main(); }`` idiom anyway, so the translation is
mechanical.
"""

from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.process import Process, Thread, sim_function
from repro.kernel.syscalls import TIMEOUT, SyscallRequest
from repro.kernel.sysapi import Sys

__all__ = [
    "Kernel",
    "KernelConfig",
    "Process",
    "Thread",
    "sim_function",
    "TIMEOUT",
    "SyscallRequest",
    "Sys",
]
