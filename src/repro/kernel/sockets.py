"""Simulated sockets: TCP-style streams, listeners, and Unix domain pairs.

Three kernel object kinds:

* ``ListeningSocket`` — bound to a port, holds an accept queue.
* ``StreamEndpoint`` — one side of an established connection; byte buffers
  in both directions.
* ``UnixEndpoint``  — one side of a Unix-domain socketpair; carries
  *messages* of ``(bytes, [kernel objects])`` so file descriptors can be
  passed between processes (SCM_RIGHTS).  This is the mechanism MCR uses
  for *global inheritance*: the first process of the new version receives
  every immutable fd of the old version over such a socket (paper §5).

All objects are refcounted open descriptions, shared across fork/dup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AddressInUse, SimError
from repro.kernel.process import WaitQueue


class _RefCounted:
    def __init__(self) -> None:
        self.refcount = 1

    def acquire(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        self.refcount -= 1


class _Waitable(_RefCounted):
    """A kernel object threads can park on (see ``process.WaitQueue``).

    ``waitq`` holds direct waiters (accept/recv/recvmsg on this object);
    ``watchers`` back-links every epoll instance whose interest set
    includes this object, so a readiness change here also re-polls
    ``epoll_wait`` parkers.  Mutations that could make a waiter ready must
    call :meth:`wake_waiters`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.waitq = WaitQueue()
        self.watchers: List["EpollObject"] = []

    def wake_waiters(self) -> None:
        self.waitq.kick()
        for epoll in self.watchers:
            epoll.waitq.kick()


class UnboundSocket(_RefCounted):
    """A fresh socket() before bind/connect (placeholder kernel object)."""

    kind = "socket"

    def __init__(self, sock_id: int) -> None:
        super().__init__()
        self.sock_id = sock_id


class ListeningSocket(_Waitable):
    """A bound, listening server socket with an accept queue."""

    kind = "listener"

    def __init__(self, sock_id: int, port: int, backlog: int = 128) -> None:
        super().__init__()
        self.sock_id = sock_id
        self.port = port
        self.backlog = backlog
        self.accept_queue: List["StreamEndpoint"] = []
        self.closed = False

    def can_accept(self) -> bool:
        return bool(self.accept_queue)

    def push_connection(self, server_end: "StreamEndpoint") -> None:
        if len(self.accept_queue) >= self.backlog:
            raise SimError(f"accept backlog full on port {self.port}")
        self.accept_queue.append(server_end)
        self.wake_waiters()

    def pop_connection(self) -> "StreamEndpoint":
        return self.accept_queue.pop(0)


class StreamEndpoint(_Waitable):
    """One side of an established stream connection."""

    kind = "stream"

    def __init__(self, conn_id: int, role: str) -> None:
        super().__init__()
        self.conn_id = conn_id
        self.role = role  # "server" | "client"
        self.inbox = bytearray()
        self.peer: Optional["StreamEndpoint"] = None
        self.closed = False
        self.peer_closed = False

    def send(self, data: bytes) -> int:
        if self.closed:
            raise SimError("send on closed socket")
        if self.peer is None or self.peer.closed:
            raise SimError("send on disconnected socket (EPIPE)")
        self.peer.inbox.extend(data)
        self.peer.wake_waiters()
        return len(data)

    def readable(self) -> bool:
        return bool(self.inbox) or self.peer_closed or self.closed

    def recv(self, size: int) -> bytes:
        data = bytes(self.inbox[:size])
        del self.inbox[:size]
        return data

    def close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.peer_closed = True
            # A recv blocked on the peer now returns EOF.
            self.peer.wake_waiters()
        self.wake_waiters()


class UnixEndpoint(_Waitable):
    """One side of a Unix-domain socketpair carrying (data, fds) messages."""

    kind = "unix"

    def __init__(self, pair_id: int, side: int) -> None:
        super().__init__()
        self.pair_id = pair_id
        self.side = side
        self.inbox: List[Tuple[bytes, List[Any]]] = []
        self.peer: Optional["UnixEndpoint"] = None
        self.closed = False

    def sendmsg(self, data: bytes, objects: Optional[List[Any]] = None) -> None:
        if self.peer is None or self.peer.closed:
            raise SimError("sendmsg on disconnected unix socket")
        self.peer.inbox.append((data, list(objects or [])))
        self.peer.wake_waiters()

    def readable(self) -> bool:
        return bool(self.inbox)

    def recvmsg(self) -> Tuple[bytes, List[Any]]:
        return self.inbox.pop(0)

    def close(self) -> None:
        """Drop this side, discarding undelivered messages.

        In-flight messages may carry kernel-object references (SCM_RIGHTS
        fd passing); a receiver holds no refcount on them until recvmsg
        installs them, so draining the queue is the correct disposal — it
        must not release objects the sender's fd table still owns.
        """
        self.closed = True
        self.inbox.clear()


class EpollObject(_Waitable):
    """An epoll instance: in-kernel interest set + readiness query.

    The interest set lives *in the kernel object*, not in program memory —
    which is why MCR can restore event-driven servers: the new version
    inherits the epoll fd and finds every connection still registered.
    Watched entries are (fd_number, kernel_object) pairs; fd numbers are
    preserved across inheritance, so the numbers stay meaningful.
    """

    kind = "epoll"

    def __init__(self, epoll_id: int) -> None:
        super().__init__()
        self.epoll_id = epoll_id
        self.watched: Dict[int, Any] = {}

    def add(self, fd: int, obj: Any) -> None:
        self.watched[fd] = obj
        watchers = getattr(obj, "watchers", None)
        if watchers is not None and self not in watchers:
            watchers.append(self)
        # The new entry may already be ready: re-poll our own waiters.
        self.waitq.kick()

    def remove(self, fd: int) -> None:
        obj = self.watched.pop(fd, None)
        watchers = getattr(obj, "watchers", None)
        if (
            watchers is not None
            and self in watchers
            and obj not in self.watched.values()
        ):
            watchers.remove(self)

    def ready_fds(self) -> List[int]:
        ready: List[int] = []
        for fd, obj in self.watched.items():
            if obj.kind == "listener" and obj.can_accept():
                ready.append(fd)
            elif obj.kind == "stream" and obj.readable():
                ready.append(fd)
            elif obj.kind == "unix" and obj.readable():
                ready.append(fd)
        return sorted(ready)


class NetworkStack:
    """World-level network state: the port namespace and connection ids."""

    def __init__(self) -> None:
        self._listeners: Dict[int, ListeningSocket] = {}
        self._next_sock_id = 1
        self._next_conn_id = 1
        self._next_pair_id = 1
        self._next_epoll_id = 1
        self.total_connections = 0

    def new_epoll(self) -> EpollObject:
        epoll = EpollObject(self._next_epoll_id)
        self._next_epoll_id += 1
        return epoll

    def new_socket(self) -> UnboundSocket:
        sock = UnboundSocket(self._next_sock_id)
        self._next_sock_id += 1
        return sock

    def bind_listen(self, sock: UnboundSocket, port: int, backlog: int = 128) -> ListeningSocket:
        existing = self._listeners.get(port)
        if existing is not None and not existing.closed:
            raise AddressInUse(port)
        listener = ListeningSocket(sock.sock_id, port, backlog)
        self._listeners[port] = listener
        return listener

    def listener_for(self, port: int) -> Optional[ListeningSocket]:
        listener = self._listeners.get(port)
        if listener is not None and listener.closed:
            return None
        return listener

    def release_port(self, listener: ListeningSocket) -> None:
        listener.closed = True
        if self._listeners.get(listener.port) is listener:
            del self._listeners[listener.port]

    def adopt_listener(self, listener: ListeningSocket) -> None:
        """Re-register an inherited listener (MCR fd inheritance path).

        The listener object (and its in-kernel accept queue) is shared
        between old and new versions; adoption is idempotent.
        """
        self._listeners[listener.port] = listener
        listener.closed = False
        # Connections queued before adoption may satisfy new-version
        # acceptors that parked before the handover completed.
        listener.wake_waiters()

    def connect(self, port: int) -> StreamEndpoint:
        """Client-side connect: enqueue a server endpoint, return client's."""
        listener = self.listener_for(port)
        if listener is None:
            raise SimError(f"connection refused: port {port}")
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        server_end = StreamEndpoint(conn_id, "server")
        client_end = StreamEndpoint(conn_id, "client")
        server_end.peer = client_end
        client_end.peer = server_end
        listener.push_connection(server_end)
        self.total_connections += 1
        return client_end

    def socketpair(self) -> Tuple[UnixEndpoint, UnixEndpoint]:
        pair_id = self._next_pair_id
        self._next_pair_id += 1
        a = UnixEndpoint(pair_id, 0)
        b = UnixEndpoint(pair_id, 1)
        a.peer = b
        b.peer = a
        return a, b
