"""The per-thread system API that simulated programs call.

``Sys`` is the "libc" of the simulated machine: every method is a generator
that yields one ``SyscallRequest`` (to be driven by the kernel via
``yield from``).  When the owning process has an MCR runtime attached
(``libmcr.so`` preloaded, in paper terms), requests are routed through it
first — that is where startup recording, replay, and unblockification
happen.

Non-yielding helpers (``loop_iter`` etc.) maintain the loop bookkeeping the
quiescence profiler consumes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernel.process import Thread
from repro.kernel.syscalls import SyscallRequest


class Sys:
    """System interface bound to one simulated thread."""

    def __init__(self, thread: Thread) -> None:
        self.thread = thread

    @property
    def process(self):
        return self.thread.process

    @property
    def kernel(self):
        return self.thread.process.kernel

    # -- the interception funnel ------------------------------------------------

    def _invoke(self, name: str, args: Dict[str, Any], timeout_ns: Optional[int] = None):
        runtime = self.process.runtime
        if runtime is not None:
            result = yield from runtime.intercept(self, name, args, timeout_ns)
            return result
        result = yield SyscallRequest(name, args, timeout_ns)
        return result

    def raw(self, name: str, args: Dict[str, Any], timeout_ns: Optional[int] = None):
        """Issue a syscall bypassing MCR interception (runtime-internal)."""
        result = yield SyscallRequest(name, args, timeout_ns)
        return result

    # -- network ---------------------------------------------------------------

    def socket(self):
        return (yield from self._invoke("socket", {}))

    def bind(self, fd: int, port: int):
        return (yield from self._invoke("bind", {"fd": fd, "port": port}))

    def listen(self, fd: int, backlog: int = 128):
        return (yield from self._invoke("listen", {"fd": fd, "backlog": backlog}))

    def accept(self, fd: int, timeout_ns: Optional[int] = None):
        return (yield from self._invoke("accept", {"fd": fd}, timeout_ns))

    def connect(self, port: int):
        return (yield from self._invoke("connect", {"port": port}))

    def send(self, fd: int, data: bytes):
        return (yield from self._invoke("send", {"fd": fd, "data": data}))

    def recv(self, fd: int, size: int = 65536, timeout_ns: Optional[int] = None):
        return (yield from self._invoke("recv", {"fd": fd, "size": size}, timeout_ns))

    def select(self, fds: List[int], timeout_ns: Optional[int] = None):
        return (yield from self._invoke("select", {"fds": list(fds)}, timeout_ns))

    def epoll_create(self):
        return (yield from self._invoke("epoll_create", {}))

    def epoll_ctl(self, epfd: int, op: str, fd: int):
        return (yield from self._invoke("epoll_ctl", {"epfd": epfd, "op": op, "fd": fd}))

    def epoll_wait(self, epfd: int, timeout_ns: Optional[int] = None):
        return (yield from self._invoke("epoll_wait", {"epfd": epfd}, timeout_ns))

    def socketpair(self):
        return (yield from self._invoke("socketpair", {}))

    def sendmsg(self, fd: int, data: bytes, pass_fds: Optional[List[int]] = None):
        return (
            yield from self._invoke(
                "sendmsg", {"fd": fd, "data": data, "pass_fds": pass_fds}
            )
        )

    def recvmsg(self, fd: int, install_at: Optional[List[int]] = None, timeout_ns: Optional[int] = None):
        return (
            yield from self._invoke(
                "recvmsg", {"fd": fd, "install_at": install_at}, timeout_ns
            )
        )

    def close(self, fd: int):
        return (yield from self._invoke("close", {"fd": fd}))

    # -- filesystem -------------------------------------------------------------

    def open(self, path: str, flags: str = "r"):
        return (yield from self._invoke("open", {"path": path, "flags": flags}))

    def read(self, fd: int, size: int = 65536):
        return (yield from self._invoke("read", {"fd": fd, "size": size}))

    def write(self, fd: int, data: bytes):
        return (yield from self._invoke("write", {"fd": fd, "data": data}))

    def unlink(self, path: str):
        return (yield from self._invoke("unlink", {"path": path}))

    def stat(self, path: str):
        return (yield from self._invoke("stat", {"path": path}))

    # -- processes & threads -------------------------------------------------------

    def fork(self, child_main: Callable, args: Tuple = (), name: str = ""):
        return (
            yield from self._invoke(
                "fork", {"child_main": child_main, "args": args, "name": name}
            )
        )

    def exec(self, image_name: str, main: Callable, args: Tuple = ()):
        return (
            yield from self._invoke(
                "exec", {"image_name": image_name, "main": main, "args": args}
            )
        )

    def exit(self, status: int = 0):
        return (yield from self._invoke("exit", {"status": status}))

    def wait_child(self, timeout_ns: Optional[int] = None):
        return (yield from self._invoke("wait_child", {}, timeout_ns))

    def thread_create(self, main: Callable, args: Tuple = (), name: str = "thread"):
        return (
            yield from self._invoke(
                "thread_create", {"main": main, "args": args, "name": name}
            )
        )

    def getpid(self):
        return (yield from self._invoke("getpid", {}))

    def gettid(self):
        return (yield from self._invoke("gettid", {}))

    # -- time / compute -----------------------------------------------------------

    def nanosleep(self, duration_ns: int):
        return (yield from self._invoke("nanosleep", {"duration_ns": duration_ns}))

    def cpu(self, duration_ns: int):
        """Model pure computation taking ``duration_ns`` of virtual time."""
        return (yield from self._invoke("cpu", {"duration_ns": duration_ns}))

    def sched_yield(self):
        return (yield from self._invoke("sched_yield", {}))

    # -- memory ---------------------------------------------------------------------

    def mmap(self, size: int, address: Optional[int] = None, fixed: bool = False, name: str = "anon"):
        return (
            yield from self._invoke(
                "mmap", {"size": size, "address": address, "fixed": fixed, "name": name}
            )
        )

    def munmap(self, address: int):
        return (yield from self._invoke("munmap", {"address": address}))

    # -- loop bookkeeping (profiler input; no kernel involvement) ------------------

    def loop_iter(self, loop_name: str) -> None:
        """Mark one iteration of a named loop in the current function."""
        thread = self.thread
        key = f"{thread.top_function()}:{loop_name}"
        thread.loop_counts[key] = thread.loop_counts.get(key, 0) + 1
        if key not in thread.loop_stack:
            thread.loop_stack.append(key)

    def loop_end(self, loop_name: str) -> None:
        """Mark that a named loop terminated (it is not long-lived)."""
        thread = self.thread
        key = f"{thread.top_function()}:{loop_name}"
        if key in thread.loop_stack:
            thread.loop_stack.remove(key)
