"""The black-box flight recorder (`repro.obs.recorder`).

An always-on, strictly bounded ring of the most recent observability
traffic — every event the collector sees plus periodic gauge samples of
the world (runnable threads, allocator occupancy, dirty-page faults, fd
counts) taken from the kernel scheduler's step hook.  Like an aircraft
black box, it costs almost nothing while things go well and is dumped
*after* something goes wrong: ``LiveUpdateController._rollback`` (and
fault containment past the point of no return) serialize the recording
to a structured ``blackbox.json`` post-mortem artifact.

Two budgets bound the recorder, and both are hard limits enforced on
every append: ``max_entries`` (ring length) and ``max_bytes`` (the sum
of per-entry cost estimates).  An entry that alone exceeds the byte
budget is dropped, never stored — the recorder can *never* grow past
its budgets, which the property tests flood-check.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.clock import VirtualClock

DEFAULT_MAX_ENTRIES = 512
DEFAULT_MAX_BYTES = 64_000
DEFAULT_SAMPLE_INTERVAL_STEPS = 2_048

# Fixed per-entry overhead charged on top of the payload text estimate.
_ENTRY_BASE_COST = 24


class FlightEntry:
    """One recorded moment: an obs event or a gauge sample."""

    __slots__ = ("ts_ns", "kind", "name", "payload", "cost")

    def __init__(self, ts_ns: int, kind: str, name: str, payload: Dict[str, Any]) -> None:
        self.ts_ns = ts_ns
        self.kind = kind
        self.name = name
        self.payload = payload
        self.cost = _ENTRY_BASE_COST + len(kind) + len(name) + sum(
            len(str(key)) + len(str(value)) for key, value in payload.items()
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts_ns": self.ts_ns,
            "kind": self.kind,
            "name": self.name,
            "payload": dict(self.payload),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlightEntry {self.kind}:{self.name} @{self.ts_ns}>"


class FlightRecorder:
    """Bounded ring of events + gauge samples, dumpable as a post-mortem."""

    def __init__(
        self,
        clock: VirtualClock,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        sample_interval_steps: int = DEFAULT_SAMPLE_INTERVAL_STEPS,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"flight recorder needs a positive entry budget, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"flight recorder needs a positive byte budget, got {max_bytes}")
        if sample_interval_steps <= 0:
            raise ValueError(
                f"sample interval must be positive, got {sample_interval_steps}"
            )
        self.clock = clock
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.sample_interval_steps = sample_interval_steps
        self._ring: Deque[FlightEntry] = deque()
        self._bytes = 0
        self._ticks = 0
        # Per-process gauge cache keyed by global id: (stamp, fds,
        # live_bytes, live_chunks, free_bytes, dirty_faults).  Recomputed
        # only for processes whose ``gauge_stamp`` moved since the last
        # sample, so sampling a mostly-idle 1000-worker tree is O(ran)
        # rather than O(total heap chunks).
        self._gauge_cache: Dict[int, tuple] = {}
        self.recorded = 0
        self.dropped = 0
        self.samples_taken = 0

    # -- recording ------------------------------------------------------------

    def record(
        self,
        kind: str,
        name: str,
        payload: Dict[str, Any],
        ts_ns: Optional[int] = None,
    ) -> None:
        entry = FlightEntry(
            self.clock.now_ns if ts_ns is None else ts_ns, kind, name, payload
        )
        if entry.cost > self.max_bytes:
            # A single over-budget entry is dropped outright: storing it
            # would violate the byte bound no matter what we evict.
            self.dropped += 1
            return
        self._ring.append(entry)
        self._bytes += entry.cost
        self.recorded += 1
        while len(self._ring) > self.max_entries or self._bytes > self.max_bytes:
            evicted = self._ring.popleft()
            self._bytes -= evicted.cost
            self.dropped += 1

    def on_event(self, event) -> None:
        """EventLog subscription hook: mirror every emitted event."""
        self.record("event", event.name, event.payload, ts_ns=event.ts_ns)

    # -- periodic world sampling (kernel scheduler tick hook) ------------------

    def tick(self, kernel) -> None:
        """Called once per scheduler step; samples every N-th tick."""
        self._ticks += 1
        if self._ticks % self.sample_interval_steps:
            return
        self.sample(kernel)

    def sample(self, kernel) -> None:
        """Record one gauge sample of the world's vital signs.

        Per-process gauges are cached: a process that has not executed a
        step since the previous sample (its ``gauge_stamp`` is unchanged)
        reuses its cached tuple instead of re-walking its heap and fd
        table.  Processes mutated outside the scheduler (MCR state
        transfer writing into a quiesced image between runs) may lag one
        sample; the next step they take refreshes them.
        """
        processes = kernel.live_processes()
        self.samples_taken += 1
        cache = self._gauge_cache
        fds = live_bytes = live_chunks = free_bytes = dirty_faults = 0
        for process in processes:
            stamp = process.gauge_stamp
            entry = cache.get(process.global_id)
            if entry is None or entry[0] != stamp:
                entry = (
                    stamp,
                    len(process.fdtable.fds()),
                    process.heap.live_bytes(),
                    process.heap.live_chunk_count(),
                    process.heap._free.total_free(),
                    process.space.soft_dirty_faults,
                )
                cache[process.global_id] = entry
            fds += entry[1]
            live_bytes += entry[2]
            live_chunks += entry[3]
            free_bytes += entry[4]
            dirty_faults += entry[5]
        self.record(
            "sample",
            "gauges",
            {
                "runnable": len(kernel._run_queue),
                "blocked": len(kernel._blocked),
                "processes": len(processes),
                "fds": fds,
                "heap_live_bytes": live_bytes,
                "heap_live_chunks": live_chunks,
                "heap_free_bytes": free_bytes,
                "dirty_faults": dirty_faults,
            },
        )

    # -- reading ---------------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def entries(self) -> List[FlightEntry]:
        return list(self._ring)

    def to_list(self) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self._ring]

    def last_event(self, name: str) -> Optional[Dict[str, Any]]:
        """The most recent recorded event with the given name, if any."""
        for entry in reversed(self._ring):
            if entry.kind == "event" and entry.name == name:
                return entry.to_dict()
        return None

    def dump(
        self,
        reason: str,
        failure_site: Optional[str] = None,
        open_spans: Optional[List[str]] = None,
        fingerprint: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """The structured black-box document (``blackbox.json`` content)."""
        return {
            "reason": reason,
            "ts_ns": self.clock.now_ns,
            "failure_site": failure_site,
            "last_fault": self.last_event("fault.injected"),
            "open_spans": list(open_spans or []),
            "fingerprint": fingerprint,
            "entries": self.to_list(),
            "entries_recorded": self.recorded,
            "entries_dropped": self.dropped,
            "bytes_used": self._bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "samples_taken": self.samples_taken,
            **extra,
        }

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {len(self._ring)}/{self.max_entries} entries, "
            f"{self._bytes}/{self.max_bytes} bytes>"
        )
