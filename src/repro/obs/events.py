"""A bounded ring-buffer event log with severities and payloads.

Events are discrete occurrences — a scheduler decision, a rollback, the
end of startup — stamped with virtual time.  The buffer is a fixed-size
ring: emitting beyond capacity silently evicts the oldest events and
counts them in ``dropped``, so an always-on emitter can never grow the
log without bound.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List

from repro.clock import VirtualClock

SEVERITIES = ("debug", "info", "warn", "error")
DEFAULT_CAPACITY = 1024


class Event:
    """One structured occurrence at a point in virtual time."""

    __slots__ = ("ts_ns", "severity", "name", "payload")

    def __init__(self, ts_ns: int, severity: str, name: str, payload: Dict[str, Any]) -> None:
        self.ts_ns = ts_ns
        self.severity = severity
        self.name = name
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts_ns": self.ts_ns,
            "severity": self.severity,
            "name": self.name,
            "payload": dict(self.payload),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.severity} {self.name} @{self.ts_ns}>"


class EventLog:
    """Fixed-capacity ring of events stamped with one virtual clock."""

    def __init__(self, clock: VirtualClock, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"event log capacity must be positive, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._listeners: List[Any] = []
        self.emitted = 0

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._ring)

    def subscribe(self, listener) -> None:
        """Register ``listener(event)`` to see every emitted event.

        The flight recorder subscribes here so its ring mirrors the event
        stream without the hot emit path paying for two ring protocols.
        """
        self._listeners.append(listener)

    def emit(self, name: str, severity: str = "info", **payload: Any) -> Event:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}; choose from {SEVERITIES}")
        event = Event(self.clock.now_ns, severity, name, payload)
        self._ring.append(event)
        self.emitted += 1
        for listener in self._listeners:
            listener(event)
        return event

    def to_list(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self._ring]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventLog {len(self._ring)}/{self.capacity} ({self.dropped} dropped)>"
