"""Exports: plain JSON and Chrome ``trace_event`` format.

Two serializations of one collector:

* ``collector_to_dict`` — the complete model (span forest, counter
  snapshot, event ring) as plain data, for ``BENCH_*.json`` files and
  machine consumption.
* ``chrome_trace`` — the span tree as Chrome ``trace_event`` *complete*
  events plus instant events and final counter samples, so one update
  attempt opens as a timeline in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.

All output is rendered with ``to_json`` (sorted keys, fixed indent), so
deterministic inputs — and everything stamped by the virtual clock is
deterministic — produce byte-for-byte identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.obs.spans import Span

# trace_event timestamps are microseconds; virtual stamps are integer ns.
_NS_PER_US = 1000.0


def collector_to_dict(collector) -> Dict[str, Any]:
    """The full observability model of one collector as plain data."""
    payload = {
        "clock_ns": collector.clock.now_ns,
        "counters": collector.counters.snapshot(),
        "events": collector.events.to_list(),
        "events_dropped": collector.events.dropped,
        "spans": [root.to_dict() for root in collector.spans.roots],
    }
    metrics = getattr(collector, "metrics", None)
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    recorder = getattr(collector, "recorder", None)
    if recorder is not None:
        payload["flight"] = {
            "entries": recorder.to_list(),
            "recorded": recorder.recorded,
            "dropped": recorder.dropped,
            "bytes_used": recorder.bytes_used,
            "samples_taken": recorder.samples_taken,
        }
    return payload


def spans_to_trace_events(roots: Iterable[Span], pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
    """Flatten span trees into Chrome 'X' (complete) events."""
    events: List[Dict[str, Any]] = []
    for root in roots:
        for span in root.walk():
            events.append(
                {
                    "name": span.name,
                    "cat": "mcr",
                    "ph": "X",
                    "ts": span.start_ns / _NS_PER_US,
                    "dur": span.duration_ns / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(span.attrs, status=span.status),
                }
            )
    return events


def chrome_trace(collector, process_name: str = "repro") -> Dict[str, Any]:
    """One collector as a Chrome trace_event JSON document."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    events.extend(spans_to_trace_events(collector.spans.roots))
    for event in collector.events:
        events.append(
            {
                "name": event.name,
                "cat": "events",
                "ph": "i",
                "s": "g",
                "ts": event.ts_ns / _NS_PER_US,
                "pid": 1,
                "tid": 1,
                "args": dict(event.payload, severity=event.severity),
            }
        )
    # Flight-recorder gauge samples become counter tracks *over time*, so
    # runnable threads / heap occupancy / dirty faults render as series
    # right under the span timeline.
    recorder = getattr(collector, "recorder", None)
    if recorder is not None:
        for entry in recorder.entries():
            if entry.kind != "sample":
                continue
            events.append(
                {
                    "name": f"flight.{entry.name}",
                    "cat": "counters",
                    "ph": "C",
                    "ts": entry.ts_ns / _NS_PER_US,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(sorted(entry.payload.items())),
                }
            )
    now_us = collector.clock.now_ns / _NS_PER_US
    for name, value in collector.counters.snapshot().items():
        events.append(
            {
                "name": name,
                "cat": "counters",
                "ph": "C",
                "ts": now_us,
                "pid": 1,
                "tid": 1,
                "args": {"value": value},
            }
        )
    # Histogram summaries sample once at end-of-trace: count + percentiles.
    metrics = getattr(collector, "metrics", None)
    if metrics is not None:
        for name in metrics.names():
            summary = metrics.get(name).summary()
            events.append(
                {
                    "name": f"hist.{name}",
                    "cat": "metrics",
                    "ph": "C",
                    "ts": now_us,
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "count": summary["count"],
                        "p50": summary["p50"],
                        "p95": summary["p95"],
                        "p99": summary["p99"],
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, stable indent, trailing newline."""
    return json.dumps(payload, sort_keys=True, indent=2, default=str) + "\n"


def write_json(path: str, payload: Any) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(payload))
    return path
