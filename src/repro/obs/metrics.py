"""Histograms and the metrics registry (`repro.obs.metrics`).

The span/counter spine records *what the controller did*; this module
records *distributions* — most importantly the client-perceived request
latencies around a live update (the paper's headline evaluation metric).

Two types:

* ``Histogram`` — fixed-boundary or log-bucketed buckets with count /
  sum / min / max and bucket-resolved percentiles.  Observation is O(log
  buckets) (one bisect + three updates) and never touches the virtual
  clock, so recording latencies cannot change any measured ratio.
* ``MetricsRegistry`` — a flat namespace of histograms that lives next
  to ``CounterSet`` on the ``obs.Collector``; ``observe()`` is the
  get-or-create hot path.

Both expose deterministic snapshots (name-sorted, plain data) and a
Prometheus text exposition (``prometheus_text``) so the same registry
serves ``BENCH_*.json`` files, the ``repro metrics`` CLI, and a scrape
endpoint shape.

Percentiles are bucket-resolved: ``percentile(q)`` returns the upper
boundary of the bucket holding the nearest-rank value, clamped to the
observed max.  The error is therefore bounded by one bucket width — the
property the test suite checks against an exact reference.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from math import ceil
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.clock import ns_to_ms

Number = Union[int, float]

# Default latency buckets: log-spaced from 1 us to ~134 s in virtual ns.
# Factor-2 spacing bounds the percentile error at 2x, which is plenty for
# SLO verdicts over latencies spanning five orders of magnitude.
DEFAULT_LATENCY_BOUNDARIES_NS: List[int] = [1_000 * (1 << k) for k in range(28)]


def log_boundaries(lo: Number, hi: Number, factor: float = 2.0) -> List[Number]:
    """Log-spaced bucket upper bounds from ``lo`` until one covers ``hi``."""
    if lo <= 0:
        raise ValueError(f"log buckets need a positive start, got {lo}")
    if factor <= 1.0:
        raise ValueError(f"log bucket factor must exceed 1, got {factor}")
    bounds: List[Number] = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return bounds


class Histogram:
    """Bucketed distribution: count, sum, min/max, bucket-resolved percentiles."""

    __slots__ = ("name", "unit", "boundaries", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        boundaries: Optional[Sequence[Number]] = None,
        unit: str = "ns",
    ) -> None:
        bounds = list(boundaries) if boundaries is not None else list(DEFAULT_LATENCY_BOUNDARIES_NS)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must strictly increase: {bounds}")
        self.name = name
        self.unit = unit
        self.boundaries = bounds
        # One bucket per boundary (value <= boundary) plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    @classmethod
    def log_buckets(
        cls, name: str, lo: Number, hi: Number, factor: float = 2.0, unit: str = "ns"
    ) -> "Histogram":
        return cls(name, boundaries=log_boundaries(lo, hi, factor), unit=unit)

    @classmethod
    def from_values(
        cls,
        name: str,
        values: Iterable[Number],
        boundaries: Optional[Sequence[Number]] = None,
        unit: str = "ns",
    ) -> "Histogram":
        histogram = cls(name, boundaries=boundaries, unit=unit)
        for value in values:
            histogram.observe(value)
        return histogram

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def bucket_index(self, value: Number) -> int:
        return bisect_left(self.boundaries, value)

    def percentile(self, q: float) -> Number:
        """The q-th percentile (0..100), resolved to a bucket upper bound.

        Returns the upper boundary of the bucket containing the
        nearest-rank value, clamped to the observed max — so the result
        is always >= the exact percentile and lands in the same bucket.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0
        if q == 0:
            # The 0th percentile is the smallest observation; the bucket
            # upper bound would overstate it by up to one bucket width.
            return self.min
        rank = max(1, ceil(q / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.boundaries):
                    return min(self.boundaries[index], self.max)
                return self.max
        return self.max  # pragma: no cover - count>0 guarantees an earlier return

    def summary(self) -> Dict[str, Number]:
        """count/sum/min/max plus the SLO percentiles, in native units."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def summary_ms(self) -> Dict[str, float]:
        """The summary converted ns -> ms (the one shared formatting path)."""
        if self.unit != "ns":
            raise ValueError(f"summary_ms needs an ns histogram, not {self.unit!r}")
        native = self.summary()
        out: Dict[str, float] = {"count": native["count"]}
        for key in ("sum", "min", "max", "p50", "p95", "p99"):
            out[f"{key}_ms"] = ns_to_ms(native[key])
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same boundaries required).

        Used to combine per-tree collectors (old/new version) into one
        cross-update distribution.
        """
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries "
                f"({self.name} vs {other.name})"
            )
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram folding both in (sources untouched)."""
        out = Histogram(self.name, boundaries=self.boundaries, unit=self.unit)
        out.merge(self)
        out.merge(other)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            **self.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named histograms, next to ``CounterSet`` on the collector."""

    def __init__(self) -> None:
        self._histograms: Dict[str, Histogram] = {}

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[Number]] = None,
        unit: str = "ns",
    ) -> Histogram:
        """Get-or-create; an existing histogram keeps its boundaries."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, boundaries=boundaries, unit=unit)
            self._histograms[name] = histogram
        return histogram

    def observe(
        self,
        name: str,
        value: Number,
        boundaries: Optional[Sequence[Number]] = None,
    ) -> None:
        self.histogram(name, boundaries=boundaries).observe(value)

    def get(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def names(self) -> List[str]:
        return sorted(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted plain-data copy (the deterministic export order)."""
        return {name: self._histograms[name].to_dict() for name in self.names()}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (combining old/new-tree collectors)."""
        for name in other.names():
            theirs = other._histograms[name]
            mine = self._histograms.get(name)
            if mine is None:
                mine = Histogram(name, boundaries=theirs.boundaries, unit=theirs.unit)
                self._histograms[name] = mine
            mine.merge(theirs)

    def merged(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry folding both in (sources untouched)."""
        out = MetricsRegistry()
        out.merge(self)
        out.merge(other)
        return out

    def __len__(self) -> int:
        return len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._histograms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._histograms)} histograms>"


# -- Prometheus text exposition ------------------------------------------------

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_number(value: Number) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def prometheus_text(counters=None, metrics: Optional[MetricsRegistry] = None) -> str:
    """Render counters (as gauges) and histograms in Prometheus text format.

    Deterministic: series are name-sorted and numbers rendered canonically,
    so identical runs produce byte-identical exposition.
    """
    lines: List[str] = []
    if counters is not None:
        for name, value in counters.snapshot().items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_number(value)}")
    if metrics is not None:
        for name in metrics.names():
            histogram = metrics.get(name)
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for boundary, bucket_count in zip(
                histogram.boundaries, histogram.bucket_counts
            ):
                cumulative += bucket_count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_number(boundary)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{prom}_sum {_prom_number(histogram.sum)}")
            lines.append(f"{prom}_count {histogram.count}")
    return "\n".join(lines) + "\n"
