"""``repro.obs`` — the unified observability spine.

One ``Collector`` bundles the three recording surfaces over *virtual*
time:

* ``spans``    — nested phase timings (``repro.obs.spans``),
* ``counters`` — named monotonic counters/gauges (``repro.obs.counters``),
* ``events``   — a bounded ring-buffer event log (``repro.obs.events``),

with exporters in ``repro.obs.export`` (plain JSON and Chrome
``trace_event`` for Perfetto).

Instrumentation is **always on but cheap**: hot paths (syscall dispatch,
allocator operations, scheduler decisions) read the module-level
``ACTIVE`` slot and do nothing when it is ``None``, which is the default.
Nothing in this package ever advances the virtual clock, so enabling a
collector changes no measured ratio — observability is free in virtual
time by construction.

``ACTIVE`` is the top of a **scope stack**, not a bare global: activating
a collector (``scoped``/``collecting``/``install``) pushes an entry, and
leaving a scope removes *that entry* wherever it sits in the stack.  That
makes activation safe for interleaved lifetimes — a fleet harness that
multiplexes many kernels in one process enters and exits per-node scopes
in arbitrary order, and each exit restores exactly the collector that
should be visible, never a stale snapshot of "whatever was active when I
started".

Usage::

    with obs.collecting(kernel.clock) as collector:
        result = ctl.live_update(new_program)
    export.write_json(path, export.chrome_trace(collector))

    node_collector = obs.Collector(node.kernel.clock)
    with obs.scoped(node_collector):   # re-enterable, per-node
        node.kernel.run_for(window_ns)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.clock import VirtualClock
from repro.obs.counters import CounterSet
from repro.obs.events import DEFAULT_CAPACITY, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "ACTIVE",
    "Collector",
    "Span",
    "SpanRecorder",
    "collecting",
    "emit",
    "gauge",
    "incr",
    "install",
    "observe",
    "recorder_for",
    "scoped",
    "span",
    "uninstall",
]


class Collector:
    """Spans + counters + events + metrics recorded against one virtual clock.

    The flight recorder is wired as an event-log subscriber, so its ring
    mirrors every emitted event; the kernel scheduler additionally feeds
    it periodic gauge samples through ``FlightRecorder.tick``.
    """

    def __init__(self, clock: VirtualClock, max_events: int = DEFAULT_CAPACITY) -> None:
        self.clock = clock
        self.spans = SpanRecorder(clock)
        self.counters = CounterSet()
        self.events = EventLog(clock, capacity=max_events)
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(clock)
        self.events.subscribe(self.recorder.on_event)

    def to_dict(self):
        from repro.obs.export import collector_to_dict

        return collector_to_dict(self)


# The active collector, or None (the no-op fast path).  Hot paths read
# this attribute directly: ``if obs.ACTIVE is not None: ...``.  It is
# always the collector of the top entry of ``_SCOPES`` (see below) and is
# only ever written by ``_sync_active``.
ACTIVE: Optional[Collector] = None


class _Scope:
    """One scope-stack entry.  Identity (not the collector) is the token:
    the same collector can be activated recursively, and each activation
    removes exactly its own entry on exit."""

    __slots__ = ("collector",)

    def __init__(self, collector: Collector) -> None:
        self.collector = collector


_SCOPES: List[_Scope] = []


def _sync_active() -> None:
    global ACTIVE
    ACTIVE = _SCOPES[-1].collector if _SCOPES else None


@contextmanager
def scoped(collector: Collector) -> Iterator[Collector]:
    """Activate ``collector`` for the duration of the block.

    Exits remove this activation's own stack entry rather than restoring
    a remembered predecessor, so interleaved (non-LIFO) scope lifetimes
    resolve correctly: closing an outer scope while an inner one is still
    open leaves the inner collector active, and closing the inner one
    then reveals whatever sits below it.
    """
    entry = _Scope(collector)
    _SCOPES.append(entry)
    _sync_active()
    try:
        yield collector
    finally:
        try:
            _SCOPES.remove(entry)
        except ValueError:  # a bare uninstall() cleared the stack under us
            pass
        _sync_active()


def install(collector: Collector) -> Optional[Collector]:
    """Activate ``collector`` globally; returns the one it displaced.

    Imperative counterpart of ``scoped`` for callers without a natural
    ``with`` block.  Pair with ``uninstall(collector)`` to end exactly
    this activation.
    """
    previous = ACTIVE
    _SCOPES.append(_Scope(collector))
    _sync_active()
    return previous


def uninstall(collector: Optional[Collector] = None) -> None:
    """End an activation.

    With a ``collector``, removes that collector's most recent activation
    (wherever it sits in the stack).  Without one, clears the whole stack
    — the historical "reset to no collector" behaviour.
    """
    if collector is None:
        _SCOPES.clear()
    else:
        for index in range(len(_SCOPES) - 1, -1, -1):
            if _SCOPES[index].collector is collector:
                del _SCOPES[index]
                break
    _sync_active()


@contextmanager
def collecting(clock: VirtualClock, max_events: int = DEFAULT_CAPACITY) -> Iterator[Collector]:
    """Activate a fresh collector for the duration of the block."""
    with scoped(Collector(clock, max_events=max_events)) as collector:
        yield collector


def recorder_for(clock: VirtualClock) -> SpanRecorder:
    """The active collector's span recorder, or a standalone one.

    Span producers that must *always* record (the update controller
    derives its timing breakdown from spans) use this: when a collector
    is installed for the same clock they feed it, otherwise they get a
    private recorder whose tree still reaches the caller.
    """
    collector = ACTIVE
    if collector is not None and collector.clock is clock:
        return collector.spans
    return SpanRecorder(clock)


# -- no-op-when-disabled conveniences (for non-hot call sites) ----------------


def incr(name: str, delta: int = 1) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.counters.incr(name, delta)


def gauge(name: str, value: Any) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.counters.gauge(name, value)


def observe(name: str, value: Any) -> None:
    """Record one histogram observation on the active collector (or drop it)."""
    collector = ACTIVE
    if collector is not None:
        collector.metrics.observe(name, value)


def emit(name: str, severity: str = "info", **payload: Any) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.events.emit(name, severity=severity, **payload)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Record a span on the active collector for the duration of the block.

    The no-op-when-disabled convenience for phase producers that do not
    need the ``Span`` object itself (the checkpoint/restore pipeline):
    with no collector active the body runs untouched; with one active the
    span closes with error status if the block raises.
    """
    collector = ACTIVE
    if collector is None:
        yield
        return
    opened = collector.spans.begin(name, **attrs)
    try:
        yield
    except BaseException:
        collector.spans.end(opened, status="error")
        raise
    collector.spans.end(opened)
