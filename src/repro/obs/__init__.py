"""``repro.obs`` — the unified observability spine.

One ``Collector`` bundles the three recording surfaces over *virtual*
time:

* ``spans``    — nested phase timings (``repro.obs.spans``),
* ``counters`` — named monotonic counters/gauges (``repro.obs.counters``),
* ``events``   — a bounded ring-buffer event log (``repro.obs.events``),

with exporters in ``repro.obs.export`` (plain JSON and Chrome
``trace_event`` for Perfetto).

Instrumentation is **always on but cheap**: hot paths (syscall dispatch,
allocator operations, scheduler decisions) read the module-level
``ACTIVE`` slot and do nothing when it is ``None``, which is the default.
Nothing in this package ever advances the virtual clock, so enabling a
collector changes no measured ratio — observability is free in virtual
time by construction.

Usage::

    with obs.collecting(kernel.clock) as collector:
        result = ctl.live_update(new_program)
    export.write_json(path, export.chrome_trace(collector))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.clock import VirtualClock
from repro.obs.counters import CounterSet
from repro.obs.events import DEFAULT_CAPACITY, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "ACTIVE",
    "Collector",
    "Span",
    "SpanRecorder",
    "collecting",
    "emit",
    "gauge",
    "incr",
    "install",
    "observe",
    "recorder_for",
    "uninstall",
]


class Collector:
    """Spans + counters + events + metrics recorded against one virtual clock.

    The flight recorder is wired as an event-log subscriber, so its ring
    mirrors every emitted event; the kernel scheduler additionally feeds
    it periodic gauge samples through ``FlightRecorder.tick``.
    """

    def __init__(self, clock: VirtualClock, max_events: int = DEFAULT_CAPACITY) -> None:
        self.clock = clock
        self.spans = SpanRecorder(clock)
        self.counters = CounterSet()
        self.events = EventLog(clock, capacity=max_events)
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(clock)
        self.events.subscribe(self.recorder.on_event)

    def to_dict(self):
        from repro.obs.export import collector_to_dict

        return collector_to_dict(self)


# The installed collector, or None (the no-op fast path).  Hot paths read
# this attribute directly: ``if obs.ACTIVE is not None: ...``.
ACTIVE: Optional[Collector] = None


def install(collector: Collector) -> Optional[Collector]:
    """Install ``collector`` globally; returns the one it displaced."""
    global ACTIVE
    previous, ACTIVE = ACTIVE, collector
    return previous


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def collecting(clock: VirtualClock, max_events: int = DEFAULT_CAPACITY) -> Iterator[Collector]:
    """Install a fresh collector for the duration of the block."""
    collector = Collector(clock, max_events=max_events)
    previous = install(collector)
    try:
        yield collector
    finally:
        global ACTIVE
        ACTIVE = previous


def recorder_for(clock: VirtualClock) -> SpanRecorder:
    """The active collector's span recorder, or a standalone one.

    Span producers that must *always* record (the update controller
    derives its timing breakdown from spans) use this: when a collector
    is installed for the same clock they feed it, otherwise they get a
    private recorder whose tree still reaches the caller.
    """
    collector = ACTIVE
    if collector is not None and collector.clock is clock:
        return collector.spans
    return SpanRecorder(clock)


# -- no-op-when-disabled conveniences (for non-hot call sites) ----------------


def incr(name: str, delta: int = 1) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.counters.incr(name, delta)


def gauge(name: str, value: Any) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.counters.gauge(name, value)


def observe(name: str, value: Any) -> None:
    """Record one histogram observation on the active collector (or drop it)."""
    collector = ACTIVE
    if collector is not None:
        collector.metrics.observe(name, value)


def emit(name: str, severity: str = "info", **payload: Any) -> None:
    collector = ACTIVE
    if collector is not None:
        collector.events.emit(name, severity=severity, **payload)
