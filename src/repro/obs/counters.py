"""Named monotonic counters and gauges.

The hot-path contract is ``incr()``: one dict update, no timestamps, no
allocation beyond the key string.  Kernel syscall dispatch and allocator
operations call it on every operation when a collector is installed, so
it must stay this small.

Counters are *virtual-time free*: incrementing never touches the clock,
which is what keeps the Table-3 overhead ratios identical with and
without observability enabled.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class CounterSet:
    """A flat namespace of counters (monotonic) and gauges (last-write)."""

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    def incr(self, name: str, delta: Number = 1) -> None:
        values = self._values
        values[name] = values.get(name, 0) + delta

    def gauge(self, name: str, value: Number) -> None:
        self._values[name] = value

    def get(self, name: str, default: Number = 0) -> Number:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, Number]:
        """Name-sorted copy (the deterministic export order)."""
        return dict(sorted(self._values.items()))

    def with_prefix(self, prefix: str) -> Dict[str, Number]:
        return {
            name: value
            for name, value in sorted(self._values.items())
            if name.startswith(prefix)
        }

    def merge(self, other: "CounterSet") -> None:
        """Fold ``other``'s values into this set (sums matching names).

        In-place, like ``Histogram.merge`` and ``MetricsRegistry.merge``
        — the one merge contract across the observability spine.
        Cross-tree accounting (old-version collector + new-version
        collector during an update) combines through this, and the result
        never depends on either side's dict insertion order — ``snapshot``
        of the merge is name-sorted like any other.
        """
        values = self._values
        for name, value in other._values.items():
            values[name] = values.get(name, 0) + value

    def merged(self, other: "CounterSet") -> "CounterSet":
        """A new CounterSet with both value sets summed (sources untouched)."""
        out = CounterSet()
        out.merge(self)
        out.merge(other)
        return out

    def clear(self) -> None:
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterSet {len(self._values)} series>"
