"""Nested spans over virtual time.

A span is one timed phase of work (an update attempt, one of its stages,
a transfer pass).  Spans nest: beginning a span while another is open
makes it a child, so one update attempt records a tree whose root is the
``update`` span and whose leaves are the finest phases.  All stamps come
from the ``VirtualClock``, which makes span trees *deterministic*: two
identical runs produce byte-for-byte identical exports.

``SpanRecorder`` is the mutable recording surface; it is embedded in an
``obs.Collector`` but also works standalone (the update controller always
records its phase tree through one, whether or not a collector is
installed).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.clock import VirtualClock, fmt_ms

STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed phase: name, [start, end) in virtual ns, children."""

    __slots__ = ("name", "start_ns", "end_ns", "status", "attrs", "parent", "children")

    def __init__(
        self,
        name: str,
        start_ns: int,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.status = STATUS_OPEN
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.parent = parent
        self.children: List["Span"] = []

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    def close(self, end_ns: int, status: str = STATUS_OK) -> None:
        if self.end_ns is not None:
            return
        if end_ns < self.start_ns:
            raise ValueError(f"span {self.name} cannot end before it starts")
        self.end_ns = end_ns
        self.status = status

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order traversal (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.status} {self.duration_ns}ns>"


class SpanRecorder:
    """Records a forest of spans stamped with one virtual clock."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, **attrs: Any) -> Span:
        span = Span(name, self.clock.now_ns, parent=self.current, attrs=attrs)
        if span.parent is None:
            self.roots.append(span)
        else:
            span.parent.children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None, status: str = STATUS_OK) -> Span:
        """Close ``span`` (default: the innermost open one).

        Any spans opened inside ``span`` and never closed are closed with
        it, so an exception mid-phase cannot leave the stack corrupted.
        """
        if not self._stack:
            raise RuntimeError("no open span to end")
        if span is None:
            span = self._stack[-1]
        if span not in self._stack:
            raise RuntimeError(f"span {span.name} is not open")
        now_ns = self.clock.now_ns
        while self._stack:
            top = self._stack.pop()
            top.close(now_ns, status)
            if top is span:
                break
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context manager: error status (and re-raise) on exception."""
        opened = self.begin(name, **attrs)
        try:
            yield opened
        except BaseException:
            self.end(opened, status=STATUS_ERROR)
            raise
        else:
            self.end(opened, status=STATUS_OK)


def render_tree(span: Span) -> str:
    """Indented plain-text rendering of one span tree."""
    lines: List[str] = []

    def visit(node: Span, depth: int) -> None:
        marker = "" if node.status == STATUS_OK else f" [{node.status}]"
        lines.append(
            f"{'  ' * depth}{node.name:<{max(24 - 2 * depth, 1)}} "
            f"{fmt_ms(node.duration_ns):>12}{marker}"
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)
