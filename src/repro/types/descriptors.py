"""Type descriptors for simulated C data.

Every descriptor knows its ``size`` and ``align`` in the simulated 64-bit
machine and can enumerate ``pointer_offsets()`` — the byte offsets within a
value of this type at which a pointer word lives *according to the type
information*.  Precise tracing follows exactly those offsets; everything a
type cannot vouch for (unions, opaque buffers, integers that might hide
pointers) is handled by the conservative scanner instead.

Descriptors are immutable once constructed and compared structurally via
``signature()``: two versions of a program have "the same" type when the
signatures match, which is how mutable tracing decides whether a type
transformation is needed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.types import layout

WORD_SIZE = 8  # 64-bit simulated machine


class TypeDesc:
    """Base class for all type descriptors."""

    kind = "abstract"

    def __init__(self, name: str, size: int, align: int) -> None:
        self.name = name
        self.size = size
        self.align = align

    def pointer_offsets(self) -> Iterator[Tuple[int, "TypeDesc"]]:
        """Yield ``(offset, pointer_type)`` for every typed pointer slot."""
        return iter(())

    def is_opaque(self) -> bool:
        """True when precise tracing cannot interpret this type's bytes."""
        return False

    def signature(self) -> str:
        """A structural identity string, stable across program versions."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} size={self.size}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeDesc) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class IntType(TypeDesc):
    """A fixed-width integer."""

    kind = "int"

    def __init__(self, size: int, signed: bool = True, name: str = "") -> None:
        if size not in (1, 2, 4, 8):
            raise ValueError(f"unsupported integer size: {size}")
        self.signed = signed
        label = name or f"{'' if signed else 'u'}int{size * 8}"
        super().__init__(label, size, size)

    def signature(self) -> str:
        return f"i{'s' if self.signed else 'u'}{self.size}"


class CharType(TypeDesc):
    """A single byte.  Arrays of char are opaque to precise tracing."""

    kind = "char"

    def __init__(self) -> None:
        super().__init__("char", 1, 1)

    def signature(self) -> str:
        return "c"


class PointerType(TypeDesc):
    """A typed pointer.  ``target`` of ``None`` models ``void *``."""

    kind = "pointer"

    def __init__(self, target: Optional[TypeDesc] = None, name: str = "") -> None:
        self.target = target
        target_name = target.name if target is not None else "void"
        super().__init__(name or f"{target_name}*", WORD_SIZE, WORD_SIZE)

    def pointer_offsets(self) -> Iterator[Tuple[int, "PointerType"]]:
        yield 0, self

    def signature(self) -> str:
        # Pointer signatures deliberately use only the *name* of the target
        # (not its full structure): pointer graphs are cyclic, and a pointer
        # slot is layout-identical regardless of how the pointee changed.
        target_sig = self.target.name if self.target is not None else "void"
        return f"p:{target_sig}"


class FuncType(TypeDesc):
    """A function (pointers to these are code pointers, never traced)."""

    kind = "func"

    def __init__(self, name: str = "func") -> None:
        super().__init__(name, WORD_SIZE, WORD_SIZE)

    def signature(self) -> str:
        return "fn"


class Field:
    """A named struct/union member."""

    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type_: TypeDesc, offset: int = 0) -> None:
        self.name = name
        self.type = type_
        self.offset = offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Field {self.name}:{self.type.name}@{self.offset}>"


class StructType(TypeDesc):
    """A C struct with naturally-aligned members."""

    kind = "struct"

    def __init__(self, name: str, fields: Sequence[Tuple[str, TypeDesc]]) -> None:
        pairs = [(t.size, t.align) for _, t in fields]
        offsets, size, align = layout.struct_layout(pairs)
        self.fields: List[Field] = [
            Field(fname, ftype, offset)
            for (fname, ftype), offset in zip(fields, offsets)
        ]
        super().__init__(name, size, align)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def pointer_offsets(self) -> Iterator[Tuple[int, PointerType]]:
        for f in self.fields:
            for inner_offset, ptr_type in f.type.pointer_offsets():
                yield f.offset + inner_offset, ptr_type

    def is_opaque(self) -> bool:
        # A struct is traceable as long as each member is either traceable
        # or a plain scalar; embedded unions/opaque members make only those
        # *regions* opaque, handled field-by-field by the tracer.
        return False

    def opaque_ranges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, size)`` for members needing conservative scan."""
        for f in self.fields:
            if f.type.is_opaque():
                yield f.offset, f.type.size
            elif isinstance(f.type, StructType):
                for off, size in f.type.opaque_ranges():
                    yield f.offset + off, size
            elif isinstance(f.type, ArrayType):
                for off, size in f.type.opaque_ranges():
                    yield f.offset + off, size

    def signature(self) -> str:
        inner = ",".join(f"{f.name}:{f.type.signature()}" for f in self.fields)
        return f"s:{self.name}{{{inner}}}"


class UnionType(TypeDesc):
    """A C union.  Always opaque: the active member is unknowable."""

    kind = "union"

    def __init__(self, name: str, fields: Sequence[Tuple[str, TypeDesc]]) -> None:
        pairs = [(t.size, t.align) for _, t in fields]
        size, align = layout.union_layout(pairs)
        self.fields = [Field(fname, ftype, 0) for fname, ftype in fields]
        super().__init__(name, size, align)

    def is_opaque(self) -> bool:
        return True

    def signature(self) -> str:
        inner = ",".join(f"{f.name}:{f.type.signature()}" for f in self.fields)
        return f"u:{self.name}{{{inner}}}"


class ArrayType(TypeDesc):
    """A fixed-length array."""

    kind = "array"

    def __init__(self, element: TypeDesc, count: int) -> None:
        if count < 0:
            raise ValueError(f"array count must be non-negative: {count}")
        self.element = element
        self.count = count
        super().__init__(f"{element.name}[{count}]", element.size * count, element.align)

    def pointer_offsets(self) -> Iterator[Tuple[int, PointerType]]:
        for index in range(self.count):
            base = index * self.element.size
            for inner_offset, ptr_type in self.element.pointer_offsets():
                yield base + inner_offset, ptr_type

    def is_opaque(self) -> bool:
        # char arrays are the canonical opaque buffer of the paper's
        # default policy (Listing 1's ``char b[8]``).
        return isinstance(self.element, CharType) or self.element.is_opaque()

    def opaque_ranges(self) -> Iterator[Tuple[int, int]]:
        if self.is_opaque():
            yield 0, self.size
            return
        if isinstance(self.element, (StructType, ArrayType)):
            for index in range(self.count):
                base = index * self.element.size
                for off, size in self.element.opaque_ranges():
                    yield base + off, size

    def signature(self) -> str:
        return f"a:{self.count}x{self.element.signature()}"


class OpaqueType(TypeDesc):
    """A raw byte region with no type information at all.

    This is what an allocation from an *uninstrumented* allocator (or
    library) looks like to mutable tracing: size known, contents unknown.
    """

    kind = "opaque"

    def __init__(self, size: int, name: str = "") -> None:
        super().__init__(name or f"opaque[{size}]", size, WORD_SIZE if size >= WORD_SIZE else 1)

    def is_opaque(self) -> bool:
        return True

    def signature(self) -> str:
        return f"o:{self.size}"


# Shared singleton scalars --------------------------------------------------

CHAR = CharType()
INT8 = IntType(1, signed=True)
INT16 = IntType(2, signed=True)
INT32 = IntType(4, signed=True)
INT64 = IntType(8, signed=True)
UINT8 = IntType(1, signed=False)
UINT16 = IntType(2, signed=False)
UINT32 = IntType(4, signed=False)
UINT64 = IntType(8, signed=False)
VOID_PTR = PointerType(None)
