"""Layout computation: sizes, alignments, and struct field offsets.

We follow the SysV AMD64 rules that matter for tracing: natural alignment
for scalars, struct alignment is the max of member alignments, members are
padded to their alignment, total struct size is padded to the struct
alignment, unions take the size/alignment of their largest member.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def struct_layout(
    member_sizes_aligns: Sequence[Tuple[int, int]],
) -> Tuple[List[int], int, int]:
    """Compute struct member offsets, total size, and alignment.

    ``member_sizes_aligns`` is a sequence of ``(size, align)`` pairs, one
    per member in declaration order.  Returns ``(offsets, size, align)``.
    """
    offsets: List[int] = []
    cursor = 0
    struct_align = 1
    for size, align in member_sizes_aligns:
        cursor = align_up(cursor, align)
        offsets.append(cursor)
        cursor += size
        struct_align = max(struct_align, align)
    total = align_up(cursor, struct_align) if member_sizes_aligns else 0
    return offsets, total, struct_align


def union_layout(
    member_sizes_aligns: Sequence[Tuple[int, int]],
) -> Tuple[int, int]:
    """Compute a union's total size and alignment."""
    if not member_sizes_aligns:
        return 0, 1
    union_align = max(align for _, align in member_sizes_aligns)
    raw_size = max(size for size, _ in member_sizes_aligns)
    return align_up(raw_size, union_align), union_align
