"""Symbol tables for static program objects.

MCR matches *static* objects across versions by symbol name (paper §6,
"Precise tracing": "We use symbol names to match static objects").  The
symbol table is produced when a ``Program`` is loaded: each global variable
gets an address in the data segment and an entry here, which doubles as the
root set for mutable tracing.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.types.descriptors import TypeDesc


class Symbol:
    """A named static object with a resolved address."""

    __slots__ = ("name", "type", "address", "section")

    def __init__(self, name: str, type_: TypeDesc, address: int, section: str = "data") -> None:
        self.name = name
        self.type = type_
        self.address = address
        self.section = section

    @property
    def end(self) -> int:
        return self.address + self.type.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Symbol {self.name}@0x{self.address:x} {self.type.name}>"


class SymbolTable:
    """Name -> symbol mapping with reverse (address) lookup."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Symbol] = {}
        # Lazily-built (address -> symbol) index for find_containing;
        # invalidated on add.  Symbol storage is disjoint by construction
        # (the loader lays globals out back to back), so predecessor-by-
        # address containment is exact.
        self._addr_index: Optional[Tuple[List[int], List[Symbol]]] = None

    def add(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol: {symbol.name}")
        self._by_name[symbol.name] = symbol
        self._addr_index = None
        return symbol

    def lookup(self, name: str) -> Symbol:
        return self._by_name[name]

    def get(self, name: str) -> Optional[Symbol]:
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def find_containing(self, address: int) -> Optional[Symbol]:
        """Find the symbol whose storage contains ``address``, if any."""
        index = self._addr_index
        if index is None:
            ordered = sorted(self._by_name.values(), key=lambda s: s.address)
            index = ([s.address for s in ordered], ordered)
            self._addr_index = index
        addresses, symbols = index
        i = bisect.bisect_right(addresses, address) - 1
        if i >= 0:
            symbol = symbols[i]
            if address < symbol.end:
                return symbol
        return None
