"""A miniature C type system for simulated programs.

Simulated servers declare their global variables and heap allocations with
these descriptors.  The descriptors play the role of the *data type tags*
MCR's static instrumentation emits: they tell precise tracing where the
pointers are, and their absence (``OpaqueType``, unions, char buffers) is
what forces mutable tracing into conservative mode.
"""

from repro.types.descriptors import (
    ArrayType,
    CharType,
    Field,
    FuncType,
    IntType,
    OpaqueType,
    PointerType,
    StructType,
    TypeDesc,
    UnionType,
    CHAR,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    VOID_PTR,
    WORD_SIZE,
)
from repro.types.codec import MemoryView, read_value, write_value
from repro.types.symbols import Symbol, SymbolTable

__all__ = [
    "ArrayType",
    "CharType",
    "Field",
    "FuncType",
    "IntType",
    "OpaqueType",
    "PointerType",
    "StructType",
    "TypeDesc",
    "UnionType",
    "CHAR",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "VOID_PTR",
    "WORD_SIZE",
    "MemoryView",
    "read_value",
    "write_value",
    "Symbol",
    "SymbolTable",
]
