"""Encoding and decoding typed values in simulated memory.

Values cross this boundary as plain Python objects:

* integers/chars/pointers -> ``int``
* structs/unions          -> ``dict`` keyed by field name
* arrays                  -> ``list``
* opaque regions          -> ``bytes``

The memory side is anything implementing ``MemoryView`` (the simulated
address space, or a detached ``bytearray`` during transfer staging).
"""

from __future__ import annotations

import struct as _struct
from typing import Any, Protocol

from repro.types.descriptors import (
    ArrayType,
    CharType,
    FuncType,
    IntType,
    OpaqueType,
    PointerType,
    StructType,
    TypeDesc,
    UnionType,
)

_INT_FORMATS = {
    (1, True): "<b",
    (1, False): "<B",
    (2, True): "<h",
    (2, False): "<H",
    (4, True): "<i",
    (4, False): "<I",
    (8, True): "<q",
    (8, False): "<Q",
}


class MemoryView(Protocol):
    """Minimal byte-addressable interface the codec reads/writes through."""

    def read_bytes(self, address: int, size: int) -> bytes: ...

    def write_bytes(self, address: int, data: bytes) -> None: ...


def read_word(mem: MemoryView, address: int) -> int:
    """Read one unsigned 64-bit word (the shape of a pointer)."""
    return _struct.unpack("<Q", mem.read_bytes(address, 8))[0]


def write_word(mem: MemoryView, address: int, value: int) -> None:
    mem.write_bytes(address, _struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))


def read_value(mem: MemoryView, address: int, type_: TypeDesc) -> Any:
    """Decode a value of ``type_`` stored at ``address``."""
    if isinstance(type_, IntType):
        fmt = _INT_FORMATS[(type_.size, type_.signed)]
        return _struct.unpack(fmt, mem.read_bytes(address, type_.size))[0]
    if isinstance(type_, CharType):
        return mem.read_bytes(address, 1)[0]
    if isinstance(type_, (PointerType, FuncType)):
        return read_word(mem, address)
    if isinstance(type_, StructType):
        return {
            f.name: read_value(mem, address + f.offset, f.type)
            for f in type_.fields
        }
    if isinstance(type_, ArrayType):
        if type_.is_opaque():
            return mem.read_bytes(address, type_.size)
        return [
            read_value(mem, address + i * type_.element.size, type_.element)
            for i in range(type_.count)
        ]
    if isinstance(type_, (UnionType, OpaqueType)):
        return mem.read_bytes(address, type_.size)
    raise TypeError(f"cannot decode type {type_!r}")


def write_value(mem: MemoryView, address: int, type_: TypeDesc, value: Any) -> None:
    """Encode ``value`` of ``type_`` into memory at ``address``."""
    if isinstance(type_, IntType):
        fmt = _INT_FORMATS[(type_.size, type_.signed)]
        mem.write_bytes(address, _struct.pack(fmt, _wrap_int(value, type_)))
        return
    if isinstance(type_, CharType):
        mem.write_bytes(address, bytes([value & 0xFF]))
        return
    if isinstance(type_, (PointerType, FuncType)):
        write_word(mem, address, int(value))
        return
    if isinstance(type_, StructType):
        for f in type_.fields:
            if f.name in value:
                write_value(mem, address + f.offset, f.type, value[f.name])
        return
    if isinstance(type_, ArrayType):
        if type_.is_opaque():
            _write_opaque(mem, address, type_.size, value)
            return
        for i, item in enumerate(value):
            if i >= type_.count:
                raise ValueError(
                    f"array overflow: {len(value)} items into {type_.name}"
                )
            write_value(mem, address + i * type_.element.size, type_.element, item)
        return
    if isinstance(type_, (UnionType, OpaqueType)):
        _write_opaque(mem, address, type_.size, value)
        return
    raise TypeError(f"cannot encode type {type_!r}")


def _write_opaque(mem: MemoryView, address: int, size: int, value: Any) -> None:
    data = bytes(value)
    if len(data) > size:
        raise ValueError(f"opaque overflow: {len(data)} bytes into {size}")
    mem.write_bytes(address, data.ljust(size, b"\x00"))


def _wrap_int(value: int, type_: IntType) -> int:
    """Wrap a Python int into the representable range (C overflow rules)."""
    bits = type_.size * 8
    mask = (1 << bits) - 1
    value &= mask
    if type_.signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value
