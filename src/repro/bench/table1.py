"""Table 1: programs, updates, and engineering effort.

Three column groups:

* **Quiescence profiling** — run the §8 profiling scripts through the
  quiescence profiler and report short-/long-lived thread classes,
  quiescent points, and their persistent/volatile split.
* **Updates / Changes** — the update series (count, patch LOC, changed
  functions/variables from the series specs; changed types computed
  structurally from the version type registries).
* **Engineering effort** — annotation LOC from the programs' actual
  annotation registries; state-transfer LOC from the updates that needed
  semantic handlers.

Patch-size numbers describe our simulated series; the paper's row is
printed alongside (it describes the real upstream releases, which cannot
be regenerated from a simulation).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.reporting import render_table
from repro.kernel.kernel import Kernel
from repro.mcr.quiescence.profiler import QuiescenceProfiler
from repro.servers.updates import ALL_SERIES, UpdateSeries
from repro.workloads import profiles

PAPER_PROFILING = {
    "httpd": {"SL": 2, "LL": 8, "QP": 8, "Per": 5, "Vol": 3},
    "nginx": {"SL": 1, "LL": 2, "QP": 2, "Per": 2, "Vol": 0},
    "vsftpd": {"SL": 0, "LL": 5, "QP": 5, "Per": 1, "Vol": 4},
    "opensshd": {"SL": 3, "LL": 3, "QP": 3, "Per": 1, "Vol": 2},
}

_PROFILES = {
    "httpd": lambda: profiles.web_profile(80),
    "nginx": lambda: profiles.web_profile(8081),
    "vsftpd": lambda: profiles.ftp_profile(21),
    "opensshd": lambda: profiles.ssh_profile(22),
}


def profile_server(name: str) -> Dict[str, int]:
    """Run the quiescence profiler for one server; Table-1 counters."""
    series = ALL_SERIES[name]
    kernel = Kernel()
    series.setup_world(kernel)
    profiler = QuiescenceProfiler(kernel)
    report = profiler.profile(series.make(1), _PROFILES[name]())
    return report.summary()


def effort_row(name: str) -> Dict[str, int]:
    """The Updates/Changes/Effort columns for one server."""
    series: UpdateSeries = ALL_SERIES[name]
    return {
        "Num": series.num_updates(),
        "LOC": series.total_loc(),
        "Fun": series.total_functions(),
        "Var": series.total_variables(),
        "Type": series.total_types(),
        "Ann": series.annotation_loc(),
        "ST": series.st_loc(),
    }


def run_table1(servers: Sequence[str] = ("httpd", "nginx", "vsftpd", "opensshd")) -> Dict[str, Dict[str, int]]:
    results: Dict[str, Dict[str, int]] = {}
    for name in servers:
        row: Dict[str, int] = {}
        row.update(profile_server(name))
        row.update(effort_row(name))
        results[name] = row
    return results


def render(results: Dict[str, Dict[str, int]]) -> str:
    keys = ["SL", "LL", "QP", "Per", "Vol", "Num", "LOC", "Fun", "Var", "Type", "Ann", "ST"]
    headers = ["server"] + keys
    rows: List[List] = []
    for name, row in results.items():
        rows.append([name] + [row.get(k, "-") for k in keys])
        paper = dict(PAPER_PROFILING.get(name, {}))
        paper.update(ALL_SERIES[name].paper_row)
        rows.append([f"  (paper)"] + [paper.get(k, "-") for k in keys])
    return render_table(
        "Table 1: programs, updates, and engineering effort",
        headers,
        rows,
        note=(
            "Profiling columns measured by the quiescence profiler on the "
            "simulated servers; Updates/Changes describe our simulated "
            "patch series (Type computed structurally); paper rows refer "
            "to the real upstream releases."
        ),
    )
