"""SPEC CPU2006 analogue: allocator-instrumentation microbenchmarks.

The paper instruments all SPEC CPU2006 benchmarks with the static+dynamic
allocator instrumentation and reports ≤5% overhead except for perlbench
(36%), an allocation-dominated outlier.  We reproduce the experiment with
synthetic compute/allocation mixes: each "benchmark" performs a fixed
amount of work split between pure compute and malloc/free traffic; the
``perlbench`` profile is allocation-dominated.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.reporting import render_table
from repro.kernel.kernel import Kernel
from repro.kernel.process import sim_function
from repro.mcr.annotations import Annotations
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import GlobalVar, Program, load_program
from repro.types.descriptors import INT64, PointerType, StructType

# (allocations per work unit, compute ns per work unit): the mix defines
# how allocation-sensitive the benchmark is.
WORKLOAD_MIXES: Dict[str, Dict[str, int]] = {
    "bzip2":     {"allocs": 1, "compute_ns": 48_000, "units": 60},
    "gcc":       {"allocs": 5, "compute_ns": 42_000, "units": 60},
    "mcf":       {"allocs": 2, "compute_ns": 52_000, "units": 60},
    "gobmk":     {"allocs": 3, "compute_ns": 46_000, "units": 60},
    "hmmer":     {"allocs": 1, "compute_ns": 55_000, "units": 60},
    "libquantum":{"allocs": 2, "compute_ns": 50_000, "units": 60},
    "perlbench": {"allocs": 28, "compute_ns": 26_000, "units": 60},
}

PAPER_NOTE = "paper: <=5% overhead on all benchmarks except perlbench (36%)"

_NODE = StructType("spec_node", [("value", INT64), ("next", PointerType(None))])


def _make_spec_program(name: str, mix: Dict[str, int]) -> Program:
    @sim_function
    def spec_main(sys):
        crt = sys.process.crt
        for _unit in range(mix["units"]):
            live: List[int] = []
            for _ in range(mix["allocs"]):
                node = crt.malloc_typed(sys.thread, _NODE)
                crt.set(node, _NODE, "value", 42)
                live.append(node)
            yield from sys.cpu(mix["compute_ns"])
            for node in live:
                crt.free(node)
        yield from sys.exit(0)

    return Program(
        name=f"spec-{name}",
        version="2006",
        globals_=[GlobalVar("spec_counter", INT64)],
        main=spec_main,
        types={"spec_node": _NODE},
        annotations=Annotations(),
    )


def measure_spec(name: str, instrumented: bool) -> int:
    """Virtual run time of one SPEC-analogue benchmark."""
    mix = WORKLOAD_MIXES[name]
    kernel = Kernel()
    program = _make_spec_program(name, mix)
    if instrumented:
        build = BuildConfig.dinstr()
        session = MCRSession(kernel, program, build)
        process = load_program(kernel, program, build=build, session=session)
    else:
        process = load_program(kernel, program, build=BuildConfig.baseline())
    start_ns = kernel.clock.now_ns
    kernel.run(until=lambda: process.exited, max_steps=5_000_000)
    return kernel.clock.now_ns - start_ns


def run_spec(benchmarks: Sequence[str] = tuple(WORKLOAD_MIXES)) -> Dict[str, float]:
    """Instrumented/baseline run-time ratio per benchmark."""
    results: Dict[str, float] = {}
    for name in benchmarks:
        base_ns = measure_spec(name, instrumented=False)
        instr_ns = measure_spec(name, instrumented=True)
        results[name] = instr_ns / base_ns
    return results


def render(results: Dict[str, float]) -> str:
    rows = [[name, ratio, f"{(ratio - 1) * 100:.1f}%"] for name, ratio in results.items()]
    return render_table(
        "SPEC CPU2006 analogue: allocator instrumentation overhead",
        ["benchmark", "normalized", "overhead"],
        rows,
        note=PAPER_NOTE,
    )
