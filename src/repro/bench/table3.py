"""Table 3: run time normalized against the baseline.

For each server and each cumulative instrumentation configuration
(Unblock, +SInstr, +DInstr, +QDet — plus the ``nginx_reg`` region-
instrumented row), run the server's §8 benchmark and report virtual run
time normalized against the uninstrumented baseline.

Expected shape (paper): unblockification ≈ free; the allocator
instrumentation of +SInstr is the visible cost (worst case httpd ≈ 1.04);
+DInstr/+QDet add little; region instrumentation makes nginx_reg the
outlier (≈ 1.19).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import PRIMARY_SERVERS, SERVER_BENCHES, boot_server, build_ladder
from repro.bench.reporting import render_table

PAPER_TABLE3 = {
    "httpd": {"Unblock": 0.977, "+SInstr": 1.040, "+DInstr": 1.043, "+QDet": 1.047},
    "nginx": {"Unblock": 1.000, "+SInstr": 1.000, "+DInstr": 1.000, "+QDet": 1.000},
    "nginx_reg": {"Unblock": 1.000, "+SInstr": 1.175, "+DInstr": 1.192, "+QDet": 1.186},
    "vsftpd": {"Unblock": 1.024, "+SInstr": 1.027, "+DInstr": 1.028, "+QDet": 1.028},
    "opensshd": {"Unblock": 0.999, "+SInstr": 0.999, "+DInstr": 1.001, "+QDet": 1.001},
}


def measure_runtime_ns(server: str, config_name: str, warmup: bool = True) -> int:
    """Run one server under one configuration; return workload duration.

    A warmup pass runs first: the paper measures 100k-request runs, where
    one-time costs (first-touch soft-dirty faults after startup, allocator
    pool growth) are fully amortized; our scaled-down run reproduces that
    steady state by warming up before the timed window.
    """
    spec = SERVER_BENCHES[server]
    ladder = build_ladder(instrument_regions=spec["instrument_regions"])
    build = ladder[config_name]()
    world = boot_server(server, build=build)
    if warmup:
        spec["workload"]().run(world.kernel)
    workload = spec["workload"]()
    return workload.run(world.kernel)


def run_table3(
    servers: Sequence[str] = ("httpd", "nginx", "nginx_reg", "vsftpd", "opensshd"),
    configs: Sequence[str] = ("Unblock", "+SInstr", "+DInstr", "+QDet"),
) -> Dict[str, Dict[str, float]]:
    """Normalized run times, keyed by server then configuration."""
    results: Dict[str, Dict[str, float]] = {}
    for server in servers:
        base_ns = measure_runtime_ns(server, "baseline")
        row: Dict[str, float] = {}
        for config in configs:
            row[config] = measure_runtime_ns(server, config) / base_ns
        results[server] = row
    return results


def render(results: Dict[str, Dict[str, float]]) -> str:
    configs = list(next(iter(results.values())).keys())
    headers = ["server"] + configs + [f"paper:{c}" for c in configs]
    rows: List[List] = []
    for server, row in results.items():
        paper = PAPER_TABLE3.get(server, {})
        rows.append(
            [server]
            + [row[c] for c in configs]
            + [paper.get(c, "-") for c in configs]
        )
    return render_table(
        "Table 3: run time normalized against the baseline",
        headers,
        rows,
        note="Measured in deterministic virtual time; compare shapes, not digits.",
    )
