"""Planned-migration benchmark (``bench migrate``): brownout vs crash RTO.

Three grids:

* **sweep** — pre-copy cadence × convergence threshold × server: each
  cell migrates a serving primary to a fresh target and reports the
  pre-copy rounds and bytes the policy produced, the final stop-and-copy
  size, and the client-perceived **brownout** (longest completed-response
  gap spanning the cutover).  The headline claim: a planned migration
  loses **zero** requests at every cadence and threshold, and its
  brownout — dominated by the quiescence wait, exactly like a
  whole-tree live update — stays within a small constant factor of the
  crash-failover RTO and ~40x inside the downtime budget.
* **head-to-head** — per server, the migration brownout next to the
  ``bench failover`` crash RTO measured under the same cadence, same
  windows, same request stream.
* **fault drills** — one row per migration-plane fault site: pre-copy
  faults must cost a round (the migration still completes); stop-and-copy
  and cutover faults must abort cleanly with the primary still serving.
  Every cell converges: migrated XOR primary-kept-serving.

Wired into the CLI as ``python -m repro bench migrate [--smoke]
[--json]``; the JSON lands in ``BENCH_migrate.json`` and CI asserts zero
lost requests with the brownout inside the downtime budget.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bench.reporting import fmt_cell, render_table
from repro.fleet.failover import FailoverDrill
from repro.fleet.migration import MigrationDrill
from repro.mcr.config import MCRConfig
from repro.mcr.faults import MIGRATION_SITES

SERVERS: Tuple[str, ...] = ("simple", "memcache", "httpd")
SMOKE_SERVERS: Tuple[str, ...] = ("simple", "memcache")

# Pre-copy cadences (ms of serving between delta rounds) × convergence
# thresholds (stop pre-copying once a round ships fewer bytes).
CADENCES_MS: Tuple[int, ...] = (20, 60)
SMOKE_CADENCES_MS: Tuple[int, ...] = (20,)
THRESHOLD_BYTES: Tuple[int, ...] = (0, 4096, 65536)
SMOKE_THRESHOLD_BYTES: Tuple[int, ...] = (4096,)

TRIALS = 2
SMOKE_TRIALS = 1

# "At most comparable": the planned brownout may not exceed this many
# multiples of the measured crash RTO.  The two decompose differently:
# brownout = quiescence wait (bounded by the longest thread sleep
# period, ~20 ms for these servers) + final copy + promote (~3 ms);
# RTO = failure-detection timeout (5 ms) + promote (~3 ms).  That puts
# a clean stop-and-copy at just under 3x the crash RTO — the same
# order, both ~40x inside the 1 s budget, and on par with the
# whole-tree live-update blackout ``bench updatetime`` measures.
COMPARABLE_FACTOR = 3.0


def _drill_config(blackbox_path: Optional[str] = None) -> MCRConfig:
    return MCRConfig(blackbox_path=blackbox_path)


def _sweep_row(
    server: str, cadence_ms: int, threshold: int, trials: int
) -> Dict[str, Any]:
    brownout_ms: List[float] = []
    lost = 0
    rounds = 0
    reseeds = 0
    precopy_kb = 0
    stopcopy_bytes = 0
    image_kb = 0
    migrated = True
    converged = True
    slo_ok = True
    for _trial in range(trials):
        drill = MigrationDrill(
            server,
            config=_drill_config(),
            precopy_interval_ns=cadence_ms * 1_000_000,
            convergence_bytes=threshold,
        )
        data = drill.run().to_dict()
        migrated = migrated and data["migrated"] and data["error"] is None
        converged = converged and (
            data["converged_precopy"] or threshold == 0
        )
        if data["brownout_ms"] is not None:
            brownout_ms.append(data["brownout_ms"])
        if data["perceived"] is not None:
            slo_ok = slo_ok and data["perceived"]["slo_ok"]
        lost += data["requests_lost"]
        rounds += data["precopy_rounds"]
        reseeds += data["reseeds"]
        precopy_kb += data["precopy_kb_total"]
        stopcopy_bytes = max(stopcopy_bytes, data["stopcopy_bytes"] or 0)
        image_kb = max(image_kb, data["image_kb"])
    brownout_ms.sort()
    return {
        "server": server,
        "cadence_ms": cadence_ms,
        "threshold_bytes": threshold,
        "trials": trials,
        "migrated": migrated,
        "converged_precopy": converged,
        "rounds_avg": round(rounds / trials, 1),
        "reseeds": reseeds,
        "image_kb": image_kb,
        "precopy_kb_avg": round(precopy_kb / trials, 1),
        "stopcopy_kb": round(stopcopy_bytes / 1024, 2),
        "brownout_p50_ms": brownout_ms[len(brownout_ms) // 2] if brownout_ms else None,
        "brownout_p99_ms": brownout_ms[-1] if brownout_ms else None,
        "requests_lost": lost,
        "slo_ok": slo_ok,
    }


def _head_to_head(server: str, cadence_ms: int) -> Dict[str, Any]:
    """Planned brownout vs crash RTO under the same cadence and stream."""
    migrate = MigrationDrill(
        server,
        config=_drill_config(),
        precopy_interval_ns=cadence_ms * 1_000_000,
    ).run().to_dict()
    failover = FailoverDrill(
        server,
        config=MCRConfig(checkpoint_interval_ns=cadence_ms * 1_000_000),
    ).run().to_dict()
    brownout = migrate["brownout_ms"]
    rto = failover["rto_ms"]
    return {
        "server": server,
        "cadence_ms": cadence_ms,
        "migrate_brownout_ms": brownout,
        "failover_rto_ms": rto,
        "brownout_over_rto": (
            None if not brownout or not rto else round(brownout / rto, 3)
        ),
        "migrate_lost": migrate["requests_lost"],
        "failover_lost": failover["requests_lost"],
        "comparable": (
            brownout is not None
            and rto is not None
            and brownout <= rto * COMPARABLE_FACTOR
        ),
    }


def _fault_row(server: str, site: str, blackbox_path: Optional[str]) -> Dict[str, Any]:
    from repro.bench.faultmatrix import run_migration_cell

    return run_migration_cell(server, site, blackbox_path=blackbox_path)


def run_migrate(
    smoke: bool = False, blackbox_path: Optional[str] = None
) -> Dict[str, Any]:
    servers = SMOKE_SERVERS if smoke else SERVERS
    cadences = SMOKE_CADENCES_MS if smoke else CADENCES_MS
    thresholds = SMOKE_THRESHOLD_BYTES if smoke else THRESHOLD_BYTES
    trials = SMOKE_TRIALS if smoke else TRIALS
    sweep = [
        _sweep_row(server, cadence_ms, threshold, trials)
        for server in servers
        for cadence_ms in cadences
        for threshold in thresholds
    ]
    head_to_head = [_head_to_head(server, cadences[0]) for server in servers]
    fault_server = servers[0]
    drills = [
        _fault_row(fault_server, site, blackbox_path)
        for site in MIGRATION_SITES
    ]
    budget_ms = MCRConfig().downtime_budget_ns / 1e6
    summary = {
        "downtime_budget_ms": budget_ms,
        "clean_zero_loss": all(row["requests_lost"] == 0 for row in sweep),
        "all_migrated": all(row["migrated"] for row in sweep),
        "brownout_within_budget": all(
            row["brownout_p99_ms"] is not None
            and row["brownout_p99_ms"] <= budget_ms
            for row in sweep
        ),
        "brownout_at_most_comparable": all(
            row["comparable"] for row in head_to_head
        ),
        "all_drills_converged": all(row["converged"] for row in drills),
        "drills_zero_loss": all(row["requests_lost"] == 0 for row in drills),
    }
    return {
        "sweep": sweep,
        "head_to_head": head_to_head,
        "drills": drills,
        "summary": summary,
    }


def render(results: Dict[str, Any]) -> str:
    sweep_rows = [
        [
            row["server"],
            row["cadence_ms"],
            row["threshold_bytes"],
            row["rounds_avg"],
            row["precopy_kb_avg"],
            row["stopcopy_kb"],
            fmt_cell(row["converged_precopy"]),
            fmt_cell(row["brownout_p50_ms"]),
            fmt_cell(row["brownout_p99_ms"]),
            row["requests_lost"],
            fmt_cell(row["migrated"]),
        ]
        for row in results["sweep"]
    ]
    h2h_rows = [
        [
            row["server"],
            row["cadence_ms"],
            fmt_cell(row["migrate_brownout_ms"]),
            fmt_cell(row["failover_rto_ms"]),
            fmt_cell(row["brownout_over_rto"]),
            row["migrate_lost"],
            row["failover_lost"],
            fmt_cell(row["comparable"]),
        ]
        for row in results["head_to_head"]
    ]
    drill_rows = [
        [
            row["server"],
            row["site"],
            fmt_cell(row.get("fired")),
            fmt_cell(row.get("migrated")),
            fmt_cell(row.get("primary_survived")),
            row.get("precopy_failures"),
            row.get("requests_lost"),
            fmt_cell(row.get("converged")),
        ]
        for row in results["drills"]
    ]
    summary = results["summary"]
    parts = [
        render_table(
            "Planned migration: pre-copy cadence x convergence threshold",
            ["server", "cadence_ms", "thresh_b", "rounds", "precopy_kb",
             "stopcopy_kb", "converged", "brownout_p50_ms", "brownout_p99_ms",
             "lost", "migrated"],
            sweep_rows,
        ),
        "",
        render_table(
            "Head to head: planned brownout vs crash RTO",
            ["server", "cadence_ms", "brownout_ms", "crash_rto_ms",
             "brownout/rto", "mig_lost", "fo_lost", "comparable"],
            h2h_rows,
            note=(
                "brownout = longest completed-response gap spanning the "
                "cutover; RTO = crash to first standby-served completion"
            ),
        ),
        "",
        render_table(
            "Migration fault drills",
            ["server", "site", "fired", "migrated", "primary", "round_fails",
             "lost", "converged"],
            drill_rows,
            note=(
                f"clean_zero_loss={fmt_cell(summary['clean_zero_loss'])}  "
                f"brownout_within_budget="
                f"{fmt_cell(summary['brownout_within_budget'])}  "
                f"comparable_to_rto="
                f"{fmt_cell(summary['brownout_at_most_comparable'])}  "
                f"drills_converged={fmt_cell(summary['all_drills_converged'])}"
            ),
        ),
    ]
    return "\n".join(parts)
