"""Fleet-scale rolling update benchmark (``bench fleetroll``).

Boots a 16-node fleet of MCR-enabled servers inside one Python process
(each node = its own kernel, virtual clock, server tree, and obs
collector) and drives SLO-gated canary → wave rollouts across it:

* **wave sweep** — the same clean v1 → v2 rollout at several wave
  growth factors (serial one-at-a-time, geometric, and big-bang), and
  for the memcache fleet in full mode.  Per row: fleet-wide requests
  lost, per-node blackout p99, fleet-perceived blackout, rollout
  duration.  The headline claim: with the load balancer shifting the
  request stream around each node's blackout, a clean rollout loses
  **zero** requests and every node's blackout fits the downtime budget.
* **fault matrix** — faultmatrix-style rows injecting one mid-wave
  fault per rollout, crossed with the two fleet policies.  ``revert``
  must end the fleet fully old-version; ``converge`` fully new-version
  — either way the end state is uniform, never mixed, which each row
  asserts via per-node versions, protocol-level version probes, and the
  faulted node's fingerprint-verified rollback.
* **isolation row** — the quiet-stream regression at bench level:
  update one node of an idle fleet and assert every bystander's
  ``TreeFingerprint`` stayed byte-identical.

Wired into the CLI as ``python -m repro bench fleetroll [--smoke]
[--json]``; the JSON lands in ``BENCH_fleetroll.json`` and CI asserts
the clean rollout rows lost zero requests and every fault row ended
uniform.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.reporting import fmt_cell, render_table
from repro.clock import ns_to_ms
from repro.fleet import Fleet, Orchestrator, wave_plan
from repro.mcr.config import MCRConfig
from repro.mcr.faults import FaultPlan

FLEET_SIZE = 16

# (label, canary, growth): serial one-node-at-a-time, geometric canary
# widening, and near-big-bang (canary then everything).
WAVE_SWEEP: List[Tuple[str, int, int]] = [
    ("serial", 1, 1),
    ("canary-x2", 1, 2),
    ("canary-x4", 1, 4),
    ("big-bang", 1, FLEET_SIZE),
]
SMOKE_WAVE_SWEEP: List[Tuple[str, int, int]] = [
    ("serial", 1, 1),
    ("canary-x4", 1, 4),
]

# Mid-wave fault sites: each makes one second-wave node's update fail in
# a distinct pipeline phase (memory fault mid-transfer, descriptor
# handoff death, replay conflict, commit-prepare failure) so the policy
# machinery is exercised against real rollbacks, not one canned error.
FAULT_SITES = [
    "transfer.memory",
    "restart.fd_handoff",
    "reinit.replay",
    "commit.prepare",
]
SMOKE_FAULT_SITES = ["transfer.memory"]
POLICIES = ("revert", "converge")


def _clean_rollout_row(
    label: str,
    canary: int,
    growth: int,
    server: str,
    nodes: int,
    requests_per_window: int,
) -> Dict[str, object]:
    fleet = Fleet.boot(nodes, server=server)
    try:
        orchestrator = Orchestrator(
            fleet,
            canary=canary,
            wave_growth=growth,
            requests_per_window=requests_per_window,
        )
        # Steady-state traffic before the rollout so the blackout window
        # has live streams on both sides.
        orchestrator.serve_windows(2)
        report = orchestrator.rollout(to_version=2)
        row = report.to_dict()
        row["label"] = label
        row["server"] = server
        row["wave_plan"] = wave_plan(nodes, canary=canary, growth=growth)
        row["served_uniform"] = _served_uniform(fleet, report.to_version)
        return row
    finally:
        fleet.teardown()


def _served_uniform(fleet: Fleet, expected: int) -> Optional[bool]:
    """Protocol-probed: does every node *serve* the expected version?"""
    served = fleet.served_versions()
    if any(version is None for version in served):
        return None
    return set(served) == {expected}


def _fault_row(
    site: str,
    policy: str,
    nodes: int,
    requests_per_window: int,
) -> Dict[str, object]:
    fleet = Fleet.boot(nodes, server="simple")
    try:
        orchestrator = Orchestrator(
            fleet,
            on_fault=policy,
            wave_growth=4,
            requests_per_window=requests_per_window,
        )
        orchestrator.serve_windows(1)
        # Arm the fault on a second-wave node: the canary goes clean, so
        # the failure lands mid-rollout with commits already banked.
        faulted_id = fleet.nodes[1].node_id
        report = orchestrator.rollout(
            to_version=2, fault_plans={faulted_id: FaultPlan().at(site)}
        )
        faulted = [o for o in report.outcomes if o.node_id == faulted_id]
        fault_outcome = faulted[0] if faulted else None
        expected_end = (
            report.to_version if report.outcome == "updated"
            else report.from_version
        )
        end_versions = set(fleet.versions())
        return {
            "site": site,
            "policy": policy,
            "fired": fault_outcome is not None
            and fault_outcome.failure_site == site,
            "outcome": report.outcome,
            "uniform": report.uniform,
            "end_version": expected_end if end_versions == {expected_end} else None,
            "served_uniform": _served_uniform(fleet, expected_end),
            "rollback_verified": (
                fault_outcome.rollback_verified if fault_outcome else None
            ),
            "reverted_nodes": len(report.reverted_nodes),
            "converge_retries": report.converge_retries,
            "requests_lost": fleet.requests_lost,
        }
    finally:
        fleet.teardown()


def _isolation_row(nodes: int = 4) -> Dict[str, object]:
    """Quiet-stream cross-node isolation, asserted byte-for-byte."""
    fleet = Fleet.boot(nodes, server="simple")
    try:
        before = fleet.fingerprints()
        result = fleet.nodes[0].update(to_version=2)
        after = fleet.fingerprints()
        bystanders = [node.node_id for node in fleet.nodes[1:]]
        return {
            "nodes": nodes,
            "updated_node": fleet.nodes[0].node_id,
            "update_committed": result.committed,
            "bystanders_identical": all(
                before[nid].matches(after[nid]) for nid in bystanders
            ),
            "updated_changed": not before[0].matches(after[0]),
        }
    finally:
        fleet.teardown()


def run_fleetroll(smoke: bool = False) -> Dict[str, object]:
    nodes = FLEET_SIZE
    requests_per_window = 2 * nodes
    sweep = SMOKE_WAVE_SWEEP if smoke else WAVE_SWEEP
    sites = SMOKE_FAULT_SITES if smoke else FAULT_SITES
    fault_nodes = 8  # fault rollouts need waves, not scale

    waves = [
        _clean_rollout_row(label, canary, growth, "simple", nodes,
                           requests_per_window)
        for label, canary, growth in sweep
    ]
    if not smoke:
        waves.append(
            _clean_rollout_row("canary-x4", 1, 4, "memcache", nodes,
                               requests_per_window)
        )
    faults = [
        _fault_row(site, policy, fault_nodes, fault_nodes)
        for site in sites
        for policy in POLICIES
    ]
    isolation = _isolation_row()
    budget_ms = ns_to_ms(MCRConfig().downtime_budget_ns)
    return {
        "fleet_size": nodes,
        "downtime_budget_ms": budget_ms,
        "waves": waves,
        "faults": faults,
        "isolation": isolation,
        # Headline invariants, asserted by CI off the JSON artifact.
        "clean_zero_loss": all(row["requests_lost"] == 0 for row in waves),
        "clean_slo_ok": all(
            row["node_blackout_p99_ms"] <= budget_ms for row in waves
        ),
        "all_clean_uniform": all(row["uniform"] for row in waves),
        "all_fault_uniform": all(row["uniform"] for row in faults),
        "isolation_ok": isolation["bystanders_identical"]
        and isolation["updated_changed"],
    }


def render(results: Dict[str, object]) -> str:
    wave_rows = [
        [
            row["label"],
            row["server"],
            "/".join(str(s) for s in row["wave_plan"]),
            row["waves"],
            fmt_cell(row["uniform"]),
            row["requests_sent"],
            row["requests_lost"],
            row["requests_shifted"],
            fmt_cell(row["node_blackout_p99_ms"]),
            fmt_cell(row["fleet_blackout_ms"]),
            fmt_cell(row["rollout_ms"]),
        ]
        for row in results["waves"]
    ]
    fault_rows = [
        [
            row["site"],
            row["policy"],
            fmt_cell(row["fired"]),
            row["outcome"],
            fmt_cell(row["uniform"]),
            fmt_cell(row["served_uniform"]),
            fmt_cell(row["rollback_verified"]),
            row["reverted_nodes"],
            row["converge_retries"],
            row["requests_lost"],
        ]
        for row in results["faults"]
    ]
    isolation = results["isolation"]
    summary = (
        f"fleet={results['fleet_size']} nodes, "
        f"budget={results['downtime_budget_ms']:.0f} ms, "
        f"clean_zero_loss={results['clean_zero_loss']}, "
        f"clean_slo_ok={results['clean_slo_ok']}, "
        f"all_fault_uniform={results['all_fault_uniform']}, "
        f"isolation_ok={results['isolation_ok']}"
    )
    return "\n".join(
        [
            render_table(
                "Fleet rollout: wave size sweep (clean v1 -> v2)",
                [
                    "label", "server", "plan", "waves", "uniform", "sent",
                    "lost", "shifted", "node_p99_ms", "fleet_blk_ms",
                    "rollout_ms",
                ],
                wave_rows,
                note=(
                    "lost=0: the balancer shifts each node's stream around "
                    "its blackout; in-flight requests ride through the "
                    "update and complete after commit"
                ),
            ),
            "",
            render_table(
                "Fleet rollout: mid-wave fault x policy",
                [
                    "site", "policy", "fired", "outcome", "uniform",
                    "served_uni", "rb_verified", "reverted", "retries",
                    "lost",
                ],
                fault_rows,
                note=(
                    "uniform: the fleet ends all-old (revert) or all-new "
                    "(converge), never mixed; served_uni probes the live "
                    "servers, not orchestrator bookkeeping"
                ),
            ),
            "",
            f"isolation: update on node {isolation['updated_node']} left "
            f"{isolation['nodes'] - 1} bystanders byte-identical="
            f"{isolation['bystanders_identical']} "
            f"(updated node changed={isolation['updated_changed']})",
            "",
            summary,
        ]
    )
