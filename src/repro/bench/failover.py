"""Checkpoint-cadence vs RTO failover benchmark (``bench failover``).

Two grids:

* **cadence sweep** — for each server, crash the primary mid-window at
  several incremental-checkpoint cadences and measure what clients see:
  RTO (crash to first standby-served completion), requests lost
  end-to-end (in-flight re-issues included), client blackout, and the
  bytes shipped (full image size vs per-delta average).  The headline
  claim: a clean failover to a warm standby loses **zero** requests and
  recovers in milliseconds — orders of magnitude inside the 1 s
  downtime budget — at every cadence, with cadence only trading delta
  traffic against standby staleness.
* **fault drills** — one row per checkpoint-plane fault site (plus the
  torn-image + failed-promotion double fault): each drill must converge
  with either the primary continuing cleanly (checkpoint-side faults)
  or the standby taking over (stream/restore/promote faults), never an
  unhandled exception, never a lost request.

Wired into the CLI as ``python -m repro bench failover [--smoke]
[--json]``; the JSON lands in ``BENCH_failover.json`` and CI asserts
zero lost requests on clean failover with RTO inside the budget.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bench.reporting import fmt_cell, render_table
from repro.fleet.failover import FailoverDrill
from repro.mcr.config import MCRConfig
from repro.mcr.faults import FaultPlan

SERVERS: Tuple[str, ...] = ("simple", "memcache", "httpd")
SMOKE_SERVERS: Tuple[str, ...] = ("simple", "memcache")

# Incremental-checkpoint cadences swept against RTO (ms between deltas).
CADENCES_MS: Tuple[int, ...] = (25, 100, 400)
SMOKE_CADENCES_MS: Tuple[int, ...] = (50,)

TRIALS = 3
SMOKE_TRIALS = 2

# Checkpoint-side faults leave the primary serving; standby-side faults
# force the failover to absorb them.
PRIMARY_FAULT_SITES: Tuple[str, ...] = (
    "checkpoint.capture",
    "checkpoint.write",
    "checkpoint.delta",
)
STANDBY_FAULT_SITES: Tuple[str, ...] = (
    "stream.send",
    "stream.apply",
    "restore.image",
    "standby.promote",
)


def _drill_config(
    cadence_ms: int,
    plan: Optional[FaultPlan] = None,
    blackbox_path: Optional[str] = None,
) -> MCRConfig:
    return MCRConfig(
        faults=plan,
        checkpoint_interval_ns=cadence_ms * 1_000_000,
        blackbox_path=blackbox_path,
    )


def _sweep_row(server: str, cadence_ms: int, trials: int) -> Dict[str, Any]:
    rto_ms: List[float] = []
    blackout_ms: List[float] = []
    lost = 0
    image_kb = 0
    delta_bytes = 0
    deltas = 0
    slo_ok = True
    for trial in range(trials):
        drill = FailoverDrill(
            server,
            config=_drill_config(cadence_ms),
            crash_window=3 + trial,  # vary where in the stream the crash lands
        )
        result = drill.run()
        data = result.to_dict()
        if data["rto_ms"] is not None:
            rto_ms.append(data["rto_ms"])
        if data["perceived"] is not None:
            blackout_ms.append(data["perceived"]["blackout_ms"])
            slo_ok = slo_ok and data["perceived"]["slo_ok"]
        lost += data["requests_lost"]
        image_kb = max(image_kb, data["image_kb"])
        delta_bytes += data["delta_bytes"]
        deltas += data["deltas_sent"]
        slo_ok = slo_ok and data["error"] is None and data["served_after"]
    rto_ms.sort()
    blackout_ms.sort()
    return {
        "server": server,
        "cadence_ms": cadence_ms,
        "trials": trials,
        "image_kb": image_kb,
        "delta_kb_avg": round(delta_bytes / max(deltas, 1) / 1024, 2),
        "rto_p50_ms": rto_ms[len(rto_ms) // 2] if rto_ms else None,
        "rto_p99_ms": rto_ms[-1] if rto_ms else None,
        "blackout_p99_ms": blackout_ms[-1] if blackout_ms else None,
        "requests_lost": lost,
        "slo_ok": slo_ok,
    }


def _fault_row(
    server: str,
    label: str,
    sites: Tuple[str, ...],
    crash: bool,
    blackbox_path: Optional[str] = None,
) -> Dict[str, Any]:
    plan = FaultPlan()
    for site in sites:
        plan.at(site)
    drill = FailoverDrill(
        server, config=_drill_config(25, plan, blackbox_path), crash=crash
    )
    data = drill.run().to_dict()
    recovered = data["promoted"] or data["cold_restored"]
    converged = (
        data["error"] is None
        and data["served_after"]
        and (recovered != data["primary_survived"])  # the XOR property
    )
    return {
        "server": server,
        "site": label,
        "crash": crash,
        "fired": bool(data["fired_sites"]) or bool(plan.injected),
        "promoted": data["promoted"],
        "cold_restored": data["cold_restored"],
        "primary_survived": data["primary_survived"],
        "standby_stale": data["standby_stale"],
        "requests_lost": data["requests_lost"],
        "converged": converged,
    }


def run_failover(
    smoke: bool = False, blackbox_path: Optional[str] = None
) -> Dict[str, Any]:
    servers = SMOKE_SERVERS if smoke else SERVERS
    cadences = SMOKE_CADENCES_MS if smoke else CADENCES_MS
    trials = SMOKE_TRIALS if smoke else TRIALS
    sweep = [
        _sweep_row(server, cadence_ms, trials)
        for server in servers
        for cadence_ms in cadences
    ]
    fault_server = servers[0]
    drills = [
        _fault_row(fault_server, site, (site,), crash=False,
                   blackbox_path=blackbox_path)
        for site in PRIMARY_FAULT_SITES
    ]
    drills += [
        _fault_row(fault_server, site, (site,), crash=True,
                   blackbox_path=blackbox_path)
        for site in STANDBY_FAULT_SITES
    ]
    drills.append(
        _fault_row(
            fault_server,
            "checkpoint.write+standby.promote",
            ("checkpoint.write", "standby.promote"),
            crash=True,
            blackbox_path=blackbox_path,
        )
    )
    budget_ms = MCRConfig().downtime_budget_ns / 1e6
    summary = {
        "downtime_budget_ms": budget_ms,
        "clean_zero_loss": all(row["requests_lost"] == 0 for row in sweep),
        "rto_all_within_budget": all(
            row["rto_p99_ms"] is not None and row["rto_p99_ms"] <= budget_ms
            for row in sweep
        ),
        "all_drills_converged": all(row["converged"] for row in drills),
        "drills_zero_loss": all(row["requests_lost"] == 0 for row in drills),
    }
    return {"sweep": sweep, "drills": drills, "summary": summary}


def render(results: Dict[str, Any]) -> str:
    sweep_rows = [
        [
            row["server"],
            row["cadence_ms"],
            row["image_kb"],
            row["delta_kb_avg"],
            fmt_cell(row["rto_p50_ms"]),
            fmt_cell(row["rto_p99_ms"]),
            fmt_cell(row["blackout_p99_ms"]),
            row["requests_lost"],
            fmt_cell(row["slo_ok"]),
        ]
        for row in results["sweep"]
    ]
    drill_rows = [
        [
            row["server"],
            row["site"],
            fmt_cell(row["crash"]),
            fmt_cell(row["fired"]),
            fmt_cell(row["promoted"]),
            fmt_cell(row["cold_restored"]),
            fmt_cell(row["primary_survived"]),
            row["requests_lost"],
            fmt_cell(row["converged"]),
        ]
        for row in results["drills"]
    ]
    summary = results["summary"]
    parts = [
        render_table(
            "Failover: checkpoint cadence vs RTO",
            ["server", "cadence_ms", "image_kb", "delta_kb", "rto_p50_ms",
             "rto_p99_ms", "blackout_p99_ms", "lost", "slo_ok"],
            sweep_rows,
        ),
        "",
        render_table(
            "Failover fault drills",
            ["server", "site", "crash", "fired", "promoted", "cold",
             "primary", "lost", "converged"],
            drill_rows,
            note=(
                f"clean_zero_loss={fmt_cell(summary['clean_zero_loss'])}  "
                f"rto_within_budget={fmt_cell(summary['rto_all_within_budget'])}  "
                f"drills_converged={fmt_cell(summary['all_drills_converged'])}"
            ),
        ),
    ]
    return "\n".join(parts)
