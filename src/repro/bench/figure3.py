"""Figure 3: state-transfer time vs number of open connections.

For each server and each connection count N: boot, run a short benchmark
(populating state), open and hold N connections, trigger a live update to
the next release, and record the mutable-tracing state-transfer time from
the update's timing breakdown.

Expected shape (paper): transfer time grows with N for every program;
vsftpd and opensshd grow fastest (each connection is a whole process to
pair and transfer); baselines sit in tens-to-hundreds of ms; dirty-object
tracking keeps the transferred fraction of traced bytes low.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import render_table
from repro.clock import ns_to_ms
from repro.mcr.ctl import McrCtl
from repro.workloads.holders import ConnectionHolder

# The paper's x-axis is 0..100; the simulator's default is scaled down
# (per-connection-process servers fork one process per held connection).
DEFAULT_CONNECTIONS = (0, 5, 10, 20, 40)

PAPER_NOTES = {
    "baseline_ms": (28, 187),       # transfer time range with 0 connections
    "avg_increase_ms_at_100": 371,  # average growth at 100 connections
    "dirty_reduction": (0.68, 0.86),
}


class Figure3Point:
    def __init__(self, server: str, connections: int) -> None:
        self.server = server
        self.connections = connections
        self.transfer_ms = 0.0
        self.total_update_ms = 0.0
        self.dirty_reduction = 0.0
        self.committed = False
        self.error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "server": self.server,
            "connections": self.connections,
            "transfer_ms": self.transfer_ms,
            "total_update_ms": self.total_update_ms,
            "dirty_reduction": self.dirty_reduction,
            "committed": self.committed,
            "error": self.error,
        }


def measure_point(server: str, connections: int, to_version: int = 2) -> Figure3Point:
    point = Figure3Point(server, connections)
    spec = SERVER_BENCHES[server]
    world = boot_server(server)
    # Populate some post-startup state first (the paper measures "after
    # completing the execution of our benchmarks").
    spec["workload"]().run(world.kernel)
    holder = None
    if connections:
        holder = ConnectionHolder(world.port, connections, spec["holder_kind"])
        holder.establish(world.kernel, max_steps=20_000_000)
        if holder.errors:
            point.error = f"{holder.errors} connections failed to establish"
            return point
    ctl = McrCtl(world.kernel, world.session)
    result = ctl.live_update(spec["make_program"](to_version))
    point.committed = result.committed
    if not result.committed:
        point.error = str(result.error)
        return point
    point.transfer_ms = ns_to_ms(result.transfer_ns)
    point.total_update_ms = result.total_ms()
    if result.transfer_report is not None:
        point.dirty_reduction = result.transfer_report.aggregate_reduction()
    if holder is not None:
        holder.finish(world.kernel)
    return point


def run_figure3(
    servers: Sequence[str] = ("httpd", "nginx", "vsftpd", "opensshd"),
    connection_counts: Sequence[int] = DEFAULT_CONNECTIONS,
) -> Dict[str, List[Figure3Point]]:
    return {
        server: [measure_point(server, n) for n in connection_counts]
        for server in servers
    }


def render(results: Dict[str, List[Figure3Point]]) -> str:
    counts = [p.connections for p in next(iter(results.values()))]
    headers = ["server"] + [f"N={n}" for n in counts] + ["reduction@max"]
    rows = []
    for server, points in results.items():
        row = [server]
        for point in points:
            row.append(f"{point.transfer_ms:.1f}ms" if point.committed else "FAIL")
        row.append(f"{points[-1].dirty_reduction:.0%}")
        rows.append(row)
    return render_table(
        "Figure 3: state transfer time vs open connections",
        headers,
        rows,
        note=(
            "Paper: 28-187 ms baselines, +371 ms average at 100 connections, "
            "steepest growth for per-connection-process servers; 68-86% of "
            "traced bytes skipped thanks to dirty tracking."
        ),
    )
