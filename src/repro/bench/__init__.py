"""Benchmark harnesses: one module per paper table/figure.

* ``table1``    — engineering effort (quiescence profiling, update series,
  annotation/ST LOC).
* ``table2``    — mutable tracing statistics (precise vs likely pointers
  by source/target region).
* ``table3``    — run-time overhead, normalized against the baseline,
  across the cumulative instrumentation configurations.
* ``figure3``   — state-transfer time vs number of open connections.
* ``spec2006``  — allocator-instrumentation overhead on allocation-heavy
  microworkloads (the SPEC CPU2006 analogue, perlbench included).
* ``memusage``  — binary-size and resident-set overhead of MCR metadata.
* ``updatetime``— update-time components: quiescence, record/replay
  (control migration), state transfer.

Every harness returns plain dict/list data plus a ``render_*`` helper, so
the pytest benchmarks can both assert the paper's *shape* and print the
regenerated table.
"""

from repro.bench.harness import BenchWorld, SERVER_BENCHES, boot_server
from repro.bench import reporting

__all__ = ["BenchWorld", "SERVER_BENCHES", "boot_server", "reporting"]
