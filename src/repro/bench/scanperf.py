"""Fast-path scanning performance (this repo's experiment, not a paper table).

Quantifies the memory-engine fast path on two axes:

* **Microbenchmark** — conservative-scan throughput (words/sec) over a
  booted server's data + heap mappings: the bulk kernel with interval-
  indexed resolution and the min/max prefilter vs the reference per-word
  scanner with cascaded resolution.  Asserts the two produce *identical*
  likely-pointer lists and ``words_scanned`` counts (the Table 2/3
  invariance guarantee), and reports how many resolve calls the
  prefilter avoided.
* **End-to-end** — host wall time of one full ``run_update`` per server,
  fast path on vs off (``MCRConfig.fast_scan``/``incremental_scan``).
  The *virtual* update time is asserted identical in both modes: the
  fast path changes how fast the host sweeps memory, never what the
  simulation measures.

Wired into the CLI as ``python -m repro bench scanperf [--json]``; the
JSON lands in ``BENCH_scanperf.json`` and is uploaded as a CI artifact so
the perf trajectory is tracked PR over PR.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import fmt_cell, render_table
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.tracing import conservative
from repro.mcr.tracing.graph import AddressResolver
from repro.types.descriptors import WORD_SIZE


def _scan_targets(process) -> List[Tuple[int, int]]:
    """The opaque areas the microbenchmark sweeps: data + heap mappings."""
    return [
        (m.base, m.size)
        for m in process.space.mappings()
        if m.kind in ("data", "heap")
    ]


def _pointers_key(found) -> List[Tuple[int, int, int, bool]]:
    return [(p.slot_address, p.value, p.target_base, p.interior) for p in found]


def _seed_pointer_field(process, size: int = 256 * 1024) -> None:
    """Fill a scratch data mapping with a pointer-rich word mix.

    A freshly booted server's data mappings are mostly zero, which makes
    the microbenchmark degenerate (every word short-circuits before
    resolution).  Seed a deterministic blend of heap base pointers,
    interior pointers, non-pointer integers, and zero words so the sweep
    exercises the whole kernel: decode, prefilter, resolve, alignment
    rejection.
    """
    rng = random.Random(0xC0FFEE)
    chunks = [
        process.heap.malloc(rng.choice((24, 48, 96, 160))) for _ in range(192)
    ]
    scratch = process.space.map(size, name="scanperf_scratch", kind="data")
    write_word = process.space.write_word
    for slot in range(scratch.base, scratch.end, WORD_SIZE):
        roll = rng.random()
        if roll < 0.25:
            value = rng.choice(chunks)  # base pointer
        elif roll < 0.40:
            value = rng.choice(chunks) + rng.randrange(1, 24)  # interior
        elif roll < 0.55:
            value = rng.getrandbits(48) | 1  # non-pointer junk
        else:
            continue  # zero word
        write_word(slot, value)


def run_scan_micro(server: str = "httpd", repeats: int = 3) -> Dict[str, object]:
    """Bulk vs reference scanner over one booted server's memory image."""
    world = boot_server(server)
    SERVER_BENCHES[server]["workload"]().run(world.kernel)
    process = world.root
    _seed_pointer_field(process)
    targets = _scan_targets(process)
    resolver = AddressResolver(process)

    def sweep_ref() -> Tuple[List, int]:
        found: List = []
        words = 0
        for base, size in targets:
            got, scanned = conservative.scan_range_ref(
                process.space, base, size, resolver.resolve_for_scan
            )
            found.extend(got)
            words += scanned
        return found, words

    def sweep_fast() -> Tuple[List, int]:
        found: List = []
        words = 0
        bounds = resolver.scan_bounds()
        for base, size in targets:
            got, scanned = conservative.scan_range(
                process.space, base, size, resolver.resolve_for_scan, bounds=bounds
            )
            found.extend(got)
            words += scanned
        return found, words

    # Correctness first: identical outputs, and count resolve traffic.
    with obs.collecting(world.kernel.clock) as collector:
        ref_found, ref_words = sweep_ref()
    calls_ref = collector.counters.snapshot().get("scan.resolve_calls", 0)
    resolver.build_index()
    with obs.collecting(world.kernel.clock) as collector:
        fast_found, fast_words = sweep_fast()
    calls_fast = collector.counters.snapshot().get("scan.resolve_calls", 0)
    identical = (
        _pointers_key(ref_found) == _pointers_key(fast_found)
        and ref_words == fast_words
    )
    # Then timing (no collector installed: the publish hook is a no-op).
    ref_s = min(
        _timed(sweep_ref) for _ in range(repeats)
    )
    fast_s = min(
        _timed(sweep_fast) for _ in range(repeats)
    )
    resolver.drop_index()
    return {
        "server": server,
        "ranges": len(targets),
        "words": ref_words,
        "likely_pointers": len(ref_found),
        "identical": identical,
        "ref_words_per_sec": ref_words / ref_s if ref_s else 0.0,
        "fast_words_per_sec": fast_words / fast_s if fast_s else 0.0,
        "speedup": ref_s / fast_s if fast_s else 0.0,
        "resolve_calls_ref": calls_ref,
        "resolve_calls_fast": calls_fast,
        "resolve_calls_avoided": calls_ref - calls_fast,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_update(name: str, fast: bool) -> Dict[str, object]:
    """One full live update with the fast path on or off (host wall time)."""
    spec = SERVER_BENCHES[name]
    world = boot_server(name)
    spec["workload"]().run(world.kernel)
    ctl = McrCtl(world.kernel, world.session)
    config = MCRConfig(fast_scan=fast, incremental_scan=fast)
    with obs.collecting(world.kernel.clock) as collector:
        start = time.perf_counter()
        result = ctl.live_update(spec["make_program"](2), config=config)
        wall_s = time.perf_counter() - start
    if not result.committed:
        raise RuntimeError(f"{name}: update failed: {result.error}")
    counters = collector.counters.snapshot()
    return {
        "wall_ms": wall_s * 1000.0,
        "virtual_total_ms": result.total_ms(),
        "scan_words": counters.get("scan.words", 0),
        "resolve_calls": counters.get("scan.resolve_calls", 0),
        "cache_hits": counters.get("scan.cache_hits", 0),
        "words_from_cache": counters.get("scan.words_from_cache", 0),
        "likely_pointers": sum(
            len(r.likely_pointers)
            for r in result.transfer_report.trace_results.values()
        ),
        "words_scanned_accounted": sum(
            s.words_scanned for s in result.transfer_report.per_process
        ),
    }


def run_scanperf(
    servers: Sequence[str] = ("httpd", "vsftpd"),
    micro_server: str = "httpd",
    repeats: int = 3,
) -> Dict[str, object]:
    results: Dict[str, object] = {"microbench": run_scan_micro(micro_server, repeats)}
    per_server: Dict[str, Dict[str, object]] = {}
    for name in servers:
        slow = _measure_update(name, fast=False)
        fast = _measure_update(name, fast=True)
        per_server[name] = {
            "slow_wall_ms": slow["wall_ms"],
            "fast_wall_ms": fast["wall_ms"],
            "wall_speedup": slow["wall_ms"] / fast["wall_ms"] if fast["wall_ms"] else 0.0,
            # The fast path must not perturb the simulation: virtual
            # update time and every scan statistic are mode-invariant.
            "virtual_total_ms_slow": slow["virtual_total_ms"],
            "virtual_total_ms_fast": fast["virtual_total_ms"],
            "virtual_identical": slow["virtual_total_ms"] == fast["virtual_total_ms"],
            "accounting_identical": (
                slow["words_scanned_accounted"] == fast["words_scanned_accounted"]
                and slow["likely_pointers"] == fast["likely_pointers"]
            ),
            "words_scanned": fast["words_scanned_accounted"],
            "likely_pointers": fast["likely_pointers"],
            "resolve_calls_slow": slow["resolve_calls"],
            "resolve_calls_fast": fast["resolve_calls"],
            "resolve_calls_avoided": slow["resolve_calls"] - fast["resolve_calls"],
            "cache_hits": fast["cache_hits"],
            "words_from_cache": fast["words_from_cache"],
        }
    results["servers"] = per_server
    return results


def render(results: Dict[str, object]) -> str:
    micro = results["microbench"]
    lines = [
        "Scan fast-path microbenchmark "
        f"({micro['server']}: {micro['words']} words, "
        f"{micro['likely_pointers']} likely pointers, "
        f"identical={micro['identical']})",
        f"  reference : {micro['ref_words_per_sec']:,.0f} words/sec "
        f"({micro['resolve_calls_ref']} resolve calls)",
        f"  fast path : {micro['fast_words_per_sec']:,.0f} words/sec "
        f"({micro['resolve_calls_fast']} resolve calls, "
        f"{micro['resolve_calls_avoided']} avoided)",
        f"  speedup   : {micro['speedup']:.1f}x",
        "",
    ]
    rows = []
    for name, row in results["servers"].items():
        rows.append(
            [
                name,
                f"{row['slow_wall_ms']:.1f}",
                f"{row['fast_wall_ms']:.1f}",
                f"{row['wall_speedup']:.2f}",
                fmt_cell(row["virtual_identical"]),
                fmt_cell(row["accounting_identical"]),
                fmt_cell(row["cache_hits"]),
                fmt_cell(row["resolve_calls_avoided"]),
            ]
        )
    lines.append(
        render_table(
            "run_update wall time, fast path off vs on",
            [
                "server",
                "slow_ms",
                "fast_ms",
                "speedup",
                "virt_eq",
                "acct_eq",
                "cache_hits",
                "resolves_avoided",
            ],
            rows,
            note=(
                "wall = host time of ctl.live_update; virt_eq/acct_eq assert the "
                "fast path changes no simulated measurement"
            ),
        )
    )
    return "\n".join(lines)
