"""Fast-path scanning performance (this repo's experiment, not a paper table).

Quantifies the memory-engine fast path on two axes:

* **Microbenchmark** — conservative-scan throughput (words/sec) over a
  booted server's data + heap mappings, three engines deep: the
  reference per-word scanner, the PR 2 bulk kernel (bounds prefilter +
  interval index), and the v2 vectorized backend
  (``repro.mem.scan_backend`` — numpy when installed, the stdlib
  fallback otherwise).  Asserts all three produce *identical*
  likely-pointer lists and ``words_scanned`` counts (the Table 2/3
  invariance guarantee), and reports how many resolve calls the
  prefilter avoided.
* **End-to-end** — host wall time of one full ``run_update`` per server,
  fast path on vs off (``MCRConfig.fast_scan``/``incremental_scan``).
  The *virtual* update time is asserted identical in both modes: the
  fast path changes how fast the host sweeps memory, never what the
  simulation measures.
* **Scaling curve** — worker count vs sweep throughput and rolling
  ``run_update`` wall time on scaled-up httpd prefork trees (8 ..
  1000 server processes), the v2 scheduler's headline workload.

Wired into the CLI as ``python -m repro bench scanperf [--json]``; the
JSON lands in ``BENCH_scanperf.json`` and is uploaded as a CI artifact so
the perf trajectory is tracked PR over PR.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import fmt_cell, render_table
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.tracing import conservative
from repro.mcr.tracing.graph import AddressResolver
from repro.mem import scan_backend
from repro.replay.rng import RngStream
from repro.types.descriptors import WORD_SIZE

# Prefork pool sizes swept by the scaling curve; --smoke trims the sweep
# so CI stays fast while the committed artifact covers the full range.
SCALING_WORKER_COUNTS = (8, 64, 256, 1000)
SMOKE_WORKER_COUNTS = (8, 64)


def _scan_targets(process) -> List[Tuple[int, int]]:
    """The opaque areas the microbenchmark sweeps: data + heap mappings."""
    return [
        (m.base, m.size)
        for m in process.space.mappings()
        if m.kind in ("data", "heap")
    ]


def _pointers_key(found) -> List[Tuple[int, int, int, bool]]:
    return [(p.slot_address, p.value, p.target_base, p.interior) for p in found]


def _seed_pointer_field(process, size: int = 256 * 1024) -> None:
    """Fill a scratch data mapping with a pointer-rich word mix.

    A freshly booted server's data mappings are mostly zero, which makes
    the microbenchmark degenerate (every word short-circuits before
    resolution).  Seed a deterministic blend of heap base pointers,
    interior pointers, non-pointer integers, and zero words so the sweep
    exercises the whole kernel: decode, prefilter, resolve, alignment
    rejection.
    """
    # Explicit seed => RngStream reproduces random.Random(0xC0FFEE)'s
    # exact sequence, so the seeded pointer field is unchanged.
    rng = RngStream("bench.scanperf.seed", 0xC0FFEE)
    chunks = [
        process.heap.malloc(rng.choice((24, 48, 96, 160))) for _ in range(192)
    ]
    scratch = process.space.map(size, name="scanperf_scratch", kind="data")
    write_word = process.space.write_word
    for slot in range(scratch.base, scratch.end, WORD_SIZE):
        roll = rng.random()
        if roll < 0.25:
            value = rng.choice(chunks)  # base pointer
        elif roll < 0.40:
            value = rng.choice(chunks) + rng.randrange(1, 24)  # interior
        elif roll < 0.55:
            value = rng.getrandbits(48) | 1  # non-pointer junk
        else:
            continue  # zero word
        write_word(slot, value)


def run_scan_micro(server: str = "httpd", repeats: int = 3) -> Dict[str, object]:
    """Bulk vs reference scanner over one booted server's memory image."""
    world = boot_server(server)
    SERVER_BENCHES[server]["workload"]().run(world.kernel)
    process = world.root
    _seed_pointer_field(process)
    targets = _scan_targets(process)
    resolver = AddressResolver(process)

    def sweep_ref() -> Tuple[List, int]:
        found: List = []
        words = 0
        for base, size in targets:
            got, scanned = conservative.scan_range_ref(
                process.space, base, size, resolver.resolve_for_scan
            )
            found.extend(got)
            words += scanned
        return found, words

    def sweep_fast() -> Tuple[List, int]:
        found: List = []
        words = 0
        bounds = resolver.scan_bounds()
        for base, size in targets:
            got, scanned = conservative.scan_range(
                process.space, base, size, resolver.resolve_for_scan, bounds=bounds
            )
            found.extend(got)
            words += scanned
        return found, words

    def sweep_vector() -> Tuple[List, int]:
        found: List = []
        words = 0
        bounds = resolver.scan_bounds()
        index = resolver.scan_index()
        for base, size in targets:
            got, scanned = conservative.scan_range(
                process.space, base, size, resolver.resolve_for_scan,
                bounds=bounds, index=index,
            )
            found.extend(got)
            words += scanned
        return found, words

    # Correctness first: identical outputs, and count resolve traffic.
    with obs.collecting(world.kernel.clock) as collector:
        ref_found, ref_words = sweep_ref()
    calls_ref = collector.counters.snapshot().get("scan.resolve_calls", 0)
    resolver.build_index()
    with obs.collecting(world.kernel.clock) as collector:
        fast_found, fast_words = sweep_fast()
    calls_fast = collector.counters.snapshot().get("scan.resolve_calls", 0)
    with obs.collecting(world.kernel.clock) as collector:
        vector_found, vector_words = sweep_vector()
    calls_vector = collector.counters.snapshot().get("scan.resolve_calls", 0)
    identical = (
        _pointers_key(ref_found) == _pointers_key(fast_found)
        and _pointers_key(ref_found) == _pointers_key(vector_found)
        and ref_words == fast_words == vector_words
        and calls_fast == calls_vector
    )
    # Then timing (no collector installed: the publish hook is a no-op).
    ref_s = min(
        _timed(sweep_ref) for _ in range(repeats)
    )
    fast_s = min(
        _timed(sweep_fast) for _ in range(repeats)
    )
    vector_s = min(
        _timed(sweep_vector) for _ in range(repeats)
    )
    resolver.drop_index()
    return {
        "server": server,
        "backend": scan_backend.ACTIVE.name,
        "ranges": len(targets),
        "words": ref_words,
        "likely_pointers": len(ref_found),
        "identical": identical,
        "ref_words_per_sec": ref_words / ref_s if ref_s else 0.0,
        "fast_words_per_sec": fast_words / fast_s if fast_s else 0.0,
        "vector_words_per_sec": vector_words / vector_s if vector_s else 0.0,
        "speedup": ref_s / fast_s if fast_s else 0.0,
        "vector_speedup": ref_s / vector_s if vector_s else 0.0,
        "resolve_calls_ref": calls_ref,
        "resolve_calls_fast": calls_fast,
        "resolve_calls_vector": calls_vector,
        "resolve_calls_avoided": calls_ref - calls_fast,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_update(name: str, fast: bool) -> Dict[str, object]:
    """One full live update with the fast path on or off (host wall time)."""
    spec = SERVER_BENCHES[name]
    world = boot_server(name)
    spec["workload"]().run(world.kernel)
    ctl = McrCtl(world.kernel, world.session)
    config = MCRConfig(fast_scan=fast, incremental_scan=fast)
    with obs.collecting(world.kernel.clock) as collector:
        start = time.perf_counter()
        result = ctl.live_update(spec["make_program"](2), config=config)
        wall_s = time.perf_counter() - start
    if not result.committed:
        raise RuntimeError(f"{name}: update failed: {result.error}")
    counters = collector.counters.snapshot()
    return {
        "wall_ms": wall_s * 1000.0,
        "virtual_total_ms": result.total_ms(),
        "scan_words": counters.get("scan.words", 0),
        "resolve_calls": counters.get("scan.resolve_calls", 0),
        "cache_hits": counters.get("scan.cache_hits", 0),
        "words_from_cache": counters.get("scan.words_from_cache", 0),
        "likely_pointers": sum(
            len(r.likely_pointers)
            for r in result.transfer_report.trace_results.values()
        ),
        "words_scanned_accounted": sum(
            s.words_scanned for s in result.transfer_report.per_process
        ),
    }


def run_scaling_curve(
    worker_counts: Sequence[int] = SCALING_WORKER_COUNTS,
    warm_responses: int = 8,
) -> List[Dict[str, object]]:
    """Sweep throughput and rolling-update wall time vs prefork pool size.

    Boots httpd with ``server_processes`` overridden per point, serves a
    few keep-alive requests, then rolls the whole pool through one
    rolling ``run_update`` (batch = a quarter of the pool).  The client
    reconnect stall is 100 ms: at 1000 workers a connection event wakes
    the whole epoll herd and each woken quiescent-point entry advances
    the global virtual clock, so per-request latency genuinely grows
    with the pool — an aggressive few-ms stall would starve itself.
    """
    from repro.kernel.kernel import Kernel
    from repro.servers import httpd
    from repro.workloads.ab import ApacheBench

    rows: List[Dict[str, object]] = []
    for workers in worker_counts:
        def factory(version=1, mcr_prepared=True, _n=workers):
            return httpd.make_program(version, mcr_prepared, server_processes=_n)

        kernel = Kernel()
        start = time.perf_counter()
        world = boot_server("httpd", 1, None, kernel, factory)
        boot_s = time.perf_counter() - start
        process = world.root
        processes = len(process.tree())
        _seed_pointer_field(process)
        targets = _scan_targets(process)
        resolver = AddressResolver(process)
        resolver.build_index()
        bounds = resolver.scan_bounds()
        index = resolver.scan_index()

        def sweep() -> int:
            words = 0
            for base, size in targets:
                _got, scanned = conservative.scan_range(
                    process.space, base, size, resolver.resolve_for_scan,
                    bounds=bounds, index=index,
                )
                words += scanned
            return words

        words = sweep()
        sweep_s = min(_timed(sweep) for _ in range(2))
        resolver.drop_index()
        workload = ApacheBench(
            80, requests=24, concurrency=4, reconnect_stall_ns=100_000_000
        )
        workload(kernel)
        kernel.run(
            until=lambda: workload.latency.count >= warm_responses,
            max_steps=4_000_000,
        )
        ctl = McrCtl(kernel, world.session)
        config = MCRConfig(
            update_mode="rolling", rolling_batch=max(1, workers // 4)
        )
        start = time.perf_counter()
        result = ctl.live_update(factory(2), config=config)
        update_s = time.perf_counter() - start
        if not result.committed:
            raise RuntimeError(
                f"scaling curve @{workers} workers: update failed: {result.error}"
            )
        rows.append(
            {
                "workers": workers,
                "processes": processes,
                "boot_wall_ms": boot_s * 1000.0,
                "sweep_words": words,
                "sweep_words_per_sec": words / sweep_s if sweep_s else 0.0,
                "update_wall_ms": update_s * 1000.0,
                "virtual_total_ms": result.total_ms(),
                "rolling_batches": result.rolling_batches,
                "warm_responses": workload.latency.count,
                "committed": result.committed,
            }
        )
    return rows


def run_scanperf(
    servers: Sequence[str] = ("httpd", "vsftpd"),
    micro_server: str = "httpd",
    repeats: int = 3,
    worker_counts: Sequence[int] = SCALING_WORKER_COUNTS,
) -> Dict[str, object]:
    results: Dict[str, object] = {"microbench": run_scan_micro(micro_server, repeats)}
    per_server: Dict[str, Dict[str, object]] = {}
    for name in servers:
        slow = _measure_update(name, fast=False)
        fast = _measure_update(name, fast=True)
        per_server[name] = {
            "slow_wall_ms": slow["wall_ms"],
            "fast_wall_ms": fast["wall_ms"],
            "wall_speedup": slow["wall_ms"] / fast["wall_ms"] if fast["wall_ms"] else 0.0,
            # The fast path must not perturb the simulation: virtual
            # update time and every scan statistic are mode-invariant.
            "virtual_total_ms_slow": slow["virtual_total_ms"],
            "virtual_total_ms_fast": fast["virtual_total_ms"],
            "virtual_identical": slow["virtual_total_ms"] == fast["virtual_total_ms"],
            "accounting_identical": (
                slow["words_scanned_accounted"] == fast["words_scanned_accounted"]
                and slow["likely_pointers"] == fast["likely_pointers"]
            ),
            "words_scanned": fast["words_scanned_accounted"],
            "likely_pointers": fast["likely_pointers"],
            "resolve_calls_slow": slow["resolve_calls"],
            "resolve_calls_fast": fast["resolve_calls"],
            "resolve_calls_avoided": slow["resolve_calls"] - fast["resolve_calls"],
            "cache_hits": fast["cache_hits"],
            "words_from_cache": fast["words_from_cache"],
        }
    results["servers"] = per_server
    results["scaling_curve"] = run_scaling_curve(worker_counts)
    return results


def render(results: Dict[str, object]) -> str:
    micro = results["microbench"]
    lines = [
        "Scan fast-path microbenchmark "
        f"({micro['server']}: {micro['words']} words, "
        f"{micro['likely_pointers']} likely pointers, "
        f"identical={micro['identical']}, backend={micro['backend']})",
        f"  reference  : {micro['ref_words_per_sec']:,.0f} words/sec "
        f"({micro['resolve_calls_ref']} resolve calls)",
        f"  fast path  : {micro['fast_words_per_sec']:,.0f} words/sec "
        f"({micro['resolve_calls_fast']} resolve calls, "
        f"{micro['resolve_calls_avoided']} avoided)",
        f"  vectorized : {micro['vector_words_per_sec']:,.0f} words/sec "
        f"({micro['resolve_calls_vector']} resolve calls)",
        f"  speedup    : {micro['speedup']:.1f}x bulk, "
        f"{micro['vector_speedup']:.1f}x vectorized",
        "",
    ]
    rows = []
    for name, row in results["servers"].items():
        rows.append(
            [
                name,
                f"{row['slow_wall_ms']:.1f}",
                f"{row['fast_wall_ms']:.1f}",
                f"{row['wall_speedup']:.2f}",
                fmt_cell(row["virtual_identical"]),
                fmt_cell(row["accounting_identical"]),
                fmt_cell(row["cache_hits"]),
                fmt_cell(row["resolve_calls_avoided"]),
            ]
        )
    lines.append(
        render_table(
            "run_update wall time, fast path off vs on",
            [
                "server",
                "slow_ms",
                "fast_ms",
                "speedup",
                "virt_eq",
                "acct_eq",
                "cache_hits",
                "resolves_avoided",
            ],
            rows,
            note=(
                "wall = host time of ctl.live_update; virt_eq/acct_eq assert the "
                "fast path changes no simulated measurement"
            ),
        )
    )
    curve = results.get("scaling_curve")
    if curve:
        curve_rows = [
            [
                str(point["workers"]),
                str(point["processes"]),
                f"{point['boot_wall_ms']:.0f}",
                f"{point['sweep_words_per_sec']:,.0f}",
                f"{point['update_wall_ms']:.0f}",
                f"{point['virtual_total_ms']:.1f}",
                str(point["rolling_batches"]),
                fmt_cell(point["committed"]),
            ]
            for point in curve
        ]
        lines.append("")
        lines.append(
            render_table(
                "httpd prefork scaling curve (rolling run_update)",
                [
                    "workers",
                    "procs",
                    "boot_ms",
                    "sweep_words/s",
                    "update_wall_ms",
                    "virt_ms",
                    "batches",
                    "ok",
                ],
                curve_rows,
                note=(
                    "workers = server_processes override; update = one rolling "
                    "run_update with batch = workers/4 under a keep-alive "
                    "AB workload (100 ms reconnect stall)"
                ),
            )
        )
    return "\n".join(lines)
