"""The fault matrix: injection sites × servers, every cell must survive.

For each evaluation server and each fault site in
``repro.mcr.faults.SITES``: boot the server, run a short workload (and,
where the protocol supports it, park a couple of held connections so the
restore-phase sites have work to fail), arm a ``FaultPlan`` for the site,
and trigger a live update.  Each cell then asserts the paper's safety
property (§3, §6.3) end to end:

* ``run_update`` returned — the fault never escaped as an exception;
* the surviving version is actually *serving* (a probe workload runs
  against the port with zero errors);
* after a rollback, the old tree is byte-identical to its checkpoint
  (``UpdateResult.rollback_verified`` from the fingerprint comparison).

Two cells deviate from plain arm-one-site:

* ``commit.critical`` fires *after* the point of no return, so the
  expected outcome is a committed update with the fault contained
  (roll-forward), the new version serving;
* ``rollback`` alone would never fire (no rollback happens without a
  primary fault), so that cell arms ``transfer.memory`` + ``rollback`` —
  the double fault — and additionally requires ``rollback_failed`` to be
  flagged while the old version still serves.

Wired into the CLI as ``python -m repro bench faultmatrix [--smoke]
[--json]``; the JSON lands in ``BENCH_faultmatrix.json`` and CI asserts
every cell's ``survived`` and ``old_version_intact`` booleans.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import fmt_cell, render_table
from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import sim_function
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import CHECKPOINT_SITES, FaultPlan, UPDATE_SITES
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers.common import connect_with_retry
from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.holders import ConnectionHolder

FULL_SERVERS = ("simple", "httpd", "nginx", "vsftpd", "memcache")
SMOKE_SERVERS = ("simple", "vsftpd", "memcache")
# Servers re-run through the whole site grid in rolling update mode (the
# multi-worker pools where per-batch hand-off is meaningful).
ROLLING_FULL_SERVERS = ("httpd", "nginx")
ROLLING_SMOKE_SERVERS = ("httpd",)

# Held connections for servers whose protocol the holder speaks: they
# give the restore-phase sites (restore.fds, restore.handlers) real work.
_HELD_CONNECTIONS = 2


class LineBench:
    """Line-protocol driver for the command servers (simple, memcache).

    Each client connects once and plays the scripted ``(line, expected
    reply prefix)`` exchanges — AB's ``GET <path>`` shape only draws
    ``err unknown`` from these protocols, which would make the probe
    vacuous.
    """

    def __init__(self, port: int, script, clients: int = 1) -> None:
        self.port = port
        self.script = list(script)
        self.clients = clients
        self.completed = 0
        self.errors = 0

    def run(self, kernel: Kernel, max_steps: int = 5_000_000) -> None:
        bench = self

        @sim_function
        def line_client(sys):
            try:
                fd = yield from connect_with_retry(sys, bench.port)
            except SimError:
                bench.errors += len(bench.script)
                return
            for line, expect in bench.script:
                yield from sys.send(fd, (line + "\n").encode())
                reply = yield from sys.recv(fd)
                if reply and reply.decode(errors="replace").startswith(expect):
                    bench.completed += 1
                else:
                    bench.errors += 1
            yield from sys.close(fd)

        procs = [
            kernel.spawn_process(line_client, name=f"line-{index}")
            for index in range(self.clients)
        ]
        kernel.run(until=lambda: all(p.exited for p in procs), max_steps=max_steps)


# Per-server workload/probe wiring.  ``bench`` is the pre-update state
# populator; ``probe`` must complete with zero errors against whichever
# version is serving after the update attempt.
_MATRIX: Dict[str, Dict] = {
    "simple": {
        "port": 8080,
        "bench": lambda: LineBench(
            8080,
            [("push 5", "ok"), ("push 7", "ok"), ("sum", "sum 12")],
            clients=2,
        ),
        "probe": lambda: LineBench(8080, [("sum", "sum"), ("version", "version")]),
        "holder_kind": None,
    },
    "httpd": {
        "port": 80,
        "bench": lambda: ApacheBench(80, requests=30, concurrency=2),
        "probe": lambda: ApacheBench(80, requests=5, concurrency=1),
        "holder_kind": "http",
    },
    "nginx": {
        "port": 8081,
        "bench": lambda: ApacheBench(8081, requests=30, concurrency=2),
        "probe": lambda: ApacheBench(8081, requests=5, concurrency=1),
        "holder_kind": "http",
    },
    "vsftpd": {
        "port": 21,
        "bench": lambda: FtpBench(21, users=3, retrievals=1),
        "probe": lambda: FtpBench(21, users=1, retrievals=1),
        "holder_kind": "ftp",
    },
    "memcache": {
        "port": 11211,
        "bench": lambda: LineBench(
            11211,
            [("set k1 v1", "STORED"), ("set k2 v2", "STORED"), ("get k1", "VALUE v1")],
        ),
        "probe": lambda: LineBench(11211, [("get k1", "VALUE v1"), ("nstats", "STATS")]),
        "holder_kind": None,
    },
}


class _World:
    def __init__(self, kernel: Kernel, module, session: MCRSession, port: int) -> None:
        self.kernel = kernel
        self.module = module
        self.session = session
        self.port = port


def _boot(name: str) -> _World:
    """Boot one matrix server (servers outside SERVER_BENCHES included)."""
    module = importlib.import_module(f"repro.servers.{name}")
    if name in SERVER_BENCHES:
        world = boot_server(name)
        return _World(world.kernel, module, world.session, world.port)
    kernel = Kernel()
    module.setup_world(kernel)
    program = module.make_program(1)
    build = BuildConfig.full()
    session = MCRSession(kernel, program, build)
    load_program(kernel, program, build=build, session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=400_000)
    return _World(kernel, module, session, _MATRIX[name]["port"])


def _arm(site: str) -> FaultPlan:
    plan = FaultPlan()
    if site == "quiescence.wait":
        # Outlast the controller's bounded retries or the cell commits.
        plan.at(site, times=MCRConfig().quiescence_max_retries + 1)
    elif site == "rollback":
        # The double fault: a transfer fault forces the rollback, which
        # then faults itself.
        plan.at("transfer.memory").at(site)
    else:
        plan.at(site)
    return plan


def run_cell(
    server: str,
    site: str,
    blackbox_path: Optional[str] = None,
    mode: str = "whole-tree",
) -> Dict[str, object]:
    spec = _MATRIX[server]
    world = _boot(server)
    spec["bench"]().run(world.kernel)
    holder: Optional[ConnectionHolder] = None
    if spec["holder_kind"] is not None:
        holder = ConnectionHolder(world.port, _HELD_CONNECTIONS, spec["holder_kind"])
        holder.establish(world.kernel)
    plan = _arm(site)
    config = MCRConfig(faults=plan, blackbox_path=blackbox_path, update_mode=mode)
    ctl = McrCtl(world.kernel, world.session)
    raised: Optional[str] = None
    result = None
    try:
        result = ctl.live_update(world.module.make_program(2), config=config)
    except BaseException as error:  # the property under test: never happens
        raised = repr(error)
    fired = [s for s, _hit in plan.injected]
    expect_commit = site == "commit.critical" or not fired
    cell: Dict[str, object] = {
        "server": server,
        "site": site,
        "mode": mode,
        "armed": plan.armed_sites(),
        "fired": bool(fired),
        "fired_sites": fired,
        "raised": raised,
        "committed": bool(result.committed) if result else False,
        "rolled_back": bool(result.rolled_back) if result else False,
        "failure_site": result.failure_site if result else None,
        "retries": result.retries if result else 0,
        "rollback_verified": result.rollback_verified if result else None,
        "rollback_failed": bool(result.rollback_failed) if result else False,
        "error": type(result.error).__name__ if result and result.error else None,
    }
    # Black-box post-mortem: every failed cell must have dumped one whose
    # most recent injected-fault entry names the site we actually fired.
    blackbox = result.blackbox if result is not None else None
    if blackbox is not None:
        last_fault = blackbox.get("last_fault")
        last_fault_site = (
            last_fault["payload"].get("site") if last_fault else None
        )
        cell["blackbox"] = {
            "reason": blackbox.get("reason"),
            "failure_site": blackbox.get("failure_site"),
            "last_fault_site": last_fault_site,
            "entries": len(blackbox.get("entries", [])),
            "bytes_used": blackbox.get("bytes_used"),
            "samples_taken": blackbox.get("samples_taken"),
            "path": result.blackbox_path,
        }
        cell["blackbox_matches_site"] = bool(fired) and last_fault_site == fired[-1]
    else:
        cell["blackbox_matches_site"] = None
    # Survival: whichever version should now be serving answers traffic.
    listener = world.kernel.net.listener_for(world.port)
    probe = spec["probe"]()
    try:
        probe.run(world.kernel)
        probe_ok = probe.errors == 0 and probe.completed > 0
    except BaseException as error:  # pragma: no cover - diagnostics only
        probe_ok = False
        cell["probe_error"] = repr(error)
    cell["probe_completed"] = probe.completed
    cell["probe_errors"] = probe.errors
    survived = raised is None and listener is not None and probe_ok
    if result is not None:
        survived = survived and (result.committed != result.rolled_back)
        survived = survived and (result.committed == expect_commit)
        if site == "rollback" and result.rolled_back:
            # The double-fault cell must flag the degradation loudly.
            survived = survived and result.rollback_failed
    cell["survived"] = survived
    # Old-version-intact: after a rollback, the fingerprint must match the
    # checkpoint.  Committed cells (fault never fired, or contained past
    # the point of no return) vacuously keep the property if they serve.
    if result is not None and result.rolled_back:
        intact = result.rollback_verified is True
    else:
        intact = survived
    cell["old_version_intact"] = intact
    if holder is not None:
        holder.finish(world.kernel)
    return cell


# Checkpoint-plane sites that leave the primary serving when they fire;
# the rest degrade the standby and are drilled with a crash.
_PRIMARY_CONTINUE_SITES = (
    "checkpoint.capture",
    "checkpoint.write",
    "checkpoint.delta",
)


def run_failover_cell(
    server: str,
    site: Optional[str],
    blackbox_path: Optional[str] = None,
) -> Dict[str, object]:
    """One failover drill: arm ``site`` (None = clean crash), never raise.

    The convergence contract mirrors the update grid's survive/intact
    pair: every cell must end with the standby recovered XOR the primary
    continuing cleanly, zero unhandled exceptions either way.
    """
    from repro.fleet.failover import FailoverDrill

    sites = () if site is None else tuple(site.split("+"))
    crash = site is None or any(s not in _PRIMARY_CONTINUE_SITES for s in sites)
    plan = None
    if sites:
        plan = FaultPlan()
        for armed in sites:
            plan.at(armed)
    config = MCRConfig(
        faults=plan,
        checkpoint_interval_ns=25_000_000,
        blackbox_path=blackbox_path,
    )
    cell: Dict[str, object] = {
        "server": server,
        "site": site or "clean-crash",
        "crash": crash,
        "armed": list(sites),
        "raised": False,
    }
    try:
        data = FailoverDrill(server, config=config, crash=crash).run().to_dict()
    except BaseException as error:  # the drill's contract says never
        cell["raised"] = True
        cell["error"] = repr(error)
        cell["converged"] = False
        return cell
    recovered = bool(data["promoted"] or data["cold_restored"])
    cell.update(
        fired=bool(plan.injected) if plan is not None else False,
        fired_sites=data["fired_sites"],
        promoted=data["promoted"],
        cold_restored=data["cold_restored"],
        primary_survived=data["primary_survived"],
        recovered_on_standby=recovered,
        standby_stale=data["standby_stale"],
        stale_lag=data["stale_lag"],
        requests_lost=data["requests_lost"],
        rto_ms=data["rto_ms"],
        served_after=data["served_after"],
        error=data["error"],
        blackbox=data["blackbox"] is not None,
        # Exactly one recovery story per cell, and it served afterwards.
        converged=(
            data["error"] is None
            and data["served_after"]
            and recovered != data["primary_survived"]
        ),
    )
    return cell


def run_failover_cells(
    server: str,
    blackbox_path: Optional[str] = None,
) -> List[Dict[str, object]]:
    """The failover grid: clean crash + every checkpoint site + double fault."""
    cells = [run_failover_cell(server, None, blackbox_path=blackbox_path)]
    for site in CHECKPOINT_SITES:
        cells.append(run_failover_cell(server, site, blackbox_path=blackbox_path))
    cells.append(
        run_failover_cell(
            server, "checkpoint.write+standby.promote", blackbox_path=blackbox_path
        )
    )
    return cells


def run_faultmatrix(
    servers: Optional[Sequence[str]] = None,
    smoke: bool = False,
    blackbox_path: Optional[str] = None,
) -> Dict[str, object]:
    names = tuple(servers) if servers else (SMOKE_SERVERS if smoke else FULL_SERVERS)
    cells: List[Dict[str, object]] = []
    # The update grid covers the live-update pipeline sites only; the
    # checkpoint/standby sites never fire during an update (they belong
    # to the failover drills below).
    for server in names:
        for site in UPDATE_SITES:
            cells.append(run_cell(server, site, blackbox_path=blackbox_path))
    # The rolling rows: the same safety property must hold when the update
    # hands workers off one batch at a time — each fault still ends in
    # exactly one of {committed, rolled back}, with the rollback verified
    # batch-by-batch against the scoped fingerprints.
    rolling_names = ROLLING_SMOKE_SERVERS if smoke else ROLLING_FULL_SERVERS
    for server in rolling_names:
        for site in UPDATE_SITES:
            cells.append(
                run_cell(server, site, blackbox_path=blackbox_path, mode="rolling")
            )
    # The failover grid: one crash drill per checkpoint-plane site (plus
    # the clean-crash and torn-image double-fault rows), each required to
    # converge on exactly one of {standby recovered, primary continued}.
    # Failed restores/promotions dump their own post-mortem file so the
    # update grid's blackbox.json (asserted by CI to name the last
    # update-cell fault) is never clobbered.
    failover_blackbox = (
        blackbox_path.replace(".json", "_failover.json")
        if blackbox_path
        else None
    )
    failover_cells = run_failover_cells(names[0], blackbox_path=failover_blackbox)
    # Every rolled-back cell must have produced a black box whose last
    # injected fault matches the site the cell armed and fired.
    rolled_back = [c for c in cells if c["rolled_back"]]
    rolling_cells = [c for c in cells if c["mode"] == "rolling"]
    return {
        "servers": list(names),
        "rolling_servers": list(rolling_names),
        "sites": list(UPDATE_SITES),
        "failover_sites": list(CHECKPOINT_SITES),
        "smoke": smoke,
        "cells": cells,
        "failover_cells": failover_cells,
        "failover_all_converged": all(c["converged"] for c in failover_cells),
        "failover_any_raised": any(c["raised"] for c in failover_cells),
        "cells_total": len(cells),
        "cells_fired": sum(1 for c in cells if c["fired"]),
        "rolling_cells": len(rolling_cells),
        "rolling_all_survived": all(c["survived"] for c in rolling_cells),
        "all_survived": all(c["survived"] for c in cells),
        "all_old_version_intact": all(c["old_version_intact"] for c in cells),
        "any_raised": any(c["raised"] for c in cells),
        "all_blackbox_match": all(
            c["blackbox_matches_site"] is True for c in rolled_back
        ),
    }


def render(results: Dict[str, object]) -> str:
    rows = []
    for cell in results["cells"]:
        if cell["committed"]:
            outcome = "commit!" if cell["fired"] else "commit"
        elif cell["rolled_back"]:
            outcome = "rollback"
        else:
            outcome = "RAISED"
        rows.append(
            [
                cell["server"],
                cell.get("mode", "whole-tree"),
                cell["site"],
                "yes" if cell["fired"] else "-",
                outcome,
                fmt_cell(cell["rollback_verified"]),
                fmt_cell(cell["survived"]),
                fmt_cell(cell["old_version_intact"]),
            ]
        )
    summary = (
        f"{results['cells_total']} cells "
        f"({len(results['servers'])} servers x {len(results['sites'])} sites, "
        f"+{results.get('rolling_cells', 0)} rolling), "
        f"{results['cells_fired']} faults fired, "
        f"all_survived={results['all_survived']}, "
        f"rolling_all_survived={results.get('rolling_all_survived')}, "
        f"all_old_version_intact={results['all_old_version_intact']}, "
        f"any_raised={results['any_raised']}, "
        f"all_blackbox_match={results.get('all_blackbox_match')}"
    )
    failover_rows = [
        [
            cell["server"],
            cell["site"],
            fmt_cell(cell["crash"]),
            fmt_cell(cell.get("fired")),
            (
                "cold-restore"
                if cell.get("cold_restored")
                else "standby"
                if cell.get("promoted")
                else "primary"
                if cell.get("primary_survived")
                else "RAISED"
            ),
            fmt_cell(cell.get("standby_stale")),
            cell.get("requests_lost"),
            fmt_cell(cell.get("converged")),
        ]
        for cell in results.get("failover_cells", [])
    ]
    parts = [
        render_table(
            "Fault matrix: injected failure sites x servers",
            ["server", "mode", "site", "fired", "outcome", "verified", "survived", "intact"],
            rows,
            note=(
                "outcome commit! = fault fired past the point of no return and "
                "was contained (roll-forward); verified = old-tree fingerprint "
                "matched its checkpoint after rollback"
            ),
        ),
        summary,
    ]
    if failover_rows:
        parts.extend(
            [
                "",
                render_table(
                    "Failover drills: checkpoint-plane sites x crash recovery",
                    ["server", "site", "crash", "fired", "recovery", "stale",
                     "lost", "converged"],
                    failover_rows,
                    note=(
                        f"failover_all_converged="
                        f"{fmt_cell(results.get('failover_all_converged'))}"
                    ),
                ),
            ]
        )
    return "\n".join(parts)
