"""The fault matrix: injection sites × servers, every cell must survive.

For each evaluation server and each fault site in
``repro.mcr.faults.SITES``: boot the server, run a short workload (and,
where the protocol supports it, park a couple of held connections so the
restore-phase sites have work to fail), arm a ``FaultPlan`` for the site,
and trigger a live update.  Every cell runs through
``repro.replay.run_scenario`` — the same re-executable unit the
record/replay and fuzzing planes use — so with a trace path configured
each failed cell leaves a ``blackbox.json``/trace pair that
``python -m repro replay`` re-executes bit-identically to the failure.
Each cell then asserts the paper's safety property (§3, §6.3) end to
end:

* ``run_update`` returned — the fault never escaped as an exception;
* the surviving version is actually *serving* (a probe workload runs
  against the port with zero errors);
* after a rollback, the old tree is byte-identical to its checkpoint
  (``UpdateResult.rollback_verified`` from the fingerprint comparison).

Two cells deviate from plain arm-one-site:

* ``commit.critical`` fires *after* the point of no return, so the
  expected outcome is a committed update with the fault contained
  (roll-forward), the new version serving;
* ``rollback`` alone would never fire (no rollback happens without a
  primary fault), so that cell arms ``transfer.memory`` + ``rollback`` —
  the double fault — and additionally requires ``rollback_failed`` to be
  flagged while the old version still serves.

Wired into the CLI as ``python -m repro bench faultmatrix [--smoke]
[--json]``; the JSON lands in ``BENCH_faultmatrix.json`` and CI asserts
every cell's ``survived`` and ``old_version_intact`` booleans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import fmt_cell, render_table
from repro.mcr.config import MCRConfig
from repro.mcr.faults import (
    CHECKPOINT_SITES,
    FaultPlan,
    MIGRATION_SITES,
    UPDATE_SITES,
)
from repro.replay.scenario import default_spec, run_scenario
from repro.replay.trace import TraceLog
from repro.workloads.linebench import LineBench  # noqa: F401  (re-export)

FULL_SERVERS = ("simple", "httpd", "nginx", "vsftpd", "memcache")
SMOKE_SERVERS = ("simple", "vsftpd", "memcache")
# Servers re-run through the whole site grid in rolling update mode (the
# multi-worker pools where per-batch hand-off is meaningful).
ROLLING_FULL_SERVERS = ("httpd", "nginx")
ROLLING_SMOKE_SERVERS = ("httpd",)

def _arm(site: str) -> FaultPlan:
    plan = FaultPlan()
    if site == "quiescence.wait":
        # Outlast the controller's bounded retries or the cell commits.
        plan.at(site, times=MCRConfig().quiescence_max_retries + 1)
    elif site == "rollback":
        # The double fault: a transfer fault forces the rollback, which
        # then faults itself.
        plan.at("transfer.memory").at(site)
    else:
        plan.at(site)
    return plan


def cell_spec(server: str, site: str, mode: str = "whole-tree") -> Dict[str, object]:
    """The re-executable scenario spec of one matrix cell."""
    return default_spec(server, mode=mode, faults=_arm(site).to_spec())


def run_cell(
    server: str,
    site: str,
    blackbox_path: Optional[str] = None,
    mode: str = "whole-tree",
    trace_path: Optional[str] = None,
) -> Dict[str, object]:
    spec = cell_spec(server, site, mode)
    trace = TraceLog.record(spec) if trace_path else None
    outcome = run_scenario(
        spec,
        trace=trace,
        trace_path=trace_path,
        blackbox_path=blackbox_path,
        # A shared trace path must stay paired with the shared blackbox
        # path: only cells that dumped a post-mortem write either file.
        trace_save="on-blackbox",
    )
    plan = outcome.plan
    result = outcome.result
    raised = outcome.raised
    fired = [s for s, _hit in plan.injected]
    expect_commit = site == "commit.critical" or not fired
    cell: Dict[str, object] = {
        "server": server,
        "site": site,
        "mode": mode,
        "armed": plan.armed_sites(),
        "fired": bool(fired),
        "fired_sites": fired,
        "raised": raised,
        "committed": bool(result.committed) if result else False,
        "rolled_back": bool(result.rolled_back) if result else False,
        "failure_site": result.failure_site if result else None,
        "retries": result.retries if result else 0,
        "rollback_verified": result.rollback_verified if result else None,
        "rollback_failed": bool(result.rollback_failed) if result else False,
        "error": type(result.error).__name__ if result and result.error else None,
    }
    # Black-box post-mortem: every failed cell must have dumped one whose
    # most recent injected-fault entry names the site we actually fired.
    blackbox = result.blackbox if result is not None else None
    if blackbox is not None:
        last_fault = blackbox.get("last_fault")
        last_fault_site = (
            last_fault["payload"].get("site") if last_fault else None
        )
        cell["blackbox"] = {
            "reason": blackbox.get("reason"),
            "failure_site": blackbox.get("failure_site"),
            "last_fault_site": last_fault_site,
            "entries": len(blackbox.get("entries", [])),
            "bytes_used": blackbox.get("bytes_used"),
            "samples_taken": blackbox.get("samples_taken"),
            "path": result.blackbox_path,
        }
        cell["blackbox_matches_site"] = bool(fired) and last_fault_site == fired[-1]
        if trace is not None and trace.path:
            cell["trace_path"] = trace.path
    else:
        cell["blackbox_matches_site"] = None
    # Survival: whichever version should now be serving answers traffic.
    probe_ok = (
        outcome.probe_error is None
        and outcome.probe_errors == 0
        and outcome.probe_completed > 0
    )
    if outcome.probe_error is not None:
        cell["probe_error"] = outcome.probe_error
    cell["probe_completed"] = outcome.probe_completed
    cell["probe_errors"] = outcome.probe_errors
    survived = raised is None and outcome.listener_present and probe_ok
    if result is not None:
        survived = survived and (result.committed != result.rolled_back)
        survived = survived and (result.committed == expect_commit)
        if site == "rollback" and result.rolled_back:
            # The double-fault cell must flag the degradation loudly.
            survived = survived and result.rollback_failed
    cell["survived"] = survived
    # Old-version-intact: after a rollback, the fingerprint must match the
    # checkpoint.  Committed cells (fault never fired, or contained past
    # the point of no return) vacuously keep the property if they serve.
    if result is not None and result.rolled_back:
        intact = result.rollback_verified is True
    else:
        intact = survived
    cell["old_version_intact"] = intact
    return cell


# Checkpoint-plane sites that leave the primary serving when they fire;
# the rest degrade the standby and are drilled with a crash.
_PRIMARY_CONTINUE_SITES = (
    "checkpoint.capture",
    "checkpoint.write",
    "checkpoint.delta",
)


def run_failover_cell(
    server: str,
    site: Optional[str],
    blackbox_path: Optional[str] = None,
) -> Dict[str, object]:
    """One failover drill: arm ``site`` (None = clean crash), never raise.

    The convergence contract mirrors the update grid's survive/intact
    pair: every cell must end with the standby recovered XOR the primary
    continuing cleanly, zero unhandled exceptions either way.
    """
    from repro.fleet.failover import FailoverDrill

    sites = () if site is None else tuple(site.split("+"))
    crash = site is None or any(s not in _PRIMARY_CONTINUE_SITES for s in sites)
    plan = None
    if sites:
        plan = FaultPlan()
        for armed in sites:
            plan.at(armed)
    config = MCRConfig(
        faults=plan,
        checkpoint_interval_ns=25_000_000,
        blackbox_path=blackbox_path,
    )
    cell: Dict[str, object] = {
        "server": server,
        "site": site or "clean-crash",
        "crash": crash,
        "armed": list(sites),
        "raised": False,
    }
    try:
        data = FailoverDrill(server, config=config, crash=crash).run().to_dict()
    except BaseException as error:  # the drill's contract says never
        cell["raised"] = True
        cell["error"] = repr(error)
        cell["converged"] = False
        return cell
    recovered = bool(data["promoted"] or data["cold_restored"])
    cell.update(
        fired=bool(plan.injected) if plan is not None else False,
        fired_sites=data["fired_sites"],
        promoted=data["promoted"],
        cold_restored=data["cold_restored"],
        primary_survived=data["primary_survived"],
        recovered_on_standby=recovered,
        standby_stale=data["standby_stale"],
        stale_lag=data["stale_lag"],
        requests_lost=data["requests_lost"],
        rto_ms=data["rto_ms"],
        served_after=data["served_after"],
        error=data["error"],
        blackbox=data["blackbox"] is not None,
        # Exactly one recovery story per cell, and it served afterwards.
        converged=(
            data["error"] is None
            and data["served_after"]
            and recovered != data["primary_survived"]
        ),
    )
    return cell


def run_failover_cells(
    server: str,
    blackbox_path: Optional[str] = None,
) -> List[Dict[str, object]]:
    """The failover grid: clean crash + every checkpoint site + double fault."""
    cells = [run_failover_cell(server, None, blackbox_path=blackbox_path)]
    for site in CHECKPOINT_SITES:
        cells.append(run_failover_cell(server, site, blackbox_path=blackbox_path))
    cells.append(
        run_failover_cell(
            server, "checkpoint.write+standby.promote", blackbox_path=blackbox_path
        )
    )
    return cells


def run_migration_cell(
    server: str,
    site: Optional[str],
    blackbox_path: Optional[str] = None,
) -> Dict[str, object]:
    """One planned-migration drill: arm ``site`` (None = clean), never raise.

    The convergence contract: every cell ends with the tree **migrated
    XOR the primary kept serving** — a pre-copy fault costs a round (the
    migration still completes), a stop-and-copy or cutover fault aborts
    back to the primary — and zero unhandled exceptions either way.
    """
    from repro.fleet.migration import MigrationDrill

    sites = () if site is None else tuple(site.split("+"))
    plan = None
    if sites:
        plan = FaultPlan()
        for armed in sites:
            plan.at(armed)
    config = MCRConfig(faults=plan, blackbox_path=blackbox_path)
    cell: Dict[str, object] = {
        "server": server,
        "site": site or "clean-migrate",
        "armed": list(sites),
        "raised": False,
    }
    try:
        data = MigrationDrill(server, config=config).run().to_dict()
    except BaseException as error:  # the drill's contract says never
        cell["raised"] = True
        cell["error"] = repr(error)
        cell["converged"] = False
        return cell
    cell.update(
        fired=bool(plan.injected) if plan is not None else False,
        fired_sites=data["fired_sites"],
        migrated=data["migrated"],
        aborted=data["aborted"],
        primary_survived=data["primary_survived"],
        precopy_rounds=data["precopy_rounds"],
        precopy_failures=data["precopy_failures"],
        reseeds=data["reseeds"],
        brownout_ms=data["brownout_ms"],
        requests_lost=data["requests_lost"],
        served_after=data["served_after"],
        # An aborted cutover stamps the flight recorder with the site
        # that killed it — the post-mortem the cell must match.
        blackbox_site=(data["blackbox"] or {}).get("failure_site"),
        error=data["error"],
        # Exactly one end state per cell, and it served afterwards.
        converged=(
            data["error"] is None
            and data["served_after"]
            and data["migrated"] != data["primary_survived"]
        ),
    )
    return cell


def run_migration_cells(
    server: str,
    blackbox_path: Optional[str] = None,
) -> List[Dict[str, object]]:
    """The migration grid: clean migration + every migration-plane site
    + the pre-copy/cutover double fault."""
    cells = [run_migration_cell(server, None, blackbox_path=blackbox_path)]
    for site in MIGRATION_SITES:
        cells.append(run_migration_cell(server, site, blackbox_path=blackbox_path))
    cells.append(
        run_migration_cell(
            server, "migrate.precopy+migrate.cutover", blackbox_path=blackbox_path
        )
    )
    return cells


def run_faultmatrix(
    servers: Optional[Sequence[str]] = None,
    smoke: bool = False,
    blackbox_path: Optional[str] = None,
) -> Dict[str, object]:
    names = tuple(servers) if servers else (SMOKE_SERVERS if smoke else FULL_SERVERS)
    cells: List[Dict[str, object]] = []
    # Every cell records a trace alongside its black box: the pair that
    # survives the run (both only written on a failed update) is what
    # ``python -m repro replay <blackbox> --to-failure`` re-executes.
    trace_path = (
        blackbox_path.replace(".json", ".trace.json") if blackbox_path else None
    )
    # The update grid covers the live-update pipeline sites only; the
    # checkpoint/standby sites never fire during an update (they belong
    # to the failover drills below).
    for server in names:
        for site in UPDATE_SITES:
            cells.append(
                run_cell(
                    server, site, blackbox_path=blackbox_path, trace_path=trace_path
                )
            )
    # The rolling rows: the same safety property must hold when the update
    # hands workers off one batch at a time — each fault still ends in
    # exactly one of {committed, rolled back}, with the rollback verified
    # batch-by-batch against the scoped fingerprints.
    rolling_names = ROLLING_SMOKE_SERVERS if smoke else ROLLING_FULL_SERVERS
    for server in rolling_names:
        for site in UPDATE_SITES:
            cells.append(
                run_cell(
                    server,
                    site,
                    blackbox_path=blackbox_path,
                    mode="rolling",
                    trace_path=trace_path,
                )
            )
    # The failover grid: one crash drill per checkpoint-plane site (plus
    # the clean-crash and torn-image double-fault rows), each required to
    # converge on exactly one of {standby recovered, primary continued}.
    # Failed restores/promotions dump their own post-mortem file so the
    # update grid's blackbox.json (asserted by CI to name the last
    # update-cell fault) is never clobbered.
    failover_blackbox = (
        blackbox_path.replace(".json", "_failover.json")
        if blackbox_path
        else None
    )
    failover_cells = run_failover_cells(names[0], blackbox_path=failover_blackbox)
    # The migration grid: a planned-migration drill per migration-plane
    # site (clean + each site + the double fault), each required to end
    # migrated XOR primary-kept-serving, never both dead.
    migration_blackbox = (
        blackbox_path.replace(".json", "_migration.json")
        if blackbox_path
        else None
    )
    migration_cells = run_migration_cells(
        names[0], blackbox_path=migration_blackbox
    )
    # Every rolled-back cell must have produced a black box whose last
    # injected fault matches the site the cell armed and fired.
    rolled_back = [c for c in cells if c["rolled_back"]]
    rolling_cells = [c for c in cells if c["mode"] == "rolling"]
    return {
        "servers": list(names),
        "rolling_servers": list(rolling_names),
        "sites": list(UPDATE_SITES),
        "failover_sites": list(CHECKPOINT_SITES),
        "migration_sites": list(MIGRATION_SITES),
        "smoke": smoke,
        "cells": cells,
        "failover_cells": failover_cells,
        "failover_all_converged": all(c["converged"] for c in failover_cells),
        "failover_any_raised": any(c["raised"] for c in failover_cells),
        "migration_cells": migration_cells,
        "migration_all_converged": all(c["converged"] for c in migration_cells),
        "migration_any_raised": any(c["raised"] for c in migration_cells),
        "cells_total": len(cells),
        "cells_fired": sum(1 for c in cells if c["fired"]),
        "rolling_cells": len(rolling_cells),
        "rolling_all_survived": all(c["survived"] for c in rolling_cells),
        "all_survived": all(c["survived"] for c in cells),
        "all_old_version_intact": all(c["old_version_intact"] for c in cells),
        "any_raised": any(c["raised"] for c in cells),
        "all_blackbox_match": all(
            c["blackbox_matches_site"] is True for c in rolled_back
        ),
    }


def render(results: Dict[str, object]) -> str:
    rows = []
    for cell in results["cells"]:
        if cell["committed"]:
            outcome = "commit!" if cell["fired"] else "commit"
        elif cell["rolled_back"]:
            outcome = "rollback"
        else:
            outcome = "RAISED"
        rows.append(
            [
                cell["server"],
                cell.get("mode", "whole-tree"),
                cell["site"],
                "yes" if cell["fired"] else "-",
                outcome,
                fmt_cell(cell["rollback_verified"]),
                fmt_cell(cell["survived"]),
                fmt_cell(cell["old_version_intact"]),
            ]
        )
    summary = (
        f"{results['cells_total']} cells "
        f"({len(results['servers'])} servers x {len(results['sites'])} sites, "
        f"+{results.get('rolling_cells', 0)} rolling), "
        f"{results['cells_fired']} faults fired, "
        f"all_survived={results['all_survived']}, "
        f"rolling_all_survived={results.get('rolling_all_survived')}, "
        f"all_old_version_intact={results['all_old_version_intact']}, "
        f"any_raised={results['any_raised']}, "
        f"all_blackbox_match={results.get('all_blackbox_match')}"
    )
    failover_rows = [
        [
            cell["server"],
            cell["site"],
            fmt_cell(cell["crash"]),
            fmt_cell(cell.get("fired")),
            (
                "cold-restore"
                if cell.get("cold_restored")
                else "standby"
                if cell.get("promoted")
                else "primary"
                if cell.get("primary_survived")
                else "RAISED"
            ),
            fmt_cell(cell.get("standby_stale")),
            cell.get("requests_lost"),
            fmt_cell(cell.get("converged")),
        ]
        for cell in results.get("failover_cells", [])
    ]
    parts = [
        render_table(
            "Fault matrix: injected failure sites x servers",
            ["server", "mode", "site", "fired", "outcome", "verified", "survived", "intact"],
            rows,
            note=(
                "outcome commit! = fault fired past the point of no return and "
                "was contained (roll-forward); verified = old-tree fingerprint "
                "matched its checkpoint after rollback"
            ),
        ),
        summary,
    ]
    if failover_rows:
        parts.extend(
            [
                "",
                render_table(
                    "Failover drills: checkpoint-plane sites x crash recovery",
                    ["server", "site", "crash", "fired", "recovery", "stale",
                     "lost", "converged"],
                    failover_rows,
                    note=(
                        f"failover_all_converged="
                        f"{fmt_cell(results.get('failover_all_converged'))}"
                    ),
                ),
            ]
        )
    migration_rows = [
        [
            cell["server"],
            cell["site"],
            fmt_cell(cell.get("fired")),
            (
                "migrated"
                if cell.get("migrated")
                else "primary"
                if cell.get("primary_survived")
                else "RAISED"
            ),
            cell.get("precopy_rounds"),
            cell.get("precopy_failures"),
            cell.get("requests_lost"),
            fmt_cell(cell.get("converged")),
        ]
        for cell in results.get("migration_cells", [])
    ]
    if migration_rows:
        parts.extend(
            [
                "",
                render_table(
                    "Migration drills: planned-migration sites x cutover",
                    ["server", "site", "fired", "end state", "rounds",
                     "round_fails", "lost", "converged"],
                    migration_rows,
                    note=(
                        f"migration_all_converged="
                        f"{fmt_cell(results.get('migration_all_converged'))}"
                    ),
                ),
            ]
        )
    return "\n".join(parts)
