"""Table 2: mutable tracing statistics after the benchmarks.

For each program (plus the ``nginx_reg`` region-instrumented build), run
its benchmark workload with some connections left open, quiesce, run the
hybrid traversal over every process, and aggregate precise/likely pointer
counts by source and target memory region.

Expected shape (paper): uninstrumented custom allocators dominate the
likely-pointer counts (httpd ≫ nginx); instrumenting nginx's region
allocator (nginx_reg) converts likely pointers into precise ones; fully
instrumented programs (vsftpd, opensshd) are almost entirely precise with
a residual handful of likely pointers from type-unsafe idioms; opensshd
shows program pointers into shared-library state.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import render_table
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import apply_invariants
from repro.workloads.holders import ConnectionHolder

PAPER_TABLE2 = {
    "httpd": {"precise_ptr": 2_373, "likely_ptr": 16_252, "likely_targ_static": 2_050,
              "likely_targ_dynamic": 14_201, "likely_targ_lib": 1},
    "nginx": {"precise_ptr": 1_242, "likely_ptr": 4_049, "likely_targ_static": 293,
              "likely_targ_dynamic": 3_755, "likely_targ_lib": 1},
    "nginx_reg": {"precise_ptr": 2_049, "likely_ptr": 3_522, "likely_targ_static": 149,
                  "likely_targ_dynamic": 3_372, "likely_targ_lib": 1},
    "vsftpd": {"precise_ptr": 149, "likely_ptr": 6, "likely_targ_static": 0,
               "likely_targ_dynamic": 6, "likely_targ_lib": 0},
    "opensshd": {"precise_ptr": 237, "likely_ptr": 56, "likely_targ_static": 16,
                 "likely_targ_dynamic": 32, "likely_targ_lib": 8},
}


def trace_statistics(server: str, held_connections: int = 4) -> Dict[str, Dict[str, int]]:
    """Run the §8 benchmark, quiesce, trace, aggregate Table-2 counts."""
    spec = SERVER_BENCHES[server]
    world = boot_server(server)
    workload = spec["workload"]()
    workload.run(world.kernel)
    holder = ConnectionHolder(world.port, held_connections, spec["holder_kind"])
    holder.establish(world.kernel)
    session = world.session
    session.quiescence.request()
    session.quiescence.wait(session.root_process)
    keys = (
        "ptr", "src_static", "src_dynamic", "src_lib",
        "targ_static", "targ_dynamic", "targ_lib",
    )
    totals = {"precise": {k: 0 for k in keys}, "likely": {k: 0 for k in keys}}
    for process in session.root_process.tree():
        trace = apply_invariants(
            GraphBuilder(process, session.config,
                         annotations=world.program.annotations).build()
        )
        row = trace.table2_row()
        for kind in ("precise", "likely"):
            for key in keys:
                totals[kind][key] += row[kind][key]
    session.quiescence.release()
    holder.finish(world.kernel)
    return totals


def run_table2(
    servers: Sequence[str] = ("httpd", "nginx", "nginx_reg", "vsftpd", "opensshd"),
    held_connections: int = 4,
) -> Dict[str, Dict[str, Dict[str, int]]]:
    return {
        server: trace_statistics(server, held_connections) for server in servers
    }


def render(results: Dict[str, Dict[str, Dict[str, int]]]) -> str:
    headers = [
        "server",
        "P:ptr", "P:src(S/D/L)", "P:targ(S/D/L)",
        "L:ptr", "L:src(S/D/L)", "L:targ(S/D/L)",
        "paper P:ptr", "paper L:ptr",
    ]
    rows = []
    for server, totals in results.items():
        precise, likely = totals["precise"], totals["likely"]
        paper = PAPER_TABLE2.get(server, {})
        rows.append([
            server,
            precise["ptr"],
            f"{precise['src_static']}/{precise['src_dynamic']}/{precise['src_lib']}",
            f"{precise['targ_static']}/{precise['targ_dynamic']}/{precise['targ_lib']}",
            likely["ptr"],
            f"{likely['src_static']}/{likely['src_dynamic']}/{likely['src_lib']}",
            f"{likely['targ_static']}/{likely['targ_dynamic']}/{likely['targ_lib']}",
            paper.get("precise_ptr", "-"),
            paper.get("likely_ptr", "-"),
        ])
    return render_table(
        "Table 2: mutable tracing statistics (aggregated after benchmarks)",
        headers,
        rows,
        note="P=precise, L=likely; regions S=static D=dynamic L=lib. Scaled workloads: compare orderings, not magnitudes.",
    )
