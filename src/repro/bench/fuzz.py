"""Randomized update fuzzing with replay-equivalence as the oracle.

Each iteration draws a random scenario — server × update mode × fault
plan × workload shape (request counts, concurrency, client think-time
jitter, held connections) — from a seeded master stream, **records** the
run, and checks it two ways:

* **invariants** — the paper's safety property, cell-shaped: the update
  never raises, ends in exactly one of {committed, rolled back}, a
  rollback is fingerprint-verified and leaves a black box, and the
  surviving version answers a probe with zero errors;
* **replay equivalence** — the recorded trace re-executes bit-
  identically (every draw, scheduler checkpoints, virtual clock, span
  tree, fingerprint).  A mismatch means hidden nondeterminism leaked
  into the tree — exactly the class of bug this harness exists to catch.

Any failing iteration is **shrunk**: a fixed ladder of simplifying
transformations (drop jitter, drop holders, single client, minimal
request count, whole-tree instead of rolling, deterministic instead of
probabilistic fault, no fault) is applied greedily, keeping each change
only while the failure reproduces.  The minimal scenario is then
re-verified by a fresh record+replay pair and reported with its seed and
trace so ``python -m repro replay`` reproduces it from the artifact
alone.

Wired into the CLI as ``python -m repro bench fuzz [--smoke] [--seed N]
[--json]``; CI runs the smoke soak and uploads any minimized failure.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.reporting import fmt_cell, render_table
from repro.mcr.config import MCRConfig
from repro.mcr.faults import UPDATE_SITES
from repro.replay.rng import RngStream, derive_seed
from repro.replay.scenario import SERVERS, default_spec, run_scenario
from repro.replay.trace import TraceLog

FULL_ITERATIONS = 24
SMOKE_ITERATIONS = 6

# Update-pipeline sites the fuzzer arms (the checkpoint plane has its
# own failover drills).  ``rollback`` needs a primary fault to reach the
# rollback path at all, so it is always armed as the double fault.
_FUZZ_SITES = tuple(UPDATE_SITES)

_FUZZ_SERVERS = tuple(SERVERS)

# Rolling mode only means something for the multi-worker pools.
_ROLLING_SERVERS = ("httpd", "nginx")


def draw_spec(master: RngStream) -> Dict[str, Any]:
    """One random scenario spec, fully determined by the master stream."""
    server = master.choice(_FUZZ_SERVERS)
    mode = "whole-tree"
    if server in _ROLLING_SERVERS and master.random() < 0.5:
        mode = "rolling"
    # Fault plan: 1/4 clean update, else one site, deterministic or
    # probabilistic trigger.
    faults: List[Dict[str, Any]] = []
    if master.random() < 0.75:
        site = master.choice(_FUZZ_SITES)
        if site == "rollback":
            faults.append({"site": "transfer.memory", "nth": 1, "times": 1})
            faults.append({"site": "rollback", "nth": 1, "times": 1})
        elif site == "quiescence.wait":
            faults.append(
                {
                    "site": site,
                    "nth": 1,
                    "times": MCRConfig().quiescence_max_retries + 1,
                }
            )
        elif master.random() < 0.3:
            faults.append(
                {
                    "site": site,
                    "probability": round(0.3 + 0.6 * master.random(), 3),
                    "seed": master.randint(0, 2**16),
                }
            )
        else:
            faults.append({"site": site, "nth": master.randint(1, 2), "times": 1})
    workload: Dict[str, Any] = {}
    if server in ("httpd", "nginx"):
        workload["requests"] = master.randint(8, 40)
        workload["concurrency"] = master.randint(1, 3)
        if master.random() < 0.5:
            workload["jitter_ns"] = master.randint(1, 8) * 25_000
    elif server == "vsftpd":
        workload["users"] = master.randint(1, 4)
        workload["retrievals"] = master.randint(1, 2)
    else:
        workload["clients"] = master.randint(1, 3)
    holders = None
    if SERVERS[server]["holder_kind"] is not None:
        holders = master.randint(0, 3)
    return default_spec(
        server,
        mode=mode,
        seed=master.randint(0, 2**31),
        faults=faults,
        workload=workload,
        holders=holders,
    )


def check_spec(
    spec: Dict[str, Any],
    trace_path: Optional[str] = None,
    blackbox_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Record ``spec``, replay it, and evaluate every invariant.

    Returns a verdict dict; ``ok`` is True only when all invariants hold
    *and* the replay is bit-identical.  Never raises for in-scenario
    failures — an unexpected exception is itself an invariant violation.
    """
    verdict: Dict[str, Any] = {"spec": spec, "ok": False, "problems": []}
    problems: List[str] = verdict["problems"]
    recorded = TraceLog.record(spec)
    try:
        outcome = run_scenario(
            spec,
            trace=recorded,
            trace_path=trace_path,
            blackbox_path=blackbox_path,
        )
    except BaseException as error:
        problems.append(f"run_scenario raised {error!r}")
        return verdict
    result = outcome.result
    if outcome.raised is not None:
        problems.append(f"live_update raised {outcome.raised}")
    if result is None:
        if outcome.raised is None:
            problems.append("no UpdateResult and no exception")
    else:
        if result.committed == result.rolled_back:
            problems.append(
                f"outcome not exclusive: committed={result.committed} "
                f"rolled_back={result.rolled_back}"
            )
        if result.rolled_back:
            if result.rollback_verified is not True and not result.rollback_failed:
                problems.append(
                    f"rollback not fingerprint-verified: "
                    f"{result.rollback_verified}"
                )
            if result.blackbox is None:
                problems.append("rolled back without dumping a black box")
    if not outcome.listener_present:
        problems.append("no listener on the server port after the update")
    if outcome.probe_error is not None:
        problems.append(f"probe raised {outcome.probe_error}")
    elif outcome.probe_errors or not outcome.probe_completed:
        problems.append(
            f"probe failed: {outcome.probe_completed} completed, "
            f"{outcome.probe_errors} errors"
        )
    verdict["committed"] = bool(result.committed) if result else False
    verdict["failure_site"] = result.failure_site if result else None
    verdict["fired"] = [s for s, _hit in outcome.plan.injected]
    verdict["clock_ns"] = recorded.final.get("clock_ns")
    verdict["draws"] = len(recorded.draws)
    # The replay-equivalence oracle.
    replay = TraceLog.replay_of(recorded)
    try:
        run_scenario(spec, trace=replay)
    except BaseException as error:
        problems.append(f"replay raised {error!r}")
    else:
        if not replay.equivalent:
            problems.append(
                "replay diverged: "
                + "; ".join(str(d) for d in replay.divergences[:3])
            )
            verdict["divergences"] = [d.to_dict() for d in replay.divergences]
    verdict["ok"] = not problems
    return verdict


# Each shrink step maps a spec to a strictly simpler candidate (or None
# when it no longer applies).  Applied greedily, re-verified every time.
def _drop_jitter(spec):
    if spec["workload"].get("jitter_ns"):
        out = copy.deepcopy(spec)
        out["workload"].pop("jitter_ns")
        return out
    return None


def _drop_holders(spec):
    if spec.get("holders"):
        out = copy.deepcopy(spec)
        out["holders"] = 0
        return out
    return None


def _single_client(spec):
    wl = spec["workload"]
    for key in ("concurrency", "clients", "users"):
        if wl.get(key, 1) > 1:
            out = copy.deepcopy(spec)
            out["workload"][key] = 1
            return out
    return None


def _minimal_requests(spec):
    wl = spec["workload"]
    for key, floor in (("requests", 2), ("operations", 2), ("retrievals", 1)):
        if wl.get(key, floor) > floor:
            out = copy.deepcopy(spec)
            out["workload"][key] = floor
            return out
    return None


def _whole_tree(spec):
    if spec.get("mode") == "rolling":
        out = copy.deepcopy(spec)
        out["mode"] = "whole-tree"
        return out
    return None


def _deterministic_fault(spec):
    if any("probability" in arm for arm in spec.get("faults", ())):
        out = copy.deepcopy(spec)
        out["faults"] = [
            {"site": arm["site"], "nth": 1, "times": 1}
            if "probability" in arm
            else arm
            for arm in out["faults"]
        ]
        return out
    return None


def _no_fault(spec):
    if spec.get("faults"):
        out = copy.deepcopy(spec)
        out["faults"] = []
        return out
    return None


SHRINK_LADDER = (
    ("drop-jitter", _drop_jitter),
    ("drop-holders", _drop_holders),
    ("single-client", _single_client),
    ("minimal-requests", _minimal_requests),
    ("whole-tree", _whole_tree),
    ("deterministic-fault", _deterministic_fault),
    ("no-fault", _no_fault),
)


def shrink_spec(
    spec: Dict[str, Any], max_checks: int = 16
) -> Tuple[Dict[str, Any], List[str], int]:
    """Greedily minimize a failing spec; the failure must keep reproducing.

    Returns ``(minimal_spec, applied_step_names, checks_spent)``.  Each
    candidate is re-verified with a full record+replay check; a step is
    kept only if the simplified spec still fails.
    """
    current = spec
    applied: List[str] = []
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for name, step in SHRINK_LADDER:
            if checks >= max_checks:
                break
            candidate = step(current)
            if candidate is None:
                continue
            checks += 1
            if not check_spec(candidate)["ok"]:
                current = candidate
                applied.append(name)
                progress = True
    return current, applied, checks


def run_fuzz(
    smoke: bool = False,
    seed: int = 0,
    iterations: Optional[int] = None,
    artifact_prefix: str = "FUZZ",
) -> Dict[str, Any]:
    """The soak: draw, record, verify; shrink and re-verify any failure."""
    count = iterations if iterations is not None else (
        SMOKE_ITERATIONS if smoke else FULL_ITERATIONS
    )
    master = RngStream("fuzz.master", derive_seed(seed, "fuzz.master"))
    runs: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    for index in range(count):
        spec = draw_spec(master)
        verdict = check_spec(spec)
        run_row = {
            "iteration": index,
            "server": spec["server"],
            "mode": spec["mode"],
            "sites": [arm["site"] for arm in spec["faults"]],
            "seed": spec["seed"],
            "ok": verdict["ok"],
            "committed": verdict.get("committed"),
            "failure_site": verdict.get("failure_site"),
            "draws": verdict.get("draws"),
            "problems": verdict["problems"],
        }
        runs.append(run_row)
        if verdict["ok"]:
            continue
        minimal, applied, checks = shrink_spec(spec)
        # Re-verify the minimized spec with its artifacts on disk so the
        # failure is reproducible from the uploaded files alone.
        final = check_spec(
            minimal,
            trace_path=f"{artifact_prefix}_minimal_{index}.trace.json",
            blackbox_path=f"{artifact_prefix}_minimal_{index}_blackbox.json",
        )
        failures.append(
            {
                "iteration": index,
                "original_spec": spec,
                "minimal_spec": minimal,
                "shrink_steps": applied,
                "shrink_checks": checks,
                "still_fails_minimized": not final["ok"],
                "problems": final["problems"] or verdict["problems"],
                "trace": f"{artifact_prefix}_minimal_{index}.trace.json",
            }
        )
    return {
        "smoke": smoke,
        "seed": seed,
        "iterations": count,
        "runs": runs,
        "failures": failures,
        "all_ok": not failures,
    }


def render(results: Dict[str, Any]) -> str:
    rows = [
        [
            row["iteration"],
            row["server"],
            row["mode"],
            "+".join(row["sites"]) or "-",
            row["seed"],
            row["draws"],
            row["failure_site"] or "-",
            fmt_cell(row["ok"]),
        ]
        for row in results["runs"]
    ]
    parts = [
        render_table(
            "Update fuzzing: random server x mode x fault x workload, "
            "replay-verified",
            ["iter", "server", "mode", "sites", "seed", "draws", "failure", "ok"],
            rows,
            note=(
                f"seed={results['seed']}, all_ok={fmt_cell(results['all_ok'])}; "
                "ok = every invariant held AND the recorded trace replayed "
                "bit-identically"
            ),
        )
    ]
    for failure in results["failures"]:
        parts.append("")
        parts.append(
            f"FAILURE at iteration {failure['iteration']}: "
            f"{'; '.join(failure['problems'][:3])}"
        )
        parts.append(
            f"  minimized via {', '.join(failure['shrink_steps']) or '(nothing)'}"
            f" -> {failure['minimal_spec']}"
        )
        parts.append(
            f"  reproduce: python -m repro replay {failure['trace']}"
        )
    return "\n".join(parts)
