"""Update-time components (paper §8, "Update time").

Three measurements per server:

* **quiescence time** — run the update-time barrier protocol while the
  benchmark workload is in flight; the paper reports convergence in
  < 100 ms, workload-independently.
* **control migration time** — mutable reinitialization (record was
  already paid at v1 startup; replay happens during the update), plus
  the replay-to-startup overhead ratio (paper: record/replay < 50 ms,
  1–45% overhead over original startup).
* **component breakdown** — quiescence / control-migration / transfer
  for one full update.
* **client-perceived downtime** — update the server *mid-flight* under
  its benchmark workload and report what the clients saw: the latency
  distribution, the blackout interval (longest gap in completed
  responses), and the SLO verdict against ``MCRConfig``'s downtime
  budget.  This is the paper's headline claim ("total update < 1 s")
  measured from the outside.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import fmt_cell, latency_summary_ms, render_table
from repro.clock import ns_to_ms
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.servers import nginx
from repro.servers.common import ClientPerceived
from repro.workloads.ab import ApacheBench

# Servers with a stable worker pool, where per-worker rolling update is
# meaningful.  nginx is booted with a real multi-worker pool for the
# comparison (the registered default stays single-worker).
ROLLING_SERVERS = ("httpd", "nginx")

# Pool size for the scaled-up rolling row (non-smoke runs only): the v2
# scheduler's headline configuration, a 1000-process httpd prefork tree.
SCALE_WORKERS = 1000


def measure_quiescence_under_load(name: str) -> Dict[str, float]:
    """Quiescence time with the benchmark running vs idle."""
    spec = SERVER_BENCHES[name]
    # Idle quiescence.
    world = boot_server(name)
    session = world.session
    session.quiescence.request()
    idle_ns = session.quiescence.wait(session.root_process)
    session.quiescence.release()
    world.kernel.run(max_steps=50_000)
    # Under load: launch the workload, then immediately quiesce.
    clients = spec["workload"]()(world.kernel)
    world.kernel.run(max_steps=5_000)  # let requests get in flight
    session.quiescence.request()
    loaded_ns = session.quiescence.wait(session.root_process)
    session.quiescence.release()
    world.kernel.run(until=lambda: all(c.exited for c in clients), max_steps=5_000_000)
    return {"idle_ms": ns_to_ms(idle_ns), "loaded_ms": ns_to_ms(loaded_ns)}


def measure_update_components(name: str, to_version: int = 2) -> Dict[str, float]:
    spec = SERVER_BENCHES[name]
    world = boot_server(name)
    spec["workload"]().run(world.kernel)
    startup_ns = world.session.startup_duration_ns() or 1
    ctl = McrCtl(world.kernel, world.session)
    result = ctl.live_update(spec["make_program"](to_version))
    if not result.committed:
        raise RuntimeError(f"{name}: update failed: {result.error}")
    replay_startup_ns = result.new_session.startup_duration_ns() or 0
    return {
        "quiescence_ms": ns_to_ms(result.quiescence_ns),
        "control_migration_ms": ns_to_ms(result.control_migration_ns),
        "restore_ms": ns_to_ms(result.restore_ns),
        "transfer_ms": ns_to_ms(result.transfer_ns),
        "total_ms": result.total_ms(),
        "v1_startup_ms": ns_to_ms(startup_ns),
        "replay_startup_ms": ns_to_ms(replay_startup_ns),
        "replay_overhead": replay_startup_ns / startup_ns - 1,
    }


def measure_client_perceived(
    name: str,
    to_version: int = 2,
    budget_ns: Optional[int] = None,
    warm_requests: int = 8,
) -> Dict[str, object]:
    """Live-update ``name`` mid-flight and report what the clients saw.

    A fresh world runs the server's benchmark workload; once
    ``warm_requests`` responses have completed the update fires, then the
    workload drains to completion.  Every request carries virtual-clock
    send/receive stamps, so the blackout interval — the longest gap in
    completed responses — directly measures client-perceived downtime.
    """
    spec = SERVER_BENCHES[name]
    world = boot_server(name)
    kernel = world.kernel
    workload = spec["workload"]()
    clients = workload(kernel)
    kernel.run(
        until=lambda: workload.latency.count >= warm_requests,
        max_steps=2_000_000,
    )
    ctl = McrCtl(kernel, world.session)
    result = ctl.live_update(spec["make_program"](to_version))
    if not result.committed:
        raise RuntimeError(f"{name}: mid-flight update failed: {result.error}")
    kernel.run(until=lambda: all(c.exited for c in clients), max_steps=5_000_000)
    if budget_ns is None:
        budget_ns = world.session.config.downtime_budget_ns
    perceived = ClientPerceived.measure(workload.latency, budget_ns=budget_ns)
    result.client = perceived
    row: Dict[str, object] = dict(
        latency_summary_ms(workload.latency.latencies_ns(), prefix="client")
    )
    row["blackout_ms"] = ns_to_ms(perceived.blackout_ns)
    row["downtime_budget_ms"] = ns_to_ms(budget_ns)
    row["slo_ok"] = perceived.slo_ok
    row["workload_errors"] = workload.errors
    return row


def _rolling_factory(name: str):
    """Program factory used for the rolling-vs-whole-tree comparison.

    Both the booted v1 world and the v2 update target must come from the
    *same* factory (replay fork counts must match), so nginx gets its
    multi-worker pool here for both modes.
    """
    if name == "nginx":
        return lambda version: nginx.make_program(version, worker_processes=2)
    return SERVER_BENCHES[name]["make_program"]


def measure_rolling_comparison(
    name: str,
    to_version: int = 2,
    warm_requests: int = 8,
) -> Dict[str, object]:
    """Whole-tree vs rolling blackout at equal workload.

    Boots two identical fresh worlds from the same program factory, runs
    the same mid-flight workload in each, and updates one whole-tree and
    one rolling.  Reports both blackouts plus the rolling SLO verdict, so
    the comparison isolates the update mode — same program, same worker
    pool, same request stream.
    """
    factory = _rolling_factory(name)
    spec = SERVER_BENCHES[name]
    row: Dict[str, object] = {}
    for mode, prefix in (("whole-tree", "wt"), ("rolling", "rolling")):
        world = boot_server(name, make_program=factory)
        kernel = world.kernel
        # Same workload in both modes, with the timeout/retry posture of
        # real AB: a stalled keep-alive connection is abandoned and the
        # request retried over a fresh connect, which a live worker
        # accepts.  Without it every client pinned to the first quiesced
        # worker blocks for the whole update in *both* modes and the
        # comparison measures nothing.
        workload = ApacheBench(
            spec["port"],
            requests=120,
            concurrency=4,
            reconnect_stall_ns=5_000_000,
        )
        clients = workload(kernel)
        kernel.run(
            until=lambda: workload.latency.count >= warm_requests,
            max_steps=2_000_000,
        )
        ctl = McrCtl(kernel, world.session)
        result = ctl.live_update(
            factory(to_version), config=MCRConfig(update_mode=mode)
        )
        if not result.committed:
            raise RuntimeError(
                f"{name}: {mode} comparison update failed: {result.error}"
            )
        kernel.run(until=lambda: all(c.exited for c in clients), max_steps=5_000_000)
        budget_ns = world.session.config.downtime_budget_ns
        perceived = ClientPerceived.measure(workload.latency, budget_ns=budget_ns)
        row[f"{prefix}_blackout_ms"] = ns_to_ms(perceived.blackout_ns)
        row[f"{prefix}_total_ms"] = result.total_ms()
        if mode == "rolling":
            row["rolling_batches"] = result.rolling_batches
            row["rolling_slo_ok"] = perceived.slo_ok
    return row


def measure_rolling_at_scale(
    name: str = "httpd",
    workers: int = SCALE_WORKERS,
    to_version: int = 2,
    warm_requests: int = 8,
) -> Dict[str, object]:
    """One rolling update over a scaled-up prefork pool, clients riding.

    Boots httpd with ``server_processes`` overridden, warms a keep-alive
    AB workload, then rolls the pool in quarter-sized batches.  The
    client reconnect stall is 100 ms (not the comparison's 5 ms): at
    this scale each connection event wakes the whole epoll herd and
    every woken quiescent-point entry advances the global virtual clock,
    so per-request latency genuinely grows with the pool and an
    aggressive stall would starve itself reconnecting.
    """
    import time as _time

    from repro.kernel.kernel import Kernel
    from repro.servers import httpd as _httpd

    spec = SERVER_BENCHES[name]

    def factory(version, _n=workers):
        return _httpd.make_program(version, server_processes=_n)

    kernel = Kernel()
    world = boot_server(name, kernel=kernel, make_program=factory)
    workload = ApacheBench(
        spec["port"], requests=24, concurrency=4, reconnect_stall_ns=100_000_000
    )
    clients = workload(kernel)
    kernel.run(
        until=lambda: workload.latency.count >= warm_requests,
        max_steps=4_000_000,
    )
    ctl = McrCtl(kernel, world.session)
    start = _time.perf_counter()
    result = ctl.live_update(
        factory(to_version),
        config=MCRConfig(
            update_mode="rolling", rolling_batch=max(1, workers // 4)
        ),
    )
    wall_s = _time.perf_counter() - start
    if not result.committed:
        raise RuntimeError(
            f"{name}@{workers}: scaled rolling update failed: {result.error}"
        )
    kernel.run(until=lambda: all(c.exited for c in clients), max_steps=6_000_000)
    budget_ns = world.session.config.downtime_budget_ns
    perceived = ClientPerceived.measure(workload.latency, budget_ns=budget_ns)
    return {
        "workers": workers,
        "rolling_batches": result.rolling_batches,
        "virtual_total_ms": result.total_ms(),
        "update_wall_ms": wall_s * 1000.0,
        "blackout_ms": ns_to_ms(perceived.blackout_ns),
        "slo_ok": perceived.slo_ok,
        "requests": workload.latency.count,
        "workload_errors": workload.errors,
        "committed": result.committed,
    }


def run_updatetime(
    servers: Sequence[str] = ("httpd", "nginx", "vsftpd", "opensshd", "memcache"),
    scale_workers: Optional[int] = SCALE_WORKERS,
) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name in servers:
        row = measure_quiescence_under_load(name)
        row.update(measure_update_components(name))
        row.update(measure_client_perceived(name))
        if name in ROLLING_SERVERS:
            row.update(measure_rolling_comparison(name))
        results[name] = row
    if scale_workers and "httpd" in results:
        results["httpd"]["scale_rolling"] = measure_rolling_at_scale(
            workers=scale_workers
        )
    return results


def render(results: Dict[str, Dict[str, float]]) -> str:
    keys = [
        "idle_ms", "loaded_ms", "quiescence_ms", "control_migration_ms",
        "restore_ms", "transfer_ms", "total_ms", "replay_overhead",
        "client_p50_ms", "client_p99_ms", "blackout_ms", "slo_ok",
    ]

    rows = [
        [name] + [fmt_cell(row[k]) for k in keys]
        for name, row in results.items()
    ]
    table = render_table(
        "Update time components",
        ["server"] + keys,
        rows,
        note=(
            "paper: quiescence < 100 ms (workload-independent); "
            "record/replay < 50 ms, 1-45% over original startup; "
            "total update < 1 s. slo_ok: blackout within "
            "MCRConfig.downtime_budget_ns"
        ),
    )
    rolling_keys = [
        "wt_blackout_ms", "rolling_blackout_ms", "rolling_batches",
        "rolling_slo_ok", "wt_total_ms", "rolling_total_ms",
    ]
    rolling_rows = [
        [name] + [fmt_cell(row[k]) for k in rolling_keys]
        for name, row in results.items()
        if "rolling_blackout_ms" in row
    ]
    if rolling_rows:
        table += "\n\n" + render_table(
            "Rolling vs whole-tree blackout (equal workload)",
            ["server"] + rolling_keys,
            rolling_rows,
            note=(
                "rolling: per-worker-batch quiesce/trace/transfer while the "
                "rest of the pool keeps serving; total update time may grow "
                "while client-perceived blackout shrinks"
            ),
        )
    scale_keys = [
        "workers", "rolling_batches", "virtual_total_ms", "update_wall_ms",
        "blackout_ms", "slo_ok", "workload_errors",
    ]
    scale_rows = [
        [name] + [fmt_cell(row["scale_rolling"][k]) for k in scale_keys]
        for name, row in results.items()
        if "scale_rolling" in row
    ]
    if scale_rows:
        table += "\n\n" + render_table(
            "Rolling update at scale (v2 scheduler fast path)",
            ["server"] + scale_keys,
            scale_rows,
            note=(
                "one rolling run_update over a 1000-process prefork tree "
                "with clients mid-flight; feasible only with the "
                "runnable-only scheduler fast path"
            ),
        )
    return table
