"""Update-time components (paper §8, "Update time").

Three measurements per server:

* **quiescence time** — run the update-time barrier protocol while the
  benchmark workload is in flight; the paper reports convergence in
  < 100 ms, workload-independently.
* **control migration time** — mutable reinitialization (record was
  already paid at v1 startup; replay happens during the update), plus
  the replay-to-startup overhead ratio (paper: record/replay < 50 ms,
  1–45% overhead over original startup).
* **component breakdown** — quiescence / control-migration / transfer
  for one full update.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import render_table
from repro.clock import ns_to_ms
from repro.mcr.ctl import McrCtl


def measure_quiescence_under_load(name: str) -> Dict[str, float]:
    """Quiescence time with the benchmark running vs idle."""
    spec = SERVER_BENCHES[name]
    # Idle quiescence.
    world = boot_server(name)
    session = world.session
    session.quiescence.request()
    idle_ns = session.quiescence.wait(session.root_process)
    session.quiescence.release()
    world.kernel.run(max_steps=50_000)
    # Under load: launch the workload, then immediately quiesce.
    clients = spec["workload"]()(world.kernel)
    world.kernel.run(max_steps=5_000)  # let requests get in flight
    session.quiescence.request()
    loaded_ns = session.quiescence.wait(session.root_process)
    session.quiescence.release()
    world.kernel.run(until=lambda: all(c.exited for c in clients), max_steps=5_000_000)
    return {"idle_ms": ns_to_ms(idle_ns), "loaded_ms": ns_to_ms(loaded_ns)}


def measure_update_components(name: str, to_version: int = 2) -> Dict[str, float]:
    spec = SERVER_BENCHES[name]
    world = boot_server(name)
    spec["workload"]().run(world.kernel)
    startup_ns = world.session.startup_duration_ns() or 1
    ctl = McrCtl(world.kernel, world.session)
    result = ctl.live_update(spec["make_program"](to_version))
    if not result.committed:
        raise RuntimeError(f"{name}: update failed: {result.error}")
    replay_startup_ns = result.new_session.startup_duration_ns() or 0
    return {
        "quiescence_ms": ns_to_ms(result.quiescence_ns),
        "control_migration_ms": ns_to_ms(result.control_migration_ns),
        "restore_ms": ns_to_ms(result.restore_ns),
        "transfer_ms": ns_to_ms(result.transfer_ns),
        "total_ms": result.total_ms(),
        "v1_startup_ms": ns_to_ms(startup_ns),
        "replay_startup_ms": ns_to_ms(replay_startup_ns),
        "replay_overhead": replay_startup_ns / startup_ns - 1,
    }


def run_updatetime(servers: Sequence[str] = ("httpd", "nginx", "vsftpd", "opensshd")) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name in servers:
        row = measure_quiescence_under_load(name)
        row.update(measure_update_components(name))
        results[name] = row
    return results


def render(results: Dict[str, Dict[str, float]]) -> str:
    keys = [
        "idle_ms", "loaded_ms", "quiescence_ms", "control_migration_ms",
        "restore_ms", "transfer_ms", "total_ms", "replay_overhead",
    ]
    rows = [[name] + [f"{row[k]:.2f}" for k in keys] for name, row in results.items()]
    return render_table(
        "Update time components",
        ["server"] + keys,
        rows,
        note=(
            "paper: quiescence < 100 ms (workload-independent); "
            "record/replay < 50 ms, 1-45% over original startup; "
            "total update < 1 s"
        ),
    )
