"""Shared benchmark scaffolding: boot a server world, run its workload.

``SERVER_BENCHES`` maps each evaluation subject (including the
``nginx_reg`` configuration) to how it is booted and benchmarked, mirroring
§8: AB for the web servers, the FTP benchmark for vsftpd, the test suite
for sshd.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.kernel.kernel import Kernel
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import Program, load_program
from repro.servers import httpd, memcache, nginx, opensshd, vsftpd
from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.mcbench import McBench
from repro.workloads.sshsuite import SshSuite


class BenchWorld:
    """One booted server instance plus its session handles."""

    def __init__(
        self,
        kernel: Kernel,
        program: Program,
        session: Optional[MCRSession],
        root,
        port: int,
    ) -> None:
        self.kernel = kernel
        self.program = program
        self.session = session
        self.root = root
        self.port = port

    def run_until_started(self, max_steps: int = 400_000) -> None:
        if self.session is not None:
            self.kernel.run(
                until=lambda: self.session.startup_complete, max_steps=max_steps
            )
        else:
            # Uninstrumented baseline: run until the tree stalls.
            from repro.mcr.quiescence.profiler import _tree_quiet

            self.kernel.run(
                until=lambda: _tree_quiet(self.root), max_steps=max_steps
            )


def boot_server(
    name: str,
    version: int = 1,
    build: Optional[BuildConfig] = None,
    kernel: Optional[Kernel] = None,
    make_program: Optional[Callable[[int], Program]] = None,
) -> BenchWorld:
    """Create a world running one server under the given build config.

    ``make_program`` overrides the spec's factory — the rolling-update
    comparison boots nginx with a multi-worker pool this way while the
    registered default stays single-worker.
    """
    spec = SERVER_BENCHES[name]
    kernel = kernel or Kernel()
    spec["setup_world"](kernel)
    program = (make_program or spec["make_program"])(version)
    if build is None:
        build = BuildConfig.qdet(instrument_regions=spec["instrument_regions"])
    if build.mcr_enabled:
        session = MCRSession(kernel, program, build)
    else:
        session = None
    root = load_program(kernel, program, build=build, session=session)
    world = BenchWorld(kernel, program, session, root, spec["port"])
    world.run_until_started()
    return world


def _make_nginx_reg(version: int = 1) -> Program:
    return nginx.make_program(version, instrument_regions=True)


SERVER_BENCHES: Dict[str, Dict] = {
    "httpd": {
        "make_program": httpd.make_program,
        "setup_world": httpd.setup_world,
        "port": 80,
        "workload": lambda: ApacheBench(80, requests=120, concurrency=4),
        "holder_kind": "http",
        "instrument_regions": False,
    },
    "nginx": {
        "make_program": nginx.make_program,
        "setup_world": nginx.setup_world,
        "port": 8081,
        "workload": lambda: ApacheBench(8081, requests=120, concurrency=4),
        "holder_kind": "http",
        "instrument_regions": False,
    },
    "nginx_reg": {
        "make_program": _make_nginx_reg,
        "setup_world": nginx.setup_world,
        "port": 8081,
        "workload": lambda: ApacheBench(8081, requests=120, concurrency=4),
        "holder_kind": "http",
        "instrument_regions": True,
    },
    "vsftpd": {
        "make_program": vsftpd.make_program,
        "setup_world": vsftpd.setup_world,
        "port": 21,
        "workload": lambda: FtpBench(21, users=8, retrievals=2),
        "holder_kind": "ftp",
        "instrument_regions": False,
    },
    "memcache": {
        "make_program": memcache.make_program,
        "setup_world": memcache.setup_world,
        "port": 11211,
        "workload": lambda: McBench(11211, operations=120, concurrency=4),
        "holder_kind": None,
        "instrument_regions": False,
    },
    "opensshd": {
        "make_program": opensshd.make_program,
        "setup_world": opensshd.setup_world,
        "port": 22,
        "workload": lambda: SshSuite(22, sessions=5, commands=3),
        "holder_kind": "ssh",
        "instrument_regions": False,
    },
}

# The four real programs (nginx_reg is a build configuration, not a fifth).
PRIMARY_SERVERS = ("httpd", "nginx", "vsftpd", "opensshd")


def build_ladder(instrument_regions: bool = False) -> Dict[str, Callable[[], BuildConfig]]:
    """The Table-3 cumulative configuration ladder."""
    return {
        "baseline": BuildConfig.baseline,
        "Unblock": BuildConfig.unblock,
        "+SInstr": lambda: BuildConfig.sinstr(instrument_regions),
        "+DInstr": lambda: BuildConfig.dinstr(instrument_regions),
        "+QDet": lambda: BuildConfig.qdet(instrument_regions),
    }
