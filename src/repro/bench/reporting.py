"""Plain-text table rendering and latency summarization for benchmarks.

Every benchmark that reports a latency distribution goes through
``latency_summary_ms`` — one shared path onto ``repro.obs.metrics``'s
histogram type, so percentile semantics (nearest-rank, bucket-resolved)
and ms formatting are identical everywhere instead of re-derived ad hoc
per benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.clock import fmt_value as _fmt
from repro.obs.metrics import Histogram


def fmt_cell(value: Any) -> str:
    """The one shared table-cell formatter for benchmark rows.

    Booleans render as the eye-catching ``yes``/``NO`` pair (failures
    should jump out of a table), ``None`` as ``-``, floats at two
    decimals.  Every bench's render() goes through this instead of a
    private local ``fmt`` so cells read identically across reports.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def write_bench_json(name: str, results: Any, path: Optional[str] = None) -> str:
    """Write the canonical ``BENCH_<name>.json`` envelope; returns the path.

    Every benchmark artifact CI uploads goes through here, so the
    envelope shape (``{"experiment": ..., "results": ...}``) is defined
    in exactly one place.
    """
    from repro.obs.export import write_json

    path = path or f"BENCH_{name}.json"
    write_json(path, {"experiment": name, "results": results})
    return path


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def paper_vs_measured(paper: Dict[str, Any], measured: Dict[str, Any]) -> List[List[Any]]:
    """Side-by-side rows for EXPERIMENTS.md-style comparisons."""
    keys = sorted(set(paper) | set(measured))
    return [[k, paper.get(k, "-"), measured.get(k, "-")] for k in keys]


def latency_summary_ms(
    latencies_ns: Sequence[int], prefix: str = "client"
) -> Dict[str, Any]:
    """Histogram-backed ms summary of a latency sample, keys prefixed.

    Returns ``{"<prefix>_requests", "<prefix>_p50_ms", "<prefix>_p95_ms",
    "<prefix>_p99_ms", "<prefix>_max_ms", "<prefix>_sum_ms"}``.
    """
    summary = Histogram.from_values(f"{prefix}.latency_ns", latencies_ns).summary_ms()
    return {
        f"{prefix}_requests": summary["count"],
        f"{prefix}_p50_ms": summary["p50_ms"],
        f"{prefix}_p95_ms": summary["p95_ms"],
        f"{prefix}_p99_ms": summary["p99_ms"],
        f"{prefix}_max_ms": summary["max_ms"],
        f"{prefix}_sum_ms": summary["sum_ms"],
    }
