"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.clock import fmt_value as _fmt


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def paper_vs_measured(paper: Dict[str, Any], measured: Dict[str, Any]) -> List[List[Any]]:
    """Side-by-side rows for EXPERIMENTS.md-style comparisons."""
    keys = sorted(set(paper) | set(measured))
    return [[k, paper.get(k, "-"), measured.get(k, "-")] for k in keys]
