"""Memory usage: binary-size and resident-set overhead of MCR.

The paper reports a binary-size overhead of 118.7–235.2% and a run-time
RSS overhead of 110.0–483.6% (average 288.5%, the abstract's "3.9x"),
attributing it to mutable-tracing metadata (the deliberately
space-inefficient tags), process-hierarchy metadata, the in-memory
startup log, and the MCR libraries themselves.

We account the same inventory:

* baseline "binary size": the program's code+static footprint model;
* instrumented binary: + static tags + the linked ``libmcr.a``;
* baseline RSS: logical footprint of all mappings after the benchmark;
* MCR RSS: + ``MCRSession.metadata_bytes()`` (tags, startup log,
  hierarchy metadata, preloaded ``libmcr.so``).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import render_table
from repro.mem.tags import TAG_OVERHEAD_BYTES
from repro.runtime.instrument import BuildConfig

PAPER_NOTE = (
    "paper: binary size +118.7%-235.2%; RSS +110.0%-483.6% (avg 288.5%)"
)

# Binary-size model: a code byte per simulated-program "LOC unit" plus the
# static libraries.  Only ratios matter.
BASE_BINARY_BYTES = {
    "httpd": 600_000,
    "nginx": 450_000,
    "vsftpd": 120_000,
    "opensshd": 250_000,
}
# Static lib + pass-injected stubs, after linker dead-code stripping.
LIBMCR_A_BYTES = 150_000
PER_STATIC_TAG_BINARY_BYTES = 96       # tag tables embedded in the binary
INSTRUMENTATION_CODE_FACTOR = 0.9      # wrappers/unblockification stubs


def measure_server(name: str) -> Dict[str, float]:
    spec = SERVER_BENCHES[name]
    # Baseline RSS: run the benchmark uninstrumented, sum mapping sizes.
    base_world = boot_server(name, build=BuildConfig.baseline())
    spec["workload"]().run(base_world.kernel)
    base_rss = sum(
        p.space.resident_bytes() for p in base_world.root.tree()
    )
    # Instrumented RSS: same run under the full MCR build.
    mcr_world = boot_server(name)
    spec["workload"]().run(mcr_world.kernel)
    session = mcr_world.session
    mcr_rss = sum(
        p.space.resident_bytes() for p in session.root_process.tree()
    )
    mcr_rss += session.metadata_bytes()
    # Binary size model.
    base_binary = BASE_BINARY_BYTES[name]
    static_tags = sum(
        1 for p in session.root_process.tree() for _ in p.tags.tags(origin="static")
    )
    mcr_binary = (
        base_binary * (1 + INSTRUMENTATION_CODE_FACTOR)
        + LIBMCR_A_BYTES
        + static_tags * PER_STATIC_TAG_BINARY_BYTES
    )
    return {
        "base_binary": base_binary,
        "mcr_binary": mcr_binary,
        "binary_overhead": mcr_binary / base_binary - 1,
        "base_rss": base_rss,
        "mcr_rss": mcr_rss,
        "rss_overhead": mcr_rss / base_rss - 1,
    }


def run_memusage(servers: Sequence[str] = ("httpd", "nginx", "vsftpd", "opensshd")) -> Dict[str, Dict[str, float]]:
    return {name: measure_server(name) for name in servers}


def average_rss_overhead(results: Dict[str, Dict[str, float]]) -> float:
    return sum(r["rss_overhead"] for r in results.values()) / len(results)


def render(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, r in results.items():
        rows.append([
            name,
            f"{r['base_binary'] // 1024}K",
            f"{r['mcr_binary'] / 1024:.0f}K",
            f"+{r['binary_overhead'] * 100:.1f}%",
            f"{r['base_rss'] // 1024}K",
            f"{r['mcr_rss'] // 1024}K",
            f"+{r['rss_overhead'] * 100:.1f}%",
        ])
    rows.append([
        "average", "", "", "", "", "",
        f"+{average_rss_overhead(results) * 100:.1f}%",
    ])
    return render_table(
        "Memory usage: MCR metadata overhead",
        ["server", "bin(base)", "bin(MCR)", "bin ovh", "RSS(base)", "RSS(MCR)", "RSS ovh"],
        rows,
        note=PAPER_NOTE,
    )
