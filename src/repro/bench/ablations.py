"""Ablation studies of MCR's design choices (DESIGN.md §Design-choices).

Each ablation turns off one mechanism the paper argues for and measures
what it buys:

* **dirty tracking** — Figure 3 attributes short transfer times to the
  soft-dirty filter; transferring everything shows the cost of skipping it.
* **parallel transfer** — §6 parallelizes state transfer across the
  process hierarchy; the serial alternative is what a single-threaded
  coordinator would pay.
* **opaque-int64 policy** — §6's default run-time policy treats
  pointer-sized integers as opaque; turning it off loses the nginx
  pointer-as-integer idiom.
* **interior-only nonupdatability** — the paper's unimplemented refinement
  (implemented here as an option): base-pointer likely targets stay
  type-transformable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.harness import SERVER_BENCHES, boot_server
from repro.bench.reporting import render_table
from repro.clock import ns_to_ms
from repro.mcr.config import MCRConfig
from repro.mcr.controller import LiveUpdateController
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import apply_invariants, invariant_counts
from repro.workloads.holders import ConnectionHolder


def _run_update(server: str, connections: int, use_dirty_filter: bool):
    spec = SERVER_BENCHES[server]
    world = boot_server(server)
    spec["workload"]().run(world.kernel)
    holder = None
    if connections:
        holder = ConnectionHolder(world.port, connections, spec["holder_kind"])
        holder.establish(world.kernel)
    controller = LiveUpdateController(
        world.kernel,
        world.session,
        spec["make_program"](2),
        use_dirty_filter=use_dirty_filter,
    )
    result = controller.run_update()
    if not result.committed:
        raise RuntimeError(f"{server}: {result.error}")
    return result


def ablate_dirty_tracking(server: str = "vsftpd", connections: int = 8) -> Dict[str, float]:
    """Transfer time with and without the soft-dirty filter.

    Parallel per-process transfer hides much of the wall-clock cost of
    transferring clean state, so the serial totals (what each process
    actually does) are reported too — that is where the 68-86% byte
    reduction shows up as time.
    """
    from repro.mcr.config import TransferCostModel

    cost = TransferCostModel()
    with_filter = _run_update(server, connections, use_dirty_filter=True)
    without_filter = _run_update(server, connections, use_dirty_filter=False)
    serial_with = with_filter.transfer_report.serial_total_ns(cost)
    serial_without = without_filter.transfer_report.serial_total_ns(cost)
    work_with = sum(
        s.work_ns(cost) for s in with_filter.transfer_report.per_process
    )
    work_without = sum(
        s.work_ns(cost) for s in without_filter.transfer_report.per_process
    )
    return {
        "work_speedup": work_without / max(work_with, 1),
        "with_ms": ns_to_ms(with_filter.transfer_ns),
        "without_ms": ns_to_ms(without_filter.transfer_ns),
        "speedup": without_filter.transfer_ns / with_filter.transfer_ns,
        "serial_with_ms": ns_to_ms(serial_with),
        "serial_without_ms": ns_to_ms(serial_without),
        "serial_speedup": serial_without / serial_with,
        "objects_with": sum(
            s.objects_transferred for s in with_filter.transfer_report.per_process
        ),
        "objects_without": sum(
            s.objects_transferred for s in without_filter.transfer_report.per_process
        ),
    }


def ablate_parallel_transfer(server: str = "vsftpd", connections: int = 8) -> Dict[str, float]:
    """Parallel (per-process max) vs serial (sum) transfer accounting."""
    result = _run_update(server, connections, use_dirty_filter=True)
    report = result.transfer_report
    from repro.mcr.config import TransferCostModel

    cost = TransferCostModel()
    serial_ns = report.serial_total_ns(cost)
    return {
        "parallel_ms": ns_to_ms(report.total_ns),
        "serial_ms": ns_to_ms(serial_ns),
        "speedup": serial_ns / report.total_ns,
        "processes": len(report.per_process),
    }


def ablate_int64_policy(server: str = "nginx") -> Dict[str, int]:
    """Likely-pointer discovery with/without the pointer-as-int policy."""
    counts = {}
    for label, flag in (("on", True), ("off", False)):
        world = boot_server(server)
        SERVER_BENCHES[server]["workload"]().run(world.kernel)
        session = world.session
        session.quiescence.request()
        session.quiescence.wait(session.root_process)
        config = MCRConfig(scan_opaque_int64=flag)
        likely = 0
        immutable = 0
        # Explicitly annotationless: the shipped encoded-pointer annotation
        # would otherwise decode the idiom precisely in both variants.
        from repro.mcr.annotations import Annotations

        for process in session.root_process.tree():
            trace = apply_invariants(
                GraphBuilder(process, config, annotations=Annotations()).build()
            )
            likely += len(trace.likely_pointers)
            immutable += len(trace.immutable_objects())
        counts[f"likely_{label}"] = likely
        counts[f"immutable_{label}"] = immutable
        session.quiescence.release()
    return counts


def ablate_interior_only(server: str = "httpd") -> Dict[str, int]:
    """Nonupdatable-object counts with the interior-only refinement."""
    counts = {}
    for label, flag in (("strict", False), ("interior_only", True)):
        world = boot_server(server)
        SERVER_BENCHES[server]["workload"]().run(world.kernel)
        session = world.session
        session.quiescence.request()
        session.quiescence.wait(session.root_process)
        config = MCRConfig(interior_only_nonupdatable=flag)
        nonupdatable = 0
        for process in session.root_process.tree():
            trace = apply_invariants(
                GraphBuilder(process, config,
                             annotations=world.program.annotations).build()
            )
            nonupdatable += invariant_counts(trace)["nonupdatable"]
        counts[label] = nonupdatable
        session.quiescence.release()
    return counts


def run_all() -> Dict[str, Dict]:
    """Run every ablation; one JSON-exportable mapping."""
    return {
        "dirty_tracking": ablate_dirty_tracking(),
        "parallel_transfer": ablate_parallel_transfer(),
        "int64_policy": ablate_int64_policy(),
        "interior_only": ablate_interior_only(),
    }


def render_all(results: Optional[Dict[str, Dict]] = None) -> str:
    if results is None:
        results = run_all()
    dirty = results["dirty_tracking"]
    parallel = results["parallel_transfer"]
    int64 = results["int64_policy"]
    interior = results["interior_only"]
    rows = [
        ["dirty tracking (vsftpd, 8 conns)",
         f"{dirty['serial_with_ms']:.1f}ms serial / {dirty['objects_with']} objs",
         f"{dirty['serial_without_ms']:.1f}ms serial / {dirty['objects_without']} objs",
         f"{dirty['serial_speedup']:.2f}x"],
        ["parallel transfer (vsftpd, 8 conns)",
         f"{parallel['parallel_ms']:.1f}ms",
         f"{parallel['serial_ms']:.1f}ms",
         f"{parallel['speedup']:.2f}x"],
        ["int64 opacity policy (nginx)",
         f"likely={int64['likely_on']}",
         f"likely={int64['likely_off']}",
         "-"],
        ["interior-only nonupdatable (httpd)",
         f"nonupd={interior['strict']}",
         f"nonupd={interior['interior_only']}",
         "-"],
    ]
    return render_table(
        "Ablations of MCR design choices",
        ["mechanism", "enabled", "disabled/variant", "benefit"],
        rows,
    )
