"""MCR user annotations.

The paper's annotation surface (Listing 1 and §8), each with a LOC weight
so the Table-1 engineering-effort benchmark can account them the way the
paper counts annotation LOC:

* ``MCR_ADD_OBJ_HANDLER``    — a traversal handler for one state object:
  decodes "hidden" pointers (e.g. nginx's low-bit pointer encoding) or
  applies a semantic transformation mutable tracing cannot infer.
* ``MCR_ADD_REINIT_HANDLER`` — a mutable-reinitialization hook: resolves
  replay conflicts, replays semantically-changed operations, or recreates
  volatile quiescent states (servers that spawn workers on demand).
* ``opaque policy overrides`` — mark a type/region precisely traceable or
  force it opaque.
* ``allocator annotations``  — declare a custom allocator region-based so
  the allocation-type analysis can instrument it.

Handlers receive a context object owned by the calling subsystem (a
``TraversalContext`` from tracing or a ``ReplayContext`` from reinit).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class ObjHandler:
    """Traversal handler attached to a named object or type."""

    def __init__(self, target: str, handler: Callable, loc: int = 2) -> None:
        self.target = target  # symbol name or type name
        self.handler = handler
        self.loc = loc


class ReinitHandler:
    """Reinitialization hook; ``stage`` selects when it runs.

    Stages: ``"conflict"`` (a replay conflict was flagged — return True to
    resolve it), ``"post_startup"`` (control migration finished — recreate
    volatile quiescent states), ``"pre_startup"`` (before the new version's
    startup code runs).
    """

    def __init__(self, handler: Callable, stage: str = "conflict", loc: int = 4) -> None:
        self.handler = handler
        self.stage = stage
        self.loc = loc


class Annotations:
    """The annotation set of one program version."""

    def __init__(self) -> None:
        self.obj_handlers: Dict[str, ObjHandler] = {}
        self.reinit_handlers: List[ReinitHandler] = []
        self.precise_overrides: set = set()   # names forced precise
        self.opaque_overrides: set = set()    # names forced opaque
        self.region_allocators: set = set()   # custom allocators declared
        # name -> tag-bit mask for pointers stored with metadata in their
        # low bits (the nginx idiom: 22 LOC in the paper's evaluation).
        self.encoded_pointers: Dict[str, int] = {}
        self.extra_loc: int = 0               # misc. preparation LOC

    # -- the user-facing macros ----------------------------------------------

    def MCR_ADD_OBJ_HANDLER(self, target: str, handler: Callable, loc: int = 2) -> None:
        self.obj_handlers[target] = ObjHandler(target, handler, loc)

    def MCR_ADD_REINIT_HANDLER(self, handler: Callable, stage: str = "conflict", loc: int = 4) -> None:
        self.reinit_handlers.append(ReinitHandler(handler, stage, loc))

    def MCR_FORCE_PRECISE(self, name: str) -> None:
        self.precise_overrides.add(name)

    def MCR_FORCE_OPAQUE(self, name: str) -> None:
        self.opaque_overrides.add(name)

    def MCR_DECLARE_REGION_ALLOCATOR(self, name: str) -> None:
        self.region_allocators.add(name)

    def MCR_ANNOTATE_ENCODED_POINTER(self, name: str, tag_bits: int = 0x3, loc: int = 2) -> None:
        """Declare that global ``name`` stores a pointer with metadata in
        its low ``tag_bits``: the tracer decodes it precisely (instead of
        conservatively pinning the target) and transfer re-encodes it."""
        self.encoded_pointers[name] = tag_bits
        self.extra_loc += loc

    def note_preparation_loc(self, loc: int) -> None:
        """Account non-macro preparation changes (e.g. the 8 LOC that stop
        Apache aborting when it detects its own running instance)."""
        self.extra_loc += loc

    # -- queries ---------------------------------------------------------------

    def obj_handler_for(self, *names: str) -> Optional[ObjHandler]:
        for name in names:
            if name and name in self.obj_handlers:
                return self.obj_handlers[name]
        return None

    def handlers_for_stage(self, stage: str) -> List[ReinitHandler]:
        return [h for h in self.reinit_handlers if h.stage == stage]

    def annotation_loc(self) -> int:
        """Total annotation LOC (the Table-1 'Ann LOC' analogue)."""
        total = self.extra_loc
        total += sum(h.loc for h in self.obj_handlers.values())
        total += sum(h.loc for h in self.reinit_handlers)
        total += len(self.precise_overrides) + len(self.opaque_overrides)
        total += 2 * len(self.region_allocators)
        return total
