"""``mcr-ctl``: the user-facing update trigger.

The paper's ``mcr-ctl`` tool signals the MCR backend of a running program
over a Unix domain socket.  Here the control channel is a direct handle on
the session, and the tool exposes the same operations: query status,
request a live update to a new version, and report the outcome.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.kernel import Kernel
from repro.mcr.config import MCRConfig, TransferCostModel
from repro.mcr.controller import LiveUpdateController, UpdateResult
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import Program


class McrCtl:
    """Control-plane front end for one MCR-enabled program instance."""

    def __init__(self, kernel: Kernel, session: MCRSession) -> None:
        self.kernel = kernel
        self.session = session
        self.history: list = []

    def status(self) -> Dict[str, object]:
        """What ``mcr-ctl status`` would print."""
        session = self.session
        root = session.root_process
        tree = root.tree() if root is not None else []
        status: Dict[str, object] = {
            "program": session.program.name,
            "version": session.program.version,
            "phase": session.phase,
            "startup_complete": session.startup_complete,
            "processes": len(tree),
            "threads": sum(len(p.live_threads()) for p in tree),
            "startup_log_records": len(session.startup_log),
            "metadata_bytes": session.metadata_bytes(),
        }
        if self.history:
            last = self.history[-1]
            status["last_update"] = "committed" if last.committed else "rolled_back"
            status["last_update_failure_site"] = last.failure_site
            status["last_update_retries"] = last.retries
            if last.rolled_back:
                status["last_update_rollback_verified"] = last.rollback_verified
            if last.client is not None:
                client = last.client.to_dict()
                status["last_update_client_p99_ms"] = client["p99_ms"]
                status["last_update_blackout_ms"] = client["blackout_ms"]
                status["last_update_slo_ok"] = client["slo_ok"]
            if last.blackbox_path is not None:
                status["last_update_blackbox"] = last.blackbox_path
        return status

    def stat(self) -> Dict[str, object]:
        """What ``mcr-ctl stat`` would print: per-update detail.

        ``status`` is the one-line health view; ``stat`` returns the full
        update history with the client-perceived verdict per attempt.
        """
        updates = []
        for result in self.history:
            entry: Dict[str, object] = {
                "committed": result.committed,
                "rolled_back": result.rolled_back,
                "failure_site": result.failure_site,
                "retries": result.retries,
                "total_ms": result.total_ms(),
            }
            if result.client is not None:
                entry["client"] = result.client.to_dict()
            if result.blackbox_path is not None:
                entry["blackbox"] = result.blackbox_path
            updates.append(entry)
        return {
            "program": self.session.program.name,
            "version": self.session.program.version,
            "updates": updates,
        }

    def live_update(
        self,
        new_program: Program,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
        cost: Optional[TransferCostModel] = None,
        collector=None,
    ) -> UpdateResult:
        """Signal a live update; returns when committed or rolled back.

        On success the ctl handle re-binds to the new version's session so
        successive updates can be chained (v1 -> v2 -> v3 ...).
        ``collector`` pins the update's observability output to one
        collector (a fleet node's own) instead of whatever is ambient.
        """
        controller = LiveUpdateController(
            self.kernel, self.session, new_program, build=build, config=config,
            cost=cost, collector=collector,
        )
        result = controller.run_update()
        self.history.append(result)
        if result.committed and result.new_session is not None:
            self.session = result.new_session
        return result
