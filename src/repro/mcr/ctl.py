"""``mcr-ctl``: the user-facing update trigger.

The paper's ``mcr-ctl`` tool signals the MCR backend of a running program
over a Unix domain socket.  Here the control channel is a direct handle on
the session, and the tool exposes the same operations: query status,
request a live update to a new version, and report the outcome.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.kernel import Kernel
from repro.mcr.config import MCRConfig, TransferCostModel
from repro.mcr.controller import LiveUpdateController, UpdateResult
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import Program


class McrCtl:
    """Control-plane front end for one MCR-enabled program instance."""

    def __init__(self, kernel: Kernel, session: MCRSession) -> None:
        self.kernel = kernel
        self.session = session
        self.history: list = []

    def status(self) -> Dict[str, object]:
        """What ``mcr-ctl status`` would print."""
        session = self.session
        root = session.root_process
        tree = root.tree() if root is not None else []
        status: Dict[str, object] = {
            "program": session.program.name,
            "version": session.program.version,
            "phase": session.phase,
            "startup_complete": session.startup_complete,
            "processes": len(tree),
            "threads": sum(len(p.live_threads()) for p in tree),
            "startup_log_records": len(session.startup_log),
            "metadata_bytes": session.metadata_bytes(),
        }
        if self.history:
            last = self.history[-1]
            status["last_update"] = "committed" if last.committed else "rolled_back"
            status["last_update_failure_site"] = last.failure_site
            status["last_update_retries"] = last.retries
            if last.rolled_back:
                status["last_update_rollback_verified"] = last.rollback_verified
        return status

    def live_update(
        self,
        new_program: Program,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
        cost: Optional[TransferCostModel] = None,
    ) -> UpdateResult:
        """Signal a live update; returns when committed or rolled back.

        On success the ctl handle re-binds to the new version's session so
        successive updates can be chained (v1 -> v2 -> v3 ...).
        """
        controller = LiveUpdateController(
            self.kernel, self.session, new_program, build=build, config=config, cost=cost
        )
        result = controller.run_update()
        self.history.append(result)
        if result.committed and result.new_session is not None:
            self.session = result.new_session
        return result
