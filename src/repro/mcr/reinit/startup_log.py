"""The startup log: recorded startup-time operations of the old version.

During startup MCR records every syscall each thread performs, until that
thread reaches its first quiescent point.  Each record carries the issuing
process (by pid — pids are mirrored into the new version, so the pid is a
stable cross-version key), the thread's call-stack ID, sanitized arguments,
the sanitized result, and which immutable identifiers the call created
(an fd number or a child pid).

Replay consumes records by ``(pid, stack_id, name)`` match rather than by
global order, which tolerates benign reordering across versions while
still flagging omissions (unconsumed immutable-creating records at the end
of control migration) as conflicts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

# Syscalls whose *result* is a new file descriptor.
FD_CREATING = {"socket", "open", "connect", "accept", "epoll_create"}
# Syscalls whose result is a pair of fds.
FD_PAIR_CREATING = {"socketpair"}
# Syscalls whose result is a new (immutable) process id.
PID_CREATING = {"fork"}


class SyscallRecord:
    """One recorded startup operation."""

    __slots__ = (
        "seq",
        "pid",
        "stack_names",
        "stack_id",
        "name",
        "args",
        "result",
        "created_fds",
        "created_pid",
        "consumed",
    )

    def __init__(
        self,
        seq: int,
        pid: int,
        stack_names: List[str],
        stack_id: int,
        name: str,
        args: Dict[str, Any],
        result: Any,
    ) -> None:
        self.seq = seq
        self.pid = pid
        self.stack_names = list(stack_names)
        self.stack_id = stack_id
        self.name = name
        self.args = args
        self.result = result
        self.created_fds: List[int] = []
        self.created_pid: Optional[int] = None
        if name in FD_CREATING and isinstance(result, int) and result >= 0:
            self.created_fds = [result]
        elif name in FD_PAIR_CREATING and isinstance(result, (tuple, list)):
            self.created_fds = [fd for fd in result if isinstance(fd, int)]
        elif name in PID_CREATING and isinstance(result, int):
            self.created_pid = result
        self.consumed = False

    @property
    def creates_immutable(self) -> bool:
        return bool(self.created_fds) or self.created_pid is not None

    def touches_fd(self) -> Optional[int]:
        """The fd this operation *operates on* (not creates), if any."""
        fd = self.args.get("fd")
        return fd if isinstance(fd, int) else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Record #{self.seq} pid={self.pid} {self.name} "
            f"stack={'/'.join(self.stack_names)} -> {self.result!r}>"
        )


class StartupLog:
    """All startup records of one program instance, indexed for replay."""

    def __init__(self) -> None:
        self._records: List[SyscallRecord] = []
        self._by_pid: Dict[int, List[SyscallRecord]] = {}
        self.memory_bytes = 0  # logical footprint (memory-usage benchmark)

    def record(
        self,
        pid: int,
        stack_names: List[str],
        stack_id: int,
        name: str,
        args: Dict[str, Any],
        result: Any,
    ) -> SyscallRecord:
        rec = SyscallRecord(
            len(self._records), pid, stack_names, stack_id, name, args, result
        )
        self._records.append(rec)
        self._by_pid.setdefault(pid, []).append(rec)
        # Rough in-memory footprint: fixed header + args/strings.
        self.memory_bytes += 96 + sum(len(str(v)) for v in args.values())
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def records(self, pid: Optional[int] = None) -> Iterator[SyscallRecord]:
        source = self._records if pid is None else self._by_pid.get(pid, [])
        return iter(source)

    def find_match(self, pid: int, stack_id: int, name: str) -> Optional[SyscallRecord]:
        """First unconsumed record with the same context hash and syscall."""
        for rec in self._by_pid.get(pid, []):
            if not rec.consumed and rec.stack_id == stack_id and rec.name == name:
                return rec
        return None

    def next_unconsumed(self, pid: int) -> Optional[SyscallRecord]:
        """Strict-order cursor (the sequential matching alternative)."""
        for rec in self._by_pid.get(pid, []):
            if not rec.consumed:
                return rec
        return None

    def unconsumed_immutable(self, pid: Optional[int] = None) -> List[SyscallRecord]:
        """Immutable-creating records replay never matched (omissions)."""
        return [
            rec
            for rec in self.records(pid)
            if not rec.consumed and rec.creates_immutable
        ]

    def startup_fds(self, pid: int) -> List[int]:
        """fd numbers created during startup by ``pid`` (separability set)."""
        fds: List[int] = []
        for rec in self._by_pid.get(pid, []):
            fds.extend(rec.created_fds)
        return fds

    def reset_consumption(self) -> None:
        for rec in self._records:
            rec.consumed = False

    def pids(self) -> List[int]:
        return sorted(self._by_pid)
