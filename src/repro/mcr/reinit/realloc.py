"""Global reallocation: immutable memory objects at identical addresses.

Conservative tracing marks some old-version memory objects *immutable*
(likely-pointer targets that cannot be safely relocated).  The new version
must present each of them at exactly its old address.  Per the paper (§5):

* **static objects** — a linker script pins the symbol at its old address
  (``pinned_symbols`` consumed by the loader);
* **shared libraries** — prelinked copies are mapped at the old base
  (``lib_bases`` consumed by the loader);
* **heap objects** — overlapping objects are coalesced into *superobjects*
  that dedicated allocator support reserves in the fresh heap before the
  new version's startup allocations run (``PtMallocHeap.reserve_range``).

The immutability analysis itself runs *offline* (before the update), as in
the paper — that is why the build step for a new version takes a
``GlobalRealloc`` plan computed against the running old version.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.process import Process
from repro.mem.ptmalloc import PtMallocHeap


class Superobject:
    """A coalesced span of immutable old-version heap memory."""

    __slots__ = ("base", "size")

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Superobject [0x{self.base:x}, 0x{self.end:x})>"


def coalesce(spans: List[Tuple[int, int]], gap: int = 64) -> List[Superobject]:
    """Merge (address, size) spans closer than ``gap`` into superobjects.

    Coalescing keeps the reservation count small and absorbs allocator
    headers/padding between neighbouring immutable chunks.
    """
    if not spans:
        return []
    ordered = sorted(spans)
    merged: List[Superobject] = []
    current_base, current_end = ordered[0][0], ordered[0][0] + ordered[0][1]
    for base, size in ordered[1:]:
        end = base + size
        if base <= current_end + gap:
            current_end = max(current_end, end)
        else:
            merged.append(Superobject(current_base, current_end - current_base))
            current_base, current_end = base, end
    merged.append(Superobject(current_base, current_end - current_base))
    return merged


class GlobalRealloc:
    """The per-process reallocation plan for one update."""

    def __init__(self) -> None:
        # Keyed by old-version pid (== new-version pid after forcing).
        self.heap_superobjects: Dict[int, List[Superobject]] = {}
        self.pinned_symbols: Dict[str, int] = {}
        self.lib_bases: Dict[str, int] = {}

    # -- plan construction (offline analysis output) --------------------------------

    def add_heap_spans(self, pid: int, spans: List[Tuple[int, int]]) -> None:
        self.heap_superobjects[pid] = coalesce(
            [(b, s) for b, s in spans] + [(o.base, o.size) for o in self.heap_superobjects.get(pid, [])]
        )

    def pin_symbol(self, name: str, address: int) -> None:
        self.pinned_symbols[name] = address

    def pin_library(self, name: str, base: int) -> None:
        self.lib_bases[name] = base

    @classmethod
    def from_old_process(
        cls,
        old_root: Process,
        immutable_static: Optional[List[str]] = None,
        heap_spans_by_pid: Optional[Dict[int, List[Tuple[int, int]]]] = None,
    ) -> "GlobalRealloc":
        """Build a plan from the old version (the offline relink step)."""
        plan = cls()
        symbols = getattr(old_root, "symbols", None)
        if symbols is not None:
            for name in immutable_static or []:
                symbol = symbols.get(name)
                if symbol is not None:
                    plan.pin_symbol(name, symbol.address)
        for lib_name, lib in getattr(old_root, "libs", {}).items():
            plan.pin_library(lib_name, lib.base)
        for pid, spans in (heap_spans_by_pid or {}).items():
            plan.add_heap_spans(pid, spans)
        return plan

    # -- application in the new version ------------------------------------------------

    def union_superobjects(self) -> List[Superobject]:
        """Coalesce superobjects across all processes.

        Forked processes share heap addresses (their spaces are clones),
        so per-pid spans overlap; the new version's *root* heap reserves
        the union once and fork propagates it tree-wide.
        """
        spans = [
            (o.base, o.size)
            for per_pid in self.heap_superobjects.values()
            for o in per_pid
        ]
        return coalesce(spans)

    def apply_to_heap(self, pid: int, heap: PtMallocHeap) -> List[Superobject]:
        """Reserve this pid's superobjects in a fresh heap."""
        reserved: List[Superobject] = []
        for superobject in self.heap_superobjects.get(pid, []):
            heap.reserve_range(superobject.base, superobject.size)
            reserved.append(superobject)
        return reserved

    def apply_union_to_heap(self, heap: PtMallocHeap) -> List[Superobject]:
        """Reserve the cross-process union in one (root) heap."""
        reserved: List[Superobject] = []
        for superobject in self.union_superobjects():
            heap.reserve_range(superobject.base, superobject.size)
            reserved.append(superobject)
        return reserved

    def release_from_heap(self, pid: int, heap: PtMallocHeap) -> None:
        """Deallocate superobjects "later when no longer in use" — called
        once state transfer has copied their contents and the update
        committed (contents stay resident; the *reservation* converts to
        plain occupancy only conceptually — we keep the range reserved so
        the allocator never hands it out while the objects live)."""
        # Intentionally a no-op beyond documentation: immutable objects
        # remain pinned for the lifetime of the new version.
        return None
