"""Mutable reinitialization (paper §5).

Record the old version's startup syscalls; restart the new version from
scratch; replay — conservatively, by version-agnostic call-stack ID — only
the operations that refer to *immutable state objects* (inherited fds,
forced pids, pinned memory), and run everything else live.  The outcome is
control migration: the new version's own startup code recreates its threads
and a large share of its data structures, converging on the old version's
quiescent state.
"""

from repro.mcr.reinit.callstack import deep_match, sanitize_args, sanitize_result
from repro.mcr.reinit.startup_log import StartupLog, SyscallRecord
from repro.mcr.reinit.immutable import FdStash, ImmutableInventory
from repro.mcr.reinit.realloc import GlobalRealloc, Superobject
from repro.mcr.reinit.replay import ReplayEngine, ReplayContext

__all__ = [
    "deep_match",
    "sanitize_args",
    "sanitize_result",
    "StartupLog",
    "SyscallRecord",
    "FdStash",
    "ImmutableInventory",
    "GlobalRealloc",
    "Superobject",
    "ReplayEngine",
    "ReplayContext",
]
