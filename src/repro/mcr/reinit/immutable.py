"""Immutable state objects: inventory, inheritance, and separability.

At update time MCR builds an inventory of the old version's immutable
objects (paper §5):

* every open **file descriptor** in every process of the old tree (they
  all reference in-kernel state that must survive);
* every **process id** in the old tree (servers stash pids in globals);
* **memory addresses** flagged immutable by the conservative analysis
  (handled by ``realloc``/tracing, referenced here for bookkeeping).

*Global inheritance*: the first process of the new version receives all
old fds — over a Unix-domain socket, with each message carrying the source
``(pid, fd)`` identity — into a **stash** in the reserved fd range.  fork
propagates the stash down the new hierarchy for free; replay *claims*
entries out of the stash onto their original numbers; whatever is left
unclaimed when control migration completes is garbage-collected.

*Global separability*: claimed numbers are blocked from reuse, so a
startup-time descriptor number can never be recycled into ambiguity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.kernel.process import Process


class FdEntry:
    """One inherited descriptor: its source identity and kernel object."""

    __slots__ = ("src_pid", "src_fd", "obj", "startup")

    def __init__(self, src_pid: int, src_fd: int, obj: Any, startup: bool) -> None:
        self.src_pid = src_pid
        self.src_fd = src_fd
        self.obj = obj
        self.startup = startup  # created during old-version startup?

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FdEntry {self.src_pid}:{self.src_fd} {self.obj.kind}>"


class ImmutableInventory:
    """Everything the new version must inherit from the old version."""

    def __init__(self) -> None:
        self.fd_entries: List[FdEntry] = []
        self.pids: List[int] = []
        self.pid_by_creation_stack: Dict[int, int] = {}

    @classmethod
    def collect(cls, root: Process, startup_fds_by_pid: Dict[int, List[int]]) -> "ImmutableInventory":
        """Walk the quiesced old tree and inventory its immutable objects."""
        inventory = cls()
        for process in root.tree():
            inventory.pids.append(process.pid)
            inventory.pid_by_creation_stack[process.creation_stack_id] = process.pid
            startup_set = set(startup_fds_by_pid.get(process.pid, ()))
            for fd, obj in process.fdtable.items():
                inventory.fd_entries.append(
                    FdEntry(process.pid, fd, obj, startup=fd in startup_set)
                )
        return inventory

    def entries_for_pid(self, pid: int) -> List[FdEntry]:
        return [e for e in self.fd_entries if e.src_pid == pid]

    def lookup(self, src_pid: int, src_fd: int) -> Optional[FdEntry]:
        for entry in self.fd_entries:
            if entry.src_pid == src_pid and entry.src_fd == src_fd:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.fd_entries)


class FdStash:
    """The new version's view of inherited descriptors.

    Maps ``(src_pid, src_fd)`` to the *stash fd* where the object sits in
    the new version's reserved range until claimed.  Shared (by reference)
    across the new tree — the claim state is global, matching the paper's
    "progressively propagate all the objects down the process hierarchy".
    """

    def __init__(self) -> None:
        self._slots: Dict[Tuple[int, int], int] = {}
        self._claimed: Dict[Tuple[int, int], int] = {}

    def add(self, src_pid: int, src_fd: int, stash_fd: int) -> None:
        self._slots[(src_pid, src_fd)] = stash_fd

    def stash_fd_for(self, src_pid: int, src_fd: int) -> Optional[int]:
        return self._slots.get((src_pid, src_fd))

    def claim(self, src_pid: int, src_fd: int, installed_at: int) -> None:
        self._claimed[(src_pid, src_fd)] = installed_at

    def is_claimed(self, src_pid: int, src_fd: int) -> bool:
        return (src_pid, src_fd) in self._claimed

    def unclaimed(self) -> List[Tuple[Tuple[int, int], int]]:
        """Remaining ((src_pid, src_fd), stash_fd) pairs to garbage-collect."""
        return [
            (key, stash_fd)
            for key, stash_fd in self._slots.items()
            if key not in self._claimed
        ]

    def all_stash_fds(self) -> List[int]:
        return sorted(self._slots.values())

    def __len__(self) -> int:
        return len(self._slots)
