"""Call-stack IDs and conservative argument matching.

The paper matches recorded and replayed syscalls by *call stack ID* —
"computed by simply hashing all the active function names on the call stack
of the thread issuing the system call" (§5) — which is robust to
addition/deletion/reordering of syscalls across versions.  The ID function
itself lives with the thread machinery (``repro.kernel.process.call_stack_id``);
this module provides the argument side:

* ``sanitize_args`` — strip non-comparable values (callables become their
  names, bytes become digests beyond a size threshold) so records are
  version-agnostic and cheap to store.
* ``deep_match``   — the paper's "deep comparison of the arguments",
  following nested structure, with an fd-translation map so live-created
  descriptors that legitimately differ between versions do not raise
  spurious conflicts.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.kernel.process import call_stack_id  # re-exported for convenience

__all__ = ["call_stack_id", "sanitize_args", "sanitize_result", "deep_match"]

_INLINE_BYTES_LIMIT = 64

# Argument keys that hold file descriptor numbers, for translation-aware
# comparison.  (The simulated syscall ABI uses keyword args throughout.)
_FD_KEYS = {"fd"}


def _sanitize(value: Any) -> Any:
    if callable(value):
        return f"<fn:{getattr(value, '__name__', 'anonymous')}>"
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        if len(data) <= _INLINE_BYTES_LIMIT:
            return data
        digest = hashlib.sha1(data).hexdigest()[:16]
        return f"<bytes:{len(data)}:{digest}>"
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    # Opaque runtime objects (e.g. shared in-process structures passed to
    # thread bodies) are matched by type only: their identity is
    # version-local and never comparable across versions.
    return f"<obj:{type(value).__name__}>"


def sanitize_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a syscall argument dict for recording/comparison."""
    return {k: _sanitize(v) for k, v in args.items()}


def sanitize_result(value: Any) -> Any:
    return _sanitize(value)


def deep_match(
    recorded: Any,
    observed: Any,
    fd_translation: Optional[Dict[int, int]] = None,
    _key: Optional[str] = None,
) -> bool:
    """Deep-compare a recorded argument structure against an observed one.

    ``fd_translation`` maps old-version fd numbers to the new version's
    live-created equivalents; an fd-valued field matches when the observed
    number equals the recorded one *or* its translation.
    """
    if isinstance(recorded, dict) and isinstance(observed, dict):
        if recorded.keys() != observed.keys():
            return False
        return all(
            deep_match(recorded[k], observed[k], fd_translation, _key=k)
            for k in recorded
        )
    if isinstance(recorded, (list, tuple)) and isinstance(observed, (list, tuple)):
        if len(recorded) != len(observed):
            return False
        return all(
            deep_match(r, o, fd_translation, _key=_key)
            for r, o in zip(recorded, observed)
        )
    if (
        fd_translation
        and _key in _FD_KEYS
        and isinstance(recorded, int)
        and isinstance(observed, int)
    ):
        return observed == recorded or observed == fd_translation.get(recorded)
    return recorded == observed
