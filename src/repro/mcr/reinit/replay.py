"""The mutable-reinitialization replay engine (paper §5).

Runs inside the *new* version during its controlled startup.  Every
intercepted syscall is matched against the old startup log by
``(pid, call-stack-id, syscall)``:

* **no match** — a new operation introduced by the update: executed live;
* **match, immutable-object operation** — *replayed*: the recorded result
  is returned and the inherited object (fd from the stash, forced pid) is
  installed, without disturbing the old version that still shares it;
* **match, transient operation** — executed live, with an fd-translation
  table bridging descriptor numbers that legitimately differ;
* **match, argument mismatch** — a ``ConflictError`` (rollback), unless an
  ``MCR_ADD_REINIT_HANDLER`` resolves it.

Omissions (recorded immutable-creating operations the new startup never
issued) are detected at the end of control migration and likewise flagged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConflictError
from repro.kernel.process import Process, Thread
from repro.mcr.faults import fire
from repro.kernel.syscalls import SyscallRequest
from repro.mcr.reinit.callstack import deep_match, sanitize_args
from repro.mcr.reinit.immutable import FdStash, ImmutableInventory
from repro.mcr.reinit.startup_log import (
    FD_CREATING,
    FD_PAIR_CREATING,
    PID_CREATING,
    StartupLog,
    SyscallRecord,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.libmcr import MCRSession

# Operations that only *use* an fd; replayed iff the fd is inherited.
FD_USING = {"bind", "listen", "read", "write", "send", "recv", "close", "sendmsg", "recvmsg", "epoll_ctl"}

# Virtual-time cost of matching one syscall against the log (stack-ID
# hash, log lookup, deep argument comparison) — the source of the paper's
# 1-45% replay overhead over the original startup.
REPLAY_MATCH_COST_NS = 3_000


class ReplayContext:
    """What a reinit conflict handler gets to look at (and resolve with)."""

    def __init__(
        self,
        engine: "ReplayEngine",
        process: Process,
        thread: Thread,
        record: Optional[SyscallRecord],
        name: str,
        args: Dict[str, Any],
    ) -> None:
        self.engine = engine
        self.process = process
        self.thread = thread
        self.record = record
        self.name = name
        self.args = args
        self.resolved = False
        self.override_result: Any = None
        self.execute_live = False

    def resolve_with_result(self, result: Any) -> None:
        """Consume the record and return ``result`` to the program."""
        self.resolved = True
        self.override_result = result

    def resolve_execute_live(self) -> None:
        """Consume the record but run the operation live anyway."""
        self.resolved = True
        self.execute_live = True


class ReplayEngine:
    """Cross-version replay state for one live update attempt."""

    def __init__(
        self,
        session: "MCRSession",
        old_log: StartupLog,
        inventory: ImmutableInventory,
        stash: FdStash,
        match_strategy: str = "callstack",
    ) -> None:
        self.session = session
        self.old_log = old_log
        self.inventory = inventory
        self.stash = stash
        # "callstack" (the paper's choice) matches by version-agnostic
        # call-stack ID and tolerates reordering/addition/deletion;
        # "sequential" (the alternative the paper argues against, §5:
        # "global or partial orderings of operations") consumes records
        # strictly in recorded order and is provided for comparison.
        if match_strategy not in ("callstack", "sequential"):
            raise ValueError(f"unknown match strategy: {match_strategy}")
        self.match_strategy = match_strategy
        # pid -> {old_fd: new_fd} for transient (live-created) descriptors.
        self.fd_translation: Dict[int, Dict[int, int]] = {}
        self.conflicts: List[ConflictError] = []
        self.replayed_count = 0
        self.live_count = 0

    # -- the interception entry point (a generator: drive with yield from) ------

    def handle(self, sys_api, name: str, args: Dict[str, Any], timeout_ns: Optional[int]):
        process: Process = sys_api.process
        thread: Thread = sys_api.thread
        pid = process.pid
        # The raise unwinds through the replaying thread's generator stack
        # into the controller's kernel.run — the same route a real replay
        # conflict takes.  nth-hit arming selects which replayed syscall.
        fire(self.session.config, "reinit.replay")
        process.kernel.clock.advance(REPLAY_MATCH_COST_NS)
        translation = self.fd_translation.setdefault(pid, {})
        if self.match_strategy == "sequential":
            record = self.old_log.next_unconsumed(pid)
            if record is not None and (
                record.name != name or record.stack_id != thread.stack_id()
            ):
                # Strict ordering: any insertion/deletion/reordering in
                # the new startup derails the whole match.
                context = ReplayContext(self, process, thread, record, name, args)
                self._raise_or_resolve(
                    context,
                    ConflictError(
                        "reinit",
                        f"{name}@{'/'.join(thread.call_stack)}",
                        f"sequential mismatch: expected {record.name} "
                        f"@{'/'.join(record.stack_names)}",
                    ),
                )
                record = None if context.execute_live else record
        else:
            record = self.old_log.find_match(pid, thread.stack_id(), name)
        if record is None:
            # New operation introduced by the update: run it live.
            self.live_count += 1
            result = yield SyscallRequest(name, args, timeout_ns)
            return result
        if not deep_match(record.args, sanitize_args(args), translation):
            context = ReplayContext(self, process, thread, record, name, args)
            self._raise_or_resolve(
                context,
                ConflictError(
                    "reinit",
                    f"{name}@{'/'.join(record.stack_names)}",
                    f"argument mismatch: recorded {record.args!r}, observed {sanitize_args(args)!r}",
                ),
            )
            if context.override_result is not None and not context.execute_live:
                record.consumed = True
                return context.override_result
            if not context.execute_live:
                record.consumed = True
                return record.result
            record.consumed = True
            result = yield SyscallRequest(name, args, timeout_ns)
            return result
        record.consumed = True
        # -- fd-creating operations ------------------------------------------
        if name in FD_CREATING or name in FD_PAIR_CREATING:
            created = record.created_fds
            if created and all(
                self.stash.stash_fd_for(pid, fd) is not None for fd in created
            ):
                for fd in created:
                    self._claim_inherited(process, pid, fd)
                self.replayed_count += 1
                return record.result
            # Created during old startup but closed before the update: not
            # inherited, hence not immutable — run live and learn the
            # translation for later argument matching.
            self.live_count += 1
            result = yield SyscallRequest(name, args, timeout_ns)
            if name in FD_CREATING and isinstance(result, int) and created:
                translation[created[0]] = result
            elif name in FD_PAIR_CREATING and isinstance(result, (tuple, list)):
                for old_fd, new_fd in zip(created, result):
                    translation[old_fd] = new_fd
            return result
        # -- pid-creating operations -------------------------------------------
        if name in PID_CREATING:
            namespace = process.namespace or process.kernel.pidns
            if record.created_pid is not None:
                namespace.force_next_pid(record.created_pid)
            self.replayed_count += 1
            result = yield SyscallRequest(name, args, timeout_ns)
            return result
        # -- fd-using operations -------------------------------------------------
        if name in FD_USING:
            fd = args.get("fd")
            if isinstance(fd, int) and self.stash.stash_fd_for(pid, fd) is not None:
                # Touches inherited in-kernel state: pure replay.
                self.replayed_count += 1
                return record.result
            self.live_count += 1
            result = yield SyscallRequest(name, args, timeout_ns)
            return result
        # -- everything else (sleep, compute, mmap, thread_create, ...) ---------
        self.live_count += 1
        result = yield SyscallRequest(name, args, timeout_ns)
        return result

    # -- end-of-control-migration checks ----------------------------------------------

    def finish(self, new_root: Process) -> None:
        """Verify omissions and garbage-collect the unclaimed stash."""
        pids = [p.pid for p in new_root.tree()]
        omissions = [
            rec
            for pid in pids
            for rec in self.old_log.unconsumed_immutable(pid)
            # Only count omissions for objects actually inherited: a
            # startup fd closed before the update left nothing behind.
            if any(
                self.stash.stash_fd_for(pid, fd) is not None
                and not self.stash.is_claimed(pid, fd)
                for fd in rec.created_fds
            )
            or (
                rec.created_pid is not None
                and rec.created_pid not in pids
            )
        ]
        if omissions:
            rec = omissions[0]
            conflict = ConflictError(
                "reinit",
                f"{rec.name}@{'/'.join(rec.stack_names)}",
                f"recorded operation never replayed by the new version "
                f"({len(omissions)} omission(s))",
            )
            context = ReplayContext(self, new_root, None, rec, rec.name, dict(rec.args))
            self._raise_or_resolve(context, conflict)
        # GC: drop every stash descriptor everywhere in the new tree.
        # Claimed objects live on at their original numbers (with their own
        # reference); unclaimed ones are released entirely.
        for stash_fd in self.stash.all_stash_fds():
            for process in new_root.tree():
                obj = process.fdtable.try_get(stash_fd)
                if obj is None:
                    continue
                process.fdtable.close(stash_fd)
                release = getattr(obj, "release", None)
                if release is not None:
                    release()

    # -- volatile-quiescent-state support (used by reinit handlers) ----------------------

    def respawn_counterpart(
        self,
        new_parent: Process,
        old_process: Process,
        child_main: Callable,
        args: Tuple = (),
    ) -> Process:
        """Fork a new-version counterpart of an on-demand old process.

        Pairs by forcing the old pid and copying the old creation stack, so
        both mutable tracing and fd restoration can match the two.
        """
        return new_parent.kernel.fork_for_restore(
            new_parent,
            child_main,
            args,
            name=old_process.name,
            creation_stack=list(old_process.creation_stack),
            forced_pid=old_process.pid,
        )

    # -- internals -------------------------------------------------------------------------

    def _claim_inherited(self, process: Process, src_pid: int, src_fd: int) -> None:
        """Move an inherited object from the stash to its original number."""
        stash_fd = self.stash.stash_fd_for(src_pid, src_fd)
        obj = process.fdtable.get(stash_fd)
        occupant = process.fdtable.try_get(src_fd)
        if occupant is not None:
            # A propagated/foreign descriptor landed on this number first
            # (the clash the paper describes); evict it.
            process.fdtable.close(src_fd)
            release = getattr(occupant, "release", None)
            if release is not None:
                release()
        acquire = getattr(obj, "acquire", None)
        if acquire is not None:
            acquire()
        process.fdtable.install(obj, fd=src_fd)
        process.fdtable.block_reuse(src_fd)  # global separability
        if obj.kind == "listener":
            process.kernel.net.adopt_listener(obj)
        self.stash.claim(src_pid, src_fd, src_fd)

    def _raise_or_resolve(self, context: ReplayContext, conflict: ConflictError) -> None:
        annotations = getattr(self.session.program, "annotations", None)
        if annotations is not None:
            for handler in annotations.handlers_for_stage("conflict"):
                handler.handler(context)
                if context.resolved:
                    return
        self.conflicts.append(conflict)
        raise conflict
