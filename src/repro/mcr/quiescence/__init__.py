"""Quiescence: profiling (§4) and run-time detection (§4).

* ``report``    — the profiler's output: thread classes, their long-lived
  loops, and per-thread quiescent points (persistent vs volatile).
* ``profiler``  — statistical profiling of blocking calls + loop profiling
  under a user-supplied test workload.
* ``detection`` — the run-time barrier-synchronization protocol built on
  unblockified blocking calls.
"""

from repro.mcr.quiescence.report import QuiescenceReport, ThreadClass
from repro.mcr.quiescence.profiler import QuiescenceProfiler
from repro.mcr.quiescence.detection import QuiescenceProtocol

__all__ = [
    "QuiescenceReport",
    "ThreadClass",
    "QuiescenceProfiler",
    "QuiescenceProtocol",
]
