"""The quiescence profiler (paper §4).

Runs the target program under a user-supplied *execution-stalling* test
workload and reports, per thread class:

* where threads spend their stalled time (**statistical profiling of
  library calls** — the class's quiescent point candidate), and
* which loops never terminate during the workload (**loop profiling** —
  the long-lived loop the quiescent point lives under).

The workload must drive the program into every state that should be a
legal quiescent state at update time (e.g. idle connections).  Workloads
are callables ``(kernel) -> list[Process]`` that spawn simulated client
processes; profiling ends when every client exits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro import obs
from repro.errors import ProfilerError
from repro.kernel.kernel import Kernel
from repro.kernel.process import EXITED, Process, Thread
from repro.mcr.quiescence.report import QuiescenceReport, ThreadClass
from repro.runtime.instrument import BuildConfig
from repro.runtime.program import Program, load_program


def _all_tree_processes(root: Process) -> List[Process]:
    """The whole process tree, including exited members (daemonize etc.)."""
    result = [root]
    stack = list(root.children)
    while stack:
        process = stack.pop()
        result.append(process)
        stack.extend(process.children)
    return result


def _tree_quiet(root: Process) -> bool:
    """Every live thread in the tree is blocked (a stall point)."""
    live_threads: List[Thread] = []
    for process in _all_tree_processes(root):
        if not process.exited:
            live_threads.extend(process.live_threads())
    return bool(live_threads) and all(t.state == "blocked" for t in live_threads)


class QuiescenceProfiler:
    """Profile a program; produce a ``QuiescenceReport``."""

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        self.kernel = kernel or Kernel()

    def profile(
        self,
        program: Program,
        workload: Callable[[Kernel], List[Process]],
        settle_steps: int = 200_000,
        workload_steps: int = 2_000_000,
        observe_window_ns: int = 150_000_000,
    ) -> QuiescenceReport:
        """Run ``program`` under ``workload`` and classify its threads."""
        kernel = self.kernel
        root = load_program(kernel, program, build=BuildConfig.baseline())
        # Phase 1: startup.  Run until the program stalls for the first
        # time; the classes alive now are the *persistent* ones.
        kernel.run(until=lambda: _tree_quiet(root), max_steps=settle_steps)
        if not _tree_quiet(root):
            raise ProfilerError(
                f"{program.name} never reached a stall state during startup"
            )
        startup_classes = self._live_class_ids(root)
        # Phase 2: the test workload.  Observation happens while the
        # execution-stalling connections are still open (that is the whole
        # point of the workload), so the run ends when the server tree and
        # every client are stalled — not when clients exit.
        clients = workload(kernel)
        if not clients:
            raise ProfilerError("workload spawned no client processes")
        t0_ns = kernel.clock.now_ns

        def observed() -> bool:
            if kernel.clock.now_ns - t0_ns < observe_window_ns:
                return False
            clients_stalled = all(
                c.exited or all(t.state == "blocked" for t in c.live_threads())
                for c in clients
            )
            return clients_stalled and _tree_quiet(root)

        kernel.run(until=observed, max_steps=workload_steps)
        if not observed():
            raise ProfilerError("test workload did not stall within budget")
        return self._classify(program, root, startup_classes)

    # -- internals ------------------------------------------------------------

    def _live_class_ids(self, root: Process) -> Set[int]:
        ids: Set[int] = set()
        for process in _all_tree_processes(root):
            if process.exited:
                continue
            for thread in process.live_threads():
                ids.add(thread.creation_stack_id)
        return ids

    def _classify(
        self,
        program: Program,
        root: Process,
        startup_classes: Set[int],
    ) -> QuiescenceReport:
        report = QuiescenceReport(program.name)
        classes: Dict[int, ThreadClass] = {}
        for process in _all_tree_processes(root):
            for thread in process.threads.values():
                cls = classes.get(thread.creation_stack_id)
                if cls is None:
                    cls = ThreadClass(thread.creation_stack_id, thread.creation_stack)
                    classes[cls.creation_stack_id] = cls
                cls.count += 1
                if thread.state == EXITED or process.exited:
                    cls.exited_count += 1
                self._merge_thread_stats(cls, thread)
        for cls in classes.values():
            # A class is long-lived when at least one member survived the
            # whole profiling run.
            cls.kind = "long" if cls.exited_count < cls.count else "short"
            if cls.kind == "long":
                cls.persistent = cls.creation_stack_id in startup_classes
                if cls.quiescent_point is None:
                    raise ProfilerError(
                        f"long-lived class {cls.name} never blocked: "
                        "the test workload does not stall it"
                    )
            report.add_class(cls)
            obs.incr(f"quiescence.classes.{cls.kind}")
            obs.incr("quiescence.threads_profiled", cls.count)
        obs.emit(
            "quiescence.profiled",
            program=program.name,
            classes=len(classes),
            long_lived=sum(1 for c in classes.values() if c.kind == "long"),
        )
        return report

    def _merge_thread_stats(self, cls: ThreadClass, thread: Thread) -> None:
        # Statistical profiling: pick the site with the most stalled time.
        best_site: Optional[str] = None
        best_ns = -1
        for site, stalled_ns in thread.blocking_time_ns.items():
            cls.total_blocking_ns += stalled_ns
            if stalled_ns > best_ns:
                best_site, best_ns = site, stalled_ns
        # Include the site the thread is currently parked at (it may have
        # been stalled there since before any wake, with no accounting yet).
        if thread.state == "blocked" and thread.blocked_on:
            current = f"{thread.top_function()}:{thread.blocked_on.split(':')[0]}"
            kernel = thread.process.kernel
            stalled_ns = kernel.clock.now_ns - thread.block_started_ns
            if stalled_ns > best_ns:
                best_site, best_ns = current, stalled_ns
        if best_site is not None and best_ns >= 0:
            function, syscall = best_site.rsplit(":", 1)
            candidate = (function, syscall)
            if cls.quiescent_point is None or best_ns > getattr(cls, "_qp_ns", -1):
                cls.quiescent_point = candidate
                cls._qp_ns = best_ns
        # Loop profiling: loops still on the stack never terminated.
        for loop_key in thread.loop_stack:
            if loop_key not in cls.long_lived_loops:
                cls.long_lived_loops.append(loop_key)
