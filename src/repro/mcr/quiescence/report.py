"""Profiler output: thread classes and quiescent points.

A *thread class* groups threads by creation-time call stack ID — "the
short-lived and long-lived classes of threads identified" in the paper's
Table 1.  Each long-lived class carries its deepest never-terminating loop
and its quiescent point: the blocking call site where threads of the class
spend most of their stalled time.

A quiescent point is **persistent** when the class is already alive right
after startup (it will be recreated automatically by mutable
reinitialization) and **volatile** when it only appears later (on-demand
workers — these need ``MCR_ADD_REINIT_HANDLER`` support to be restored).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class ThreadClass:
    """Threads sharing a creation-time call stack ID."""

    def __init__(self, creation_stack_id: int, creation_stack: List[str]) -> None:
        self.creation_stack_id = creation_stack_id
        self.creation_stack = list(creation_stack)
        self.count = 0
        self.exited_count = 0
        self.kind = "short"  # "short" | "long"
        self.persistent = False
        # (function_name, syscall_name) with the largest stalled time.
        self.quiescent_point: Optional[Tuple[str, str]] = None
        self.long_lived_loops: List[str] = []
        self.total_blocking_ns = 0

    @property
    def name(self) -> str:
        return self.creation_stack[-1] if self.creation_stack else "<root>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        qp = f" qp={self.quiescent_point}" if self.quiescent_point else ""
        return f"<ThreadClass {self.name} {self.kind} x{self.count}{qp}>"


class QuiescenceReport:
    """Everything the profiler learned; consumed by the build step."""

    def __init__(self, program_name: str) -> None:
        self.program_name = program_name
        self.classes: Dict[int, ThreadClass] = {}

    def add_class(self, cls: ThreadClass) -> None:
        self.classes[cls.creation_stack_id] = cls

    # -- Table 1 counters -----------------------------------------------------

    def short_lived(self) -> List[ThreadClass]:
        return [c for c in self.classes.values() if c.kind == "short"]

    def long_lived(self) -> List[ThreadClass]:
        return [c for c in self.classes.values() if c.kind == "long"]

    def quiescent_points(self) -> Set[Tuple[str, str]]:
        """(function, syscall) pairs to unblockify at build time."""
        return {
            c.quiescent_point
            for c in self.long_lived()
            if c.quiescent_point is not None
        }

    def persistent_points(self) -> Set[Tuple[str, str]]:
        return {
            c.quiescent_point
            for c in self.long_lived()
            if c.persistent and c.quiescent_point is not None
        }

    def volatile_points(self) -> Set[Tuple[str, str]]:
        return self.quiescent_points() - self.persistent_points()

    def summary(self) -> Dict[str, int]:
        """The 'Quiescence profiling' column group of Table 1."""
        qps = [c for c in self.long_lived() if c.quiescent_point is not None]
        return {
            "SL": len(self.short_lived()),
            "LL": len(self.long_lived()),
            "QP": len({(c.creation_stack_id, c.quiescent_point) for c in qps}),
            "Per": len([c for c in qps if c.persistent]),
            "Vol": len([c for c in qps if not c.persistent]),
        }

    def render(self) -> str:
        """Human-readable report (what the profiler prints for the user)."""
        lines = [f"Quiescence profile for {self.program_name}", "=" * 48]
        for cls in sorted(self.classes.values(), key=lambda c: (c.kind, c.name)):
            lines.append(
                f"[{cls.kind:5s}] {' / '.join(cls.creation_stack)} (x{cls.count})"
            )
            if cls.kind == "long":
                scope = "persistent" if cls.persistent else "volatile"
                lines.append(f"         quiescent point: {cls.quiescent_point} ({scope})")
                if cls.long_lived_loops:
                    lines.append(f"         long-lived loops: {', '.join(cls.long_lived_loops)}")
        counts = self.summary()
        lines.append("-" * 48)
        lines.append(
            "SL={SL} LL={LL} QP={QP} Per={Per} Vol={Vol}".format(**counts)
        )
        return "\n".join(lines)
