"""Run-time quiescence detection: the barrier protocol (paper §4).

The MCR build wraps every profiled quiescent-point call site so the
blocking call never truly blocks (*unblockification*): the wrapper issues
the call in timeout slices and runs the quiescence hook between slices.
When an update is requested the hook routes the thread into a barrier,
"immediately block[ing] all the running program threads".

The protocol object lives in the MCR session; the hook itself is invoked
from ``libmcr`` interception (the wrapper's hook call).  ``wait`` runs the
world until every live thread of the program tree is parked at the
barrier, giving the quiescence time reported in §8 (< 100 ms,
workload-independent).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, TYPE_CHECKING

from repro.errors import QuiescenceTimeout
from repro.kernel.kernel import Barrier, Kernel
from repro.mcr.faults import fire
from repro.kernel.process import BLOCKED, Process, Thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.libmcr import MCRSession


def tree_live_threads(root: Process) -> List[Thread]:
    threads: List[Thread] = []
    for process in root.tree():
        threads.extend(process.live_threads())
    return threads


class QuiescenceProtocol:
    """Barrier-synchronization quiescence for one program instance."""

    def __init__(self, session: "MCRSession") -> None:
        self.session = session
        self.barrier: Optional[Barrier] = None
        self.requested = False
        self.requested_at_ns = 0
        self.converged_at_ns: Optional[int] = None
        # Rolling-update scoping: when set, only these processes divert to
        # the barrier at their quiescent points — the rest of the tree
        # keeps serving.  None (the default, and the whole-tree mode)
        # scopes the protocol to every process.
        self.scope: Optional[Set[Process]] = None
        # Walk-avoidance floor for ``is_quiescent``: after a failed walk,
        # no walk can succeed until at least one more thread arrives at
        # the barrier (``Barrier.arrived`` is monotonic), so walks below
        # the floor are skipped — except a 1-in-64 sample that covers
        # stragglers exiting instead of arriving.
        self._arrivals_floor = 0
        self._skipped_checks = 0

    # -- controller side ----------------------------------------------------------

    def request(self, scope: Optional[Iterable[Process]] = None) -> None:
        """Start the protocol; threads divert to the barrier at their QPs.

        ``scope`` restricts the protocol to a subset of processes (rolling
        updates quiesce one worker batch at a time); None quiesces the
        whole tree, exactly as before.
        """
        self.barrier = Barrier()
        self.requested = True
        self.requested_at_ns = self.session.kernel.clock.now_ns
        self.converged_at_ns = None
        self.scope = set(scope) if scope is not None else None
        self._arrivals_floor = 0
        self._skipped_checks = 0

    def extend_scope(self, processes: Iterable[Process]) -> None:
        """Widen an in-progress scoped protocol to more processes.

        The rolling controller pre-requests batch N+1 here while batch N
        is still in transfer (the pipeline overlap); with no scope set the
        protocol already covers everything and this is a no-op.
        """
        if self.scope is not None:
            self.scope.update(processes)

    def in_scope(self, process: Process) -> bool:
        return self.scope is None or process in self.scope

    def is_quiescent(self, root: Process) -> bool:
        # Hot path: evaluated once per kernel step while an update drives
        # the world to the barrier.  Short-circuit on the first straggler
        # instead of materializing the whole tree's thread list, and when
        # the protocol is scoped (rolling updates) iterate only the scoped
        # batch — walking the whole tree per step is O(tree x steps),
        # which is what made 1000-worker rolling updates crawl.
        barrier = self.barrier
        if barrier is not None and barrier.arrived < self._arrivals_floor:
            self._skipped_checks += 1
            if self._skipped_checks & 63:
                return False
        any_thread = False
        scope = self.scope
        candidates = root.tree() if scope is None else scope
        for process in candidates:
            if process.exited:
                continue
            for thread in process.live_threads():
                any_thread = True
                if not thread.at_barrier:
                    if barrier is not None:
                        self._arrivals_floor = barrier.arrived + 1
                    return False
        # Converged: disable the floor so every subsequent call (the
        # post-run re-check in ``wait``) answers deterministically.
        self._arrivals_floor = 0
        return any_thread

    def wait(
        self,
        root: Process,
        deadline_ns: Optional[int] = None,
        config=None,
    ) -> int:
        """Run the world until quiescent; returns quiescence time (ns).

        ``config`` is the *controller's* MCRConfig when an update drives
        this wait — its fault plan and deadline can differ from the
        session's; direct callers fall back to the session config.
        """
        kernel: Kernel = self.session.kernel
        if config is None:
            config = self.session.config
        fire(config, "quiescence.wait")
        if deadline_ns is None:
            deadline_ns = config.quiescence_deadline_ns
        start_ns = kernel.clock.now_ns
        kernel.run(
            until=lambda: self.is_quiescent(root),
            max_ns=deadline_ns,
        )
        if not self.is_quiescent(root):
            laggards = [
                f"{t.process.name}:{t.name}@{t.top_function()}({t.blocked_on or t.state})"
                for t in tree_live_threads(root)
                if not t.at_barrier and self.in_scope(t.process)
            ]
            raise QuiescenceTimeout(
                f"quiescence not reached within {deadline_ns} ns; "
                f"laggards: {', '.join(laggards)}"
            )
        self.converged_at_ns = kernel.clock.now_ns
        return self.converged_at_ns - start_ns

    def release(self) -> None:
        """End the protocol (rollback or update completion): resume all."""
        self.requested = False
        self.scope = None
        if self.barrier is not None:
            self.barrier.release()
            self.barrier = None

    # -- program side (called from unblockified wrappers via libmcr) ---------------

    def hook_should_block(self, process: Optional[Process] = None) -> bool:
        if not (self.requested and self.barrier is not None):
            return False
        return process is None or self.in_scope(process)
