"""The live-update orchestrator: checkpoint → restart → remap (paper §3).

``LiveUpdateController.run_update`` executes one update attempt end to end:

1.  **Checkpoint** — quiesce the old version via the barrier protocol.
2.  **Offline analysis** — conservative tracing of the quiesced old tree
    produces the immutable set: pinned static symbols, library bases, and
    heap superobject spans (the relink/prelink step, uncharged to update
    time as in the paper).
3.  **Restart** — the new version starts in its own PID namespace (old
    pids can be mirrored) behind an inheritance bootstrap that receives
    every old descriptor over a Unix socket into the reserved-range
    stash.  Quiescence is pre-requested so no thread can consume a new
    event; mutable reinitialization replays/filters startup syscalls
    until all long-lived threads park at the barrier (control migration).
4.  **Volatile state** — ``post_startup`` reinit handlers recreate
    on-demand processes/threads; post-startup descriptors (open
    connections) are restored into the paired processes.
5.  **Remap** — mutable tracing transfers the dirty/immutable state.
6.  **Commit** — the old tree is terminated and the new version resumes;
    or, on *any* failure, **rollback**: the new tree is destroyed and the
    old version resumes from the checkpoint, invisibly to clients.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro import obs
from repro.clock import ns_to_ms
from repro.obs.spans import STATUS_ERROR, STATUS_OK
from repro.errors import ConflictError, MCRError, SimError
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import PidNamespace
from repro.kernel.process import Process, sim_function
from repro.kernel.syscalls import SyscallRequest
from repro.mcr.config import MCRConfig, TransferCostModel
from repro.mcr.quiescence.detection import tree_live_threads
from repro.mcr.reinit.immutable import FdStash, ImmutableInventory
from repro.mcr.reinit.realloc import GlobalRealloc
from repro.mcr.reinit.replay import ReplayEngine
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import (
    apply_invariants,
    immutable_heap_spans,
    immutable_static_symbols,
)
from repro.mcr.tracing.transfer import StateTransfer, TransferReport
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession, PHASE_NORMAL
from repro.runtime.program import Program, load_program


class RestoreContext:
    """Handed to ``post_startup`` reinit handlers (volatile-state rebuild)."""

    def __init__(self, controller: "LiveUpdateController", new_root: Process) -> None:
        self.controller = controller
        self.kernel = controller.kernel
        self.old_root = controller.old_root
        self.new_root = new_root
        self.old_session = controller.old_session
        self.new_session = controller.new_session
        self.engine: ReplayEngine = controller.new_session.replay_engine

    def missing_counterparts(self) -> List[Process]:
        """Old processes with no new-version counterpart yet."""
        new_stacks = {}
        for process in self.new_root.tree():
            new_stacks.setdefault(process.creation_stack_id, 0)
            new_stacks[process.creation_stack_id] += 1
        missing = []
        for process in self.old_root.tree():
            count = new_stacks.get(process.creation_stack_id, 0)
            if count:
                new_stacks[process.creation_stack_id] = count - 1
            else:
                missing.append(process)
        return missing

    def respawn(self, old_process: Process, child_main: Callable, args: Tuple = ()) -> Process:
        parent = None
        if old_process.parent is not None:
            parent = self.paired_new_process(old_process.parent)
        if parent is None:
            parent = self.new_root
        return self.engine.respawn_counterpart(parent, old_process, child_main, args)

    def respawn_thread(self, new_process: Process, main: Callable, args: Tuple, old_thread) -> None:
        """Recreate an on-demand *thread* in its paired new process."""
        self.kernel._start_thread(
            new_process,
            main,
            args,
            old_thread.name,
            creation_stack=list(old_thread.creation_stack),
        )

    def paired_new_process(self, old_process: Process) -> Optional[Process]:
        for candidate in self.new_root.tree():
            if (
                candidate.creation_stack_id == old_process.creation_stack_id
                and candidate.pid == old_process.pid
            ):
                return candidate
        for candidate in self.new_root.tree():
            if candidate.creation_stack_id == old_process.creation_stack_id:
                return candidate
        return None


class UpdateResult:
    """Outcome and timing breakdown of one update attempt.

    The phase ``*_ns`` fields are not kept by stopwatch bookkeeping: the
    controller records its work as a span tree (``repro.obs.spans``) and
    ``finalize_from_spans`` derives every duration from it, so the
    breakdown the CLI/benchmarks print is exactly what a trace export
    shows.  ``spans`` holds the root ``update`` span of that tree.
    """

    # Root-child span names that contribute to each derived phase field.
    _PHASE_SPANS = {
        "quiescence_ns": ("quiescence",),
        # The paper's "control migration" interval runs from the moment the
        # new version is exec'd to the moment its threads park at the
        # barrier, so it covers both the restart and the migration span.
        "control_migration_ns": ("restart", "control-migration"),
        "restore_ns": ("restore",),
        "transfer_ns": ("transfer",),
    }

    def __init__(self) -> None:
        self.committed = False
        self.rolled_back = False
        self.error: Optional[BaseException] = None
        self.quiescence_ns = 0
        self.control_migration_ns = 0
        self.restore_ns = 0
        self.transfer_ns = 0
        self.total_ns = 0
        self.spans: Optional[obs.Span] = None
        self.transfer_report: Optional[TransferReport] = None
        self.new_root: Optional[Process] = None
        self.new_session: Optional[MCRSession] = None

    def total_ms(self) -> float:
        return ns_to_ms(self.total_ns)

    def phase_sum_ns(self) -> int:
        return (
            self.quiescence_ns
            + self.control_migration_ns
            + self.restore_ns
            + self.transfer_ns
        )

    def finalize_from_spans(self, root: "obs.Span") -> None:
        """Derive every timing field from the recorded span tree.

        On rollback the tree simply lacks the phases that never ran (or
        carries partially-elapsed error spans), so the same derivation
        yields the correct partial breakdown.
        """
        self.spans = root
        self.total_ns = root.duration_ns
        by_name = {child.name: child for child in root.children}
        for field, span_names in self._PHASE_SPANS.items():
            setattr(
                self,
                field,
                sum(by_name[n].duration_ns for n in span_names if n in by_name),
            )
        assert self.phase_sum_ns() <= self.total_ns, (
            f"phase spans ({self.phase_sum_ns()}ns) exceed the update span "
            f"({self.total_ns}ns)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "committed" if self.committed else f"rolled back ({self.error})"
        return f"<UpdateResult {status} total={self.total_ms():.1f}ms>"


class LiveUpdateController:
    """Drives one live update of ``old_session`` to ``new_program``."""

    def __init__(
        self,
        kernel: Kernel,
        old_session: MCRSession,
        new_program: Program,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
        cost: Optional[TransferCostModel] = None,
        use_dirty_filter: bool = True,
        match_strategy: str = "callstack",
    ) -> None:
        self.kernel = kernel
        self.old_session = old_session
        self.old_root: Process = old_session.root_process
        self.new_program = new_program
        self.build = build or BuildConfig.full()
        self.config = config or old_session.config
        self.cost = cost or TransferCostModel()
        self.use_dirty_filter = use_dirty_filter  # ablation knob
        self.match_strategy = match_strategy      # "callstack" | "sequential"
        self.new_session: Optional[MCRSession] = None

    # -- public API -------------------------------------------------------------

    def run_update(self) -> UpdateResult:
        result = UpdateResult()
        clock = self.kernel.clock
        recorder = obs.recorder_for(clock)
        new_root: Optional[Process] = None
        root = recorder.begin(
            "update",
            program=self.new_program.name,
            to_version=self.new_program.version,
        )
        try:
            # 1. Checkpoint: quiesce the old version.
            with recorder.span("quiescence"):
                self.old_session.quiescence.request()
                self.old_session.quiescence.wait(self.old_root)
            # 2. Offline analysis -> immutable set + realloc plan.
            with recorder.span("offline-analysis"):
                plan = self._offline_analysis()
            # 3. Restart the new version under replay.
            with recorder.span("restart"):
                new_root = self._restart(plan)
                result.new_root = new_root
            with recorder.span("control-migration"):
                self._run_control_migration(new_root)
            # 4. Volatile state + post-startup descriptor restore.  The
            # handlers only *create* counterpart processes/threads; their
            # descriptors are restored before any of them runs, then the
            # whole new tree is driven back to the barrier.
            with recorder.span("restore"):
                self._run_post_startup_handlers(new_root)
                self._restore_runtime_fds(new_root)
                self._converge_volatile(new_root)
            # 5. Remap: mutable tracing state transfer.
            with recorder.span("transfer") as transfer_span:
                transfer = StateTransfer(
                    self.old_root,
                    new_root,
                    self.new_program,
                    self.config,
                    self.cost,
                    use_dirty_filter=self.use_dirty_filter,
                )
                report = transfer.run()
                result.transfer_report = report
                transfer_span.attrs["objects_transferred"] = sum(
                    s.objects_transferred for s in report.per_process
                )
                clock.advance(report.total_ns)  # clients wait out the transfer
            # 6. Commit.
            with recorder.span("commit"):
                self._commit(new_root)
            result.committed = True
            result.new_session = self.new_session
            recorder.end(root, status=STATUS_OK)
        except (MCRError, SimError, ConflictError) as error:
            with recorder.span("rollback", reason=str(error)):
                self._rollback(new_root)
            result.rolled_back = True
            result.error = error
            recorder.end(root, status="rolled_back")
        finally:
            # Never leave the shared recorder with a dangling open root.
            if not root.closed:
                recorder.end(root, status=STATUS_ERROR)
        result.finalize_from_spans(root)
        obs.emit(
            "update.finished",
            severity="info" if result.committed else "warn",
            committed=result.committed,
            total_ns=result.total_ns,
        )
        return result

    # -- stages ------------------------------------------------------------------

    def _offline_analysis(self) -> GlobalRealloc:
        plan = GlobalRealloc()
        annotations = getattr(self.old_session.program, "annotations", None)
        for process in self.old_root.tree():
            trace = apply_invariants(
                GraphBuilder(process, self.config, annotations=annotations).build()
            )
            for name in immutable_static_symbols(trace):
                symbol = process.symbols.get(name)
                if symbol is not None and symbol.section != "text":
                    # Function addresses are never pinned: each version
                    # lays out its own code; code pointers remap by symbol.
                    plan.pin_symbol(name, symbol.address)
            plan.add_heap_spans(process.pid, immutable_heap_spans(trace))
        for lib_name, lib in getattr(self.old_root, "libs", {}).items():
            plan.pin_library(lib_name, lib.base)
        # Feed the relink outputs into the new program's loader inputs.
        self.new_program.pinned_symbols.update(plan.pinned_symbols)
        self.new_program.lib_bases.update(plan.lib_bases)
        return plan

    def _restart(self, plan: GlobalRealloc) -> Process:
        session = MCRSession(
            self.kernel, self.new_program, self.build, self.config, role="restart"
        )
        self.new_session = session
        inventory = ImmutableInventory.collect(
            self.old_root,
            {
                pid: self.old_session.startup_log.startup_fds(pid)
                for pid in self.old_session.startup_log.pids()
            },
        )
        stash = FdStash()
        session.stash = stash
        self.old_session.startup_log.reset_consumption()
        session.replay_engine = ReplayEngine(
            session,
            self.old_session.startup_log,
            inventory,
            stash,
            match_strategy=self.match_strategy,
        )
        self._inventory = inventory
        # Pre-request quiescence so no thread consumes a fresh event.
        session.quiescence.request()
        # Global inheritance: ship every old descriptor over a Unix socket.
        receiver, sender = self.kernel.net.socketpair()
        for entry in inventory.fd_entries:
            header = f"{entry.src_pid}:{entry.src_fd}".encode()
            sender.sendmsg(header, [entry.obj])
        sender.closed = True

        program_main = self.new_program.main
        expected = len(inventory.fd_entries)

        # Deliberately NOT a @sim_function: the bootstrap must be invisible
        # to call-stack IDs, or every replayed syscall would carry an extra
        # frame and never match the old version's records.
        def mcr_bootstrap(sys):
            boot_fd = sys.process.fdtable.install(receiver)
            for _ in range(expected):
                data, fds = yield from sys.raw(
                    "recvmsg", {"fd": boot_fd, "install_reserved": True}
                )
                src_pid, src_fd = (int(x) for x in data.decode().split(":"))
                stash.add(src_pid, src_fd, fds[0])
            yield from sys.raw("close", {"fd": boot_fd})
            result = yield from program_main(sys)
            return result

        namespace = PidNamespace(first_pid=1000)
        namespace.force_next_pid(self.old_root.pid)
        new_root = load_program(
            self.kernel,
            self.new_program,
            build=self.build,
            session=session,
            namespace=namespace,
            main_override=mcr_bootstrap,
            name=f"{self.new_program.name}-v{self.new_program.version}",
        )
        # Global reallocation: reserve the union of all superobjects in the
        # root heap; fork propagates the reservations tree-wide.
        plan.apply_union_to_heap(new_root.heap)
        return new_root

    def _run_control_migration(self, new_root: Process) -> None:
        session = self.new_session
        self.kernel.run(
            until=lambda: session.quiescence.is_quiescent(new_root),
            max_ns=self.config.quiescence_deadline_ns,
        )
        if not session.quiescence.is_quiescent(new_root):
            laggards = [
                f"{t.process.name}:{t.name}@{t.top_function()}"
                for t in tree_live_threads(new_root)
                if not t.at_barrier
            ]
            raise MCRError(
                f"control migration did not converge; laggards: {', '.join(laggards)}"
            )
        session.replay_engine.finish(new_root)

    def _run_post_startup_handlers(self, new_root: Process) -> None:
        annotations = getattr(self.new_program, "annotations", None)
        if annotations is None:
            return
        for handler in annotations.handlers_for_stage("post_startup"):
            handler.handler(RestoreContext(self, new_root))

    def _converge_volatile(self, new_root: Process) -> None:
        """Drive freshly recreated threads/processes to the barrier."""
        session = self.new_session
        if session.quiescence.is_quiescent(new_root):
            return
        self.kernel.run(
            until=lambda: session.quiescence.is_quiescent(new_root),
            max_ns=self.config.quiescence_deadline_ns,
        )
        if not session.quiescence.is_quiescent(new_root):
            raise MCRError("volatile quiescent states did not converge")

    def _restore_runtime_fds(self, new_root: Process) -> None:
        """Install post-startup descriptors (open connections) in pairs."""
        transfer = StateTransfer(self.old_root, new_root, self.new_program)
        restored = 0
        for old_proc, new_proc in transfer.pair_processes():
            for fd, obj in old_proc.fdtable.items():
                if fd in new_proc.fdtable:
                    continue
                acquire = getattr(obj, "acquire", None)
                if acquire is not None:
                    acquire()
                new_proc.fdtable.install(obj, fd=fd)
                if obj.kind == "listener":
                    self.kernel.net.adopt_listener(obj)
                restored += 1
        self.kernel.clock.advance(restored * self.cost.per_fd_restore_ns)

    def _commit(self, new_root: Process) -> None:
        self.kernel.terminate_tree(self.old_root)
        self.old_session.quiescence.release()
        self.new_session.phase = PHASE_NORMAL
        self.new_session.quiescence.release()

    def _rollback(self, new_root: Optional[Process]) -> None:
        """Atomic reversal: destroy the new tree, resume the old version."""
        if new_root is not None:
            self.kernel.terminate_tree(new_root)
        self.old_session.startup_log.reset_consumption()
        self.old_session.quiescence.release()
