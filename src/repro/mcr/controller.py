"""The live-update orchestrator: checkpoint → restart → remap (paper §3).

``LiveUpdateController.run_update`` executes one update attempt end to end:

1.  **Checkpoint** — quiesce the old version via the barrier protocol.
2.  **Offline analysis** — conservative tracing of the quiesced old tree
    produces the immutable set: pinned static symbols, library bases, and
    heap superobject spans (the relink/prelink step, uncharged to update
    time as in the paper).
3.  **Restart** — the new version starts in its own PID namespace (old
    pids can be mirrored) behind an inheritance bootstrap that receives
    every old descriptor over a Unix socket into the reserved-range
    stash.  Quiescence is pre-requested so no thread can consume a new
    event; mutable reinitialization replays/filters startup syscalls
    until all long-lived threads park at the barrier (control migration).
4.  **Volatile state** — ``post_startup`` reinit handlers recreate
    on-demand processes/threads; post-startup descriptors (open
    connections) are restored into the paired processes.
5.  **Remap** — mutable tracing transfers the dirty/immutable state.
6.  **Commit** — the old tree is terminated and the new version resumes;
    or, on *any* failure, **rollback**: the new tree is destroyed and the
    old version resumes from the checkpoint, invisibly to clients.
"""

from __future__ import annotations

import json
import sys as _host_sys
from contextlib import nullcontext
from typing import Any, Callable, List, Optional, Tuple

from repro import obs
from repro.clock import ns_to_ms
from repro.obs.spans import STATUS_ERROR, STATUS_OK
from repro.errors import ConflictError, MCRError, QuiescenceTimeout, SimError
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import PidNamespace
from repro.kernel.process import Process, sim_function
from repro.kernel.syscalls import SyscallRequest
from repro.mcr.config import MCRConfig, TransferCostModel
from repro.mcr.faults import TreeFingerprint, fire
from repro.mcr.quiescence.detection import tree_live_threads
from repro.mcr.reinit.immutable import FdStash, ImmutableInventory
from repro.mcr.reinit.realloc import GlobalRealloc
from repro.mcr.reinit.replay import ReplayEngine
from repro.mcr.tracing.graph import GraphBuilder
from repro.mcr.tracing.invariants import (
    apply_invariants,
    immutable_heap_spans,
    immutable_static_symbols,
)
from repro.mcr.tracing.incremental import SharedScanCache
from repro.mcr.tracing.transfer import StateTransfer, TransferReport
from repro.replay import trace as replay_trace
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession, PHASE_NORMAL
from repro.runtime.program import Program, load_program


class RestoreContext:
    """Handed to ``post_startup`` reinit handlers (volatile-state rebuild)."""

    def __init__(self, controller: "LiveUpdateController", new_root: Process) -> None:
        self.controller = controller
        self.kernel = controller.kernel
        self.old_root = controller.old_root
        self.new_root = new_root
        self.old_session = controller.old_session
        self.new_session = controller.new_session
        self.engine: ReplayEngine = controller.new_session.replay_engine

    def missing_counterparts(self) -> List[Process]:
        """Old processes with no new-version counterpart yet."""
        new_stacks = {}
        for process in self.new_root.tree():
            new_stacks.setdefault(process.creation_stack_id, 0)
            new_stacks[process.creation_stack_id] += 1
        missing = []
        for process in self.old_root.tree():
            count = new_stacks.get(process.creation_stack_id, 0)
            if count:
                new_stacks[process.creation_stack_id] = count - 1
            else:
                missing.append(process)
        return missing

    def respawn(self, old_process: Process, child_main: Callable, args: Tuple = ()) -> Process:
        parent = None
        if old_process.parent is not None:
            parent = self.paired_new_process(old_process.parent)
        if parent is None:
            parent = self.new_root
        return self.engine.respawn_counterpart(parent, old_process, child_main, args)

    def respawn_thread(self, new_process: Process, main: Callable, args: Tuple, old_thread) -> None:
        """Recreate an on-demand *thread* in its paired new process."""
        self.kernel._start_thread(
            new_process,
            main,
            args,
            old_thread.name,
            creation_stack=list(old_thread.creation_stack),
        )

    def paired_new_process(self, old_process: Process) -> Optional[Process]:
        for candidate in self.new_root.tree():
            if (
                candidate.creation_stack_id == old_process.creation_stack_id
                and candidate.pid == old_process.pid
            ):
                return candidate
        for candidate in self.new_root.tree():
            if candidate.creation_stack_id == old_process.creation_stack_id:
                return candidate
        return None


class UpdateResult:
    """Outcome and timing breakdown of one update attempt.

    The phase ``*_ns`` fields are not kept by stopwatch bookkeeping: the
    controller records its work as a span tree (``repro.obs.spans``) and
    ``finalize_from_spans`` derives every duration from it, so the
    breakdown the CLI/benchmarks print is exactly what a trace export
    shows.  ``spans`` holds the root ``update`` span of that tree.
    """

    # Root-child span names that contribute to each derived phase field.
    _PHASE_SPANS = {
        "quiescence_ns": ("quiescence",),
        # The paper's "control migration" interval runs from the moment the
        # new version is exec'd to the moment its threads park at the
        # barrier, so it covers both the restart and the migration span.
        "control_migration_ns": ("restart", "control-migration"),
        "restore_ns": ("restore",),
        # Whole-tree updates record one "transfer" span; rolling updates
        # record "rolling-transfer" (per-batch quiesce/restore/transfer
        # live inside it).  Exactly one of the two exists per update.
        "transfer_ns": ("transfer", "rolling-transfer"),
    }

    def __init__(self) -> None:
        self.committed = False
        self.rolled_back = False
        # Orchestration mode of this attempt ("whole-tree" | "rolling")
        # and, for rolling, how many hand-off batches ran.
        self.mode = "whole-tree"
        self.rolling_batches = 0
        self.error: Optional[BaseException] = None
        # Which pipeline site failed ("transfer.memory", "reinit.replay",
        # ...): the injected fault's site tag when one fired, otherwise
        # derived from the deepest error span of the update trace.
        self.failure_site: Optional[str] = None
        # Quiescence retry attempts consumed before the barrier converged
        # (0 = first wait succeeded).
        self.retries = 0
        # After a rollback: True if the old tree's fingerprint matched the
        # checkpoint capture, False if it diverged, None if no comparable
        # baseline existed (verification off, or the failure happened
        # while old threads were still running toward the barrier).
        self.rollback_verified: Optional[bool] = None
        # True if any rollback step itself faulted (double fault).  The
        # rollback still completes its remaining steps and the old tree
        # keeps serving; this flag plus the ``update.rollback_failed``
        # event are the loud degradation the paper requires.
        self.rollback_failed = False
        self.quiescence_ns = 0
        self.control_migration_ns = 0
        self.restore_ns = 0
        self.transfer_ns = 0
        self.total_ns = 0
        self.spans: Optional[obs.Span] = None
        self.transfer_report: Optional[TransferReport] = None
        self.new_root: Optional[Process] = None
        self.new_session: Optional[MCRSession] = None
        # Client-perceived verdict (``servers.common.ClientPerceived``) —
        # attached by the measurement harness after its workload drains,
        # since client latencies only complete once the update returns.
        self.client = None
        # Post-mortem black box: the flight-recorder dump attached to
        # every failed update (rollback or contained commit fault), and
        # the file path when ``config.blackbox_path`` wrote it out.
        self.blackbox: Optional[dict] = None
        self.blackbox_path: Optional[str] = None

    def total_ms(self) -> float:
        return ns_to_ms(self.total_ns)

    def phase_sum_ns(self) -> int:
        return (
            self.quiescence_ns
            + self.control_migration_ns
            + self.restore_ns
            + self.transfer_ns
        )

    def finalize_from_spans(self, root: "obs.Span") -> None:
        """Derive every timing field from the recorded span tree.

        On rollback the tree simply lacks the phases that never ran (or
        carries partially-elapsed error spans), so the same derivation
        yields the correct partial breakdown.
        """
        self.spans = root
        self.total_ns = root.duration_ns
        by_name = {child.name: child for child in root.children}
        for field, span_names in self._PHASE_SPANS.items():
            setattr(
                self,
                field,
                sum(by_name[n].duration_ns for n in span_names if n in by_name),
            )
        assert self.phase_sum_ns() <= self.total_ns, (
            f"phase spans ({self.phase_sum_ns()}ns) exceed the update span "
            f"({self.total_ns}ns)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "committed" if self.committed else f"rolled back ({self.error})"
        return f"<UpdateResult {status} total={self.total_ms():.1f}ms>"


class LiveUpdateController:
    """Drives one live update of ``old_session`` to ``new_program``."""

    def __init__(
        self,
        kernel: Kernel,
        old_session: MCRSession,
        new_program: Program,
        build: Optional[BuildConfig] = None,
        config: Optional[MCRConfig] = None,
        cost: Optional[TransferCostModel] = None,
        use_dirty_filter: bool = True,
        match_strategy: str = "callstack",
        collector: Optional["obs.Collector"] = None,
    ) -> None:
        self.kernel = kernel
        self.old_session = old_session
        self.old_root: Process = old_session.root_process
        self.new_program = new_program
        self.build = build or BuildConfig.full()
        self.config = config or old_session.config
        self.cost = cost or TransferCostModel()
        self.use_dirty_filter = use_dirty_filter  # ablation knob
        self.match_strategy = match_strategy      # "callstack" | "sequential"
        # The collector this update records into.  None = ambient: use the
        # active collector when it is bound to this kernel's clock, else a
        # private one.  A fleet Node passes its own collector here so
        # concurrent per-node updates never cross-publish.
        self.collector = collector
        self.new_session: Optional[MCRSession] = None
        # Transaction state (see run_update): once the point of no return
        # is crossed the old tree is gone and any fault rolls *forward*.
        self._past_point_of_no_return = False
        self._rolled_back = False
        self._rollback_failures: List[str] = []
        # The global-inheritance socketpair, kept so rollback can drain
        # in-flight fd messages if the handoff dies mid-stream.
        self._boot_channel: Optional[Tuple[Any, Any]] = None

    # -- public API -------------------------------------------------------------

    def run_update(self) -> UpdateResult:
        if getattr(self.config, "update_mode", "whole-tree") == "rolling":
            return self._run_update_rolling()
        return self._run_update_whole_tree()

    def _obs_scope(self, clock):
        """The collector activation this update runs under.

        Preference order: the controller's explicit ``collector`` (a
        fleet Node's, when the update is driven against one node among
        many), else an already-active ambient collector bound to the same
        clock, else a fresh private one.  Black-box recording rides on
        the event-log -> flight-recorder wiring, so an update must always
        run under *some* collector; obs never advances the virtual clock,
        so every measured phase timing is identical either way.
        """
        collector = self.collector
        if collector is None:
            active = obs.ACTIVE
            if active is not None and active.clock is clock:
                return nullcontext(active)
            collector = obs.Collector(clock)
        elif obs.ACTIVE is collector:
            return nullcontext(collector)
        return obs.scoped(collector)

    def _run_update_whole_tree(self) -> UpdateResult:
        result = UpdateResult()
        clock = self.kernel.clock
        with self._obs_scope(clock):
            return self._whole_tree_attempt(result, clock)

    def _whole_tree_attempt(self, result: UpdateResult, clock) -> UpdateResult:
        recorder = obs.recorder_for(clock)
        new_root: Optional[Process] = None
        # Rollback verification baselines (host-side only; never touch the
        # virtual clock).  The entry capture covers failures that strike
        # before the barrier converges — usable only if no old thread ran
        # in between, hence the steps_executed stamp.  The checkpoint
        # capture, taken once the tree is quiesced, is authoritative.
        verify = bool(getattr(self.config, "verify_rollback", True))
        entry_fp: Optional[TreeFingerprint] = None
        checkpoint_fp: Optional[TreeFingerprint] = None
        entry_steps = self.kernel.steps_executed
        if verify and getattr(self.config, "faults", None) is not None:
            # Only an injected fault can fail before any old thread runs;
            # a real pre-quiescence failure executes kernel steps and
            # invalidates this baseline anyway, so skip the capture when
            # nothing is armed.
            entry_fp = TreeFingerprint.capture(self.kernel, self.old_root)
        root = recorder.begin(
            "update",
            program=self.new_program.name,
            to_version=self.new_program.version,
        )
        try:
            # 1. Checkpoint: quiesce the old version (bounded retries with
            # exponential backoff before declaring QuiescenceTimeout).
            with recorder.span("quiescence"):
                self.old_session.quiescence.request()
                self._quiesce_with_retry(result)
            if verify:
                checkpoint_fp = TreeFingerprint.capture(self.kernel, self.old_root)
            # 2. Offline analysis -> immutable set + realloc plan.
            with recorder.span("offline-analysis"):
                fire(self.config, "offline.analysis")
                plan = self._offline_analysis()
            # 3. Restart the new version under replay.
            with recorder.span("restart"):
                new_root = self._restart(plan)
                result.new_root = new_root
            with recorder.span("control-migration"):
                fire(self.config, "control.migration")
                self._run_control_migration(new_root)
            # 4. Volatile state + post-startup descriptor restore.  The
            # handlers only *create* counterpart processes/threads; their
            # descriptors are restored before any of them runs, then the
            # whole new tree is driven back to the barrier.
            with recorder.span("restore"):
                self._run_post_startup_handlers(new_root)
                self._restore_runtime_fds(new_root)
                self._converge_volatile(new_root)
            # 5. Remap: mutable tracing state transfer.
            with recorder.span("transfer") as transfer_span:
                transfer = StateTransfer(
                    self.old_root,
                    new_root,
                    self.new_program,
                    self.config,
                    self.cost,
                    use_dirty_filter=self.use_dirty_filter,
                )
                report = transfer.run()
                result.transfer_report = report
                transfer_span.attrs["objects_transferred"] = sum(
                    s.objects_transferred for s in report.per_process
                )
                clock.advance(report.total_ns)  # clients wait out the transfer
            # 6. Commit: prepare (still abortable), then the critical
            # section.  Destroying the old tree is the point of no return.
            with recorder.span("commit"):
                self._commit_prepare(new_root)
                self._past_point_of_no_return = True
                self._commit_critical(new_root)
            result.committed = True
            result.new_session = self.new_session
            recorder.end(root, status=STATUS_OK)
        except (MCRError, SimError) as error:
            result.error = error
            result.failure_site = (
                getattr(error, "fault_site", None)
                or self._derive_failure_site(root)
            )
            if self._past_point_of_no_return:
                # The old tree is already gone: the only safe direction is
                # forward.  Finish the (idempotent) commit steps and
                # surface the contained fault loudly.
                self._finish_commit()
                result.committed = True
                result.new_session = self.new_session
                root.attrs["commit_fault"] = repr(error)
                obs.emit(
                    "update.commit_fault_contained",
                    severity="error",
                    site=result.failure_site,
                    error=repr(error),
                )
                self._record_blackbox(result, recorder, "commit_fault_contained")
                recorder.end(root, status=STATUS_OK)
            else:
                with recorder.span("rollback", reason=str(error)):
                    self._rollback(new_root)
                    self._record_blackbox(result, recorder, "rolled_back")
                result.rolled_back = True
                result.rollback_failed = bool(self._rollback_failures)
                if verify:
                    self._verify_rollback(
                        result, checkpoint_fp, entry_fp, entry_steps
                    )
                recorder.end(root, status="rolled_back")
        finally:
            # Never leave the shared recorder with a dangling open root —
            # even if an exception escaped the handler above, the root
            # span closes with status=error and the error attached.
            if not root.closed:
                in_flight = result.error or _host_sys.exc_info()[1]
                if in_flight is not None:
                    root.attrs["error"] = repr(in_flight)
                recorder.end(root, status=STATUS_ERROR)
        result.finalize_from_spans(root)
        self._emit_finished(result)
        return result

    def _run_update_rolling(self) -> UpdateResult:
        """Rolling per-worker live update (CRIU pre-dump style).

        The heavy global phases — offline analysis, restart, control
        migration, volatile-state convergence — run while only the first
        worker batch is quiesced: every other worker keeps serving.  The
        hand-off loop then quiesces, fd-restores, traces and transfers
        one batch at a time (master and stragglers in a final remainder
        batch), pipelining the slow quiescence — the remainder's idle
        threads, whose QP re-arm is bounded by a whole unblockify slice —
        into the preceding batch's transfer window, while busy worker
        batches (which converge within about one request) are scoped in
        only at their own turn.  Transferred workers stay parked
        until the global commit — resuming one would make its transferred
        state stale — so the client-perceived blackout shrinks to roughly
        the final batch plus commit, while the whole sequence still
        commits or rolls back atomically under the same transaction
        machinery (fault sites, black box, fingerprint verification).
        """
        result = UpdateResult()
        result.mode = "rolling"
        clock = self.kernel.clock
        with self._obs_scope(clock):
            return self._rolling_attempt(result, clock)

    def _rolling_attempt(self, result: UpdateResult, clock) -> UpdateResult:
        recorder = obs.recorder_for(clock)
        new_root: Optional[Process] = None
        verify = bool(getattr(self.config, "verify_rollback", True))
        entry_fp: Optional[TreeFingerprint] = None
        entry_steps = self.kernel.steps_executed
        if verify and getattr(self.config, "faults", None) is not None:
            entry_fp = TreeFingerprint.capture(self.kernel, self.old_root)
        worker_batches = self._worker_batches()
        assigned = {p for batch in worker_batches for p in batch}
        # One (batch, fingerprint, refcounts-included) entry per quiesced
        # batch, in hand-off order; replayed by _verify_rollback_rolling.
        # The first batch is captured before the restart exists, so its
        # refcounts are clean; later batches are captured while the new
        # tree holds inherited references (released again on rollback),
        # so their refcount component is excluded.
        batch_checkpoints: List[Tuple[List[Process], TreeFingerprint, bool]] = []
        root = recorder.begin(
            "update",
            program=self.new_program.name,
            to_version=self.new_program.version,
            mode="rolling",
        )
        try:
            # 1. Checkpoint the FIRST batch only; with no enumerable
            # workers the whole tree is one degenerate batch.
            first_batch = (
                worker_batches[0] if worker_batches else list(self.old_root.tree())
            )
            with recorder.span("quiescence"):
                self.old_session.quiescence.request(scope=first_batch)
                self._quiesce_with_retry(result)
            if verify:
                batch_checkpoints.append(
                    (
                        list(first_batch),
                        TreeFingerprint.capture(
                            self.kernel,
                            self.old_root,
                            processes_subset=first_batch,
                        ),
                        True,
                    )
                )
            # 2-4. Global phases, identical to the whole-tree pipeline
            # (non-quiesced workers keep serving through all of them).
            # Runtime descriptors are NOT restored here: each batch's
            # live connections are installed at its own quiesce point.
            with recorder.span("offline-analysis"):
                fire(self.config, "offline.analysis")
                plan = self._offline_analysis()
            with recorder.span("restart"):
                new_root = self._restart(plan)
                result.new_root = new_root
            with recorder.span("control-migration"):
                fire(self.config, "control.migration")
                self._run_control_migration(new_root)
            with recorder.span("restore"):
                self._run_post_startup_handlers(new_root)
                self._converge_volatile(new_root)
            # 5. The rolling hand-off loop.
            with recorder.span("rolling-transfer") as rolling_span:
                shared_cache = (
                    SharedScanCache()
                    if getattr(self.config, "incremental_scan", True)
                    else None
                )
                merged = TransferReport()
                pending = list(worker_batches[1:])
                remainder_pending = bool(worker_batches)
                batch = first_batch
                index = 0
                scoped_ahead = True  # first batch scoped by the request
                while True:
                    with recorder.span(
                        f"worker-batch-{index}", processes=len(batch)
                    ):
                        if index > 0:
                            # Worker batches are scoped in at their own
                            # turn: they are busy serving, so they reach a
                            # quiescent point within about one request and
                            # this wait is near-instant.  The remainder
                            # batch was scoped in a whole transfer window
                            # ago (see below) and is already parked.
                            if not scoped_ahead:
                                self.old_session.quiescence.extend_scope(
                                    batch
                                )
                            self._quiesce_with_retry(result)
                            if verify:
                                batch_checkpoints.append(
                                    (
                                        list(batch),
                                        TreeFingerprint.capture(
                                            self.kernel,
                                            self.old_root,
                                            processes_subset=batch,
                                            include_refcounts=False,
                                        ),
                                        False,
                                    )
                                )
                        # The next batch to hand off: the remainder (master
                        # plus anything outside the worker list) is computed
                        # at scheduling time so late-born processes are seen.
                        next_batch: Optional[List[Process]] = None
                        next_is_remainder = False
                        if pending:
                            next_batch = pending.pop(0)
                        elif remainder_pending:
                            remainder_pending = False
                            next_is_remainder = True
                            next_batch = [
                                p
                                for p in self.old_root.tree()
                                if p not in assigned
                            ]
                            if not next_batch:
                                next_batch = None
                        # The pipeline overlap: the remainder batch (master,
                        # janitors — processes that serve no clients) is
                        # scoped in NOW, a full transfer window before its
                        # turn.  Its threads idle in long unblockify slices,
                        # so their worst-case QP re-arm latency elapses
                        # while this batch's transfer time does, instead of
                        # adding a dead wait at the end when no worker is
                        # left serving.  Worker batches are NOT pre-scoped:
                        # parking a serving worker early would grow the
                        # client-perceived blackout for no convergence gain.
                        scoped_ahead = False
                        if next_batch is not None and next_is_remainder:
                            self.old_session.quiescence.extend_scope(
                                next_batch
                            )
                            scoped_ahead = True
                        self._restore_runtime_fds(new_root, only=batch)
                        transfer = StateTransfer(
                            self.old_root,
                            new_root,
                            self.new_program,
                            self.config,
                            self.cost,
                            use_dirty_filter=self.use_dirty_filter,
                            only_processes=batch,
                            shared_cache=shared_cache,
                            include_base_cost=(index == 0),
                        )
                        report = transfer.run()
                        merged.per_process.extend(report.per_process)
                        merged.trace_results.update(report.trace_results)
                        merged.conflicts.extend(report.conflicts)
                        merged.total_ns += report.total_ns
                        # The still-serving workers (and the clients they
                        # serve) live through this batch's transfer time,
                        # instead of the whole tree waiting it out.
                        self.kernel.run_for(report.total_ns)
                    index += 1
                    if next_batch is None:
                        break
                    batch = next_batch
                result.transfer_report = merged
                result.rolling_batches = index
                rolling_span.attrs["batches"] = index
                rolling_span.attrs["objects_transferred"] = sum(
                    s.objects_transferred for s in merged.per_process
                )
            # 6. Commit, same transaction boundary as whole-tree mode.
            with recorder.span("commit"):
                self._commit_prepare(new_root)
                self._past_point_of_no_return = True
                self._commit_critical(new_root)
            result.committed = True
            result.new_session = self.new_session
            recorder.end(root, status=STATUS_OK)
        except (MCRError, SimError) as error:
            result.error = error
            result.failure_site = (
                getattr(error, "fault_site", None)
                or self._derive_failure_site(root)
            )
            if self._past_point_of_no_return:
                self._finish_commit()
                result.committed = True
                result.new_session = self.new_session
                root.attrs["commit_fault"] = repr(error)
                obs.emit(
                    "update.commit_fault_contained",
                    severity="error",
                    site=result.failure_site,
                    error=repr(error),
                )
                self._record_blackbox(result, recorder, "commit_fault_contained")
                recorder.end(root, status=STATUS_OK)
            else:
                with recorder.span("rollback", reason=str(error)):
                    self._rollback(new_root)
                    self._record_blackbox(result, recorder, "rolled_back")
                result.rolled_back = True
                result.rollback_failed = bool(self._rollback_failures)
                if verify:
                    self._verify_rollback_rolling(
                        result, batch_checkpoints, entry_fp, entry_steps
                    )
                recorder.end(root, status="rolled_back")
        finally:
            if not root.closed:
                in_flight = result.error or _host_sys.exc_info()[1]
                if in_flight is not None:
                    root.attrs["error"] = repr(in_flight)
                recorder.end(root, status=STATUS_ERROR)
        result.finalize_from_spans(root)
        self._emit_finished(result)
        return result

    def _worker_batches(self) -> List[List[Process]]:
        """Ordered worker batches for the rolling hand-off.

        A server opts in by publishing ``metadata["enumerate_workers"]``
        (a ``root -> ordered worker list`` callable) on its program; the
        default takes every non-root process in tree order.  The master —
        and any process outside the worker list — is never batched here:
        it is handed off in the final remainder batch, which the rolling
        loop computes at scheduling time.
        """
        program = getattr(self.old_session, "program", None)
        enumerate_workers = None
        if program is not None:
            metadata = getattr(program, "metadata", None) or {}
            enumerate_workers = metadata.get("enumerate_workers")
        if enumerate_workers is not None:
            workers = list(enumerate_workers(self.old_root))
        else:
            workers = list(self.old_root.tree()[1:])
        size = max(1, int(getattr(self.config, "rolling_batch", 1)))
        return [workers[i : i + size] for i in range(0, len(workers), size)]

    def _verify_rollback_rolling(
        self,
        result: UpdateResult,
        batch_checkpoints: List[Tuple[List[Process], TreeFingerprint, bool]],
        entry_fp: Optional[TreeFingerprint],
        entry_steps: int,
    ) -> None:
        """Fingerprint-verify a rolled-back rolling update.

        Every batch that reached its quiesce point was captured there;
        parked workers cannot run between capture and rollback, so each
        capture is compared against a fresh scoped snapshot.  A failure
        before the first batch quiesced falls back to the entry capture,
        exactly like the whole-tree path.
        """
        if not batch_checkpoints:
            self._verify_rollback(result, None, entry_fp, entry_steps)
            return
        problems: List[str] = []
        try:
            for batch, baseline, with_refcounts in batch_checkpoints:
                after = TreeFingerprint.capture(
                    self.kernel,
                    self.old_root,
                    processes_subset=batch,
                    include_refcounts=with_refcounts,
                )
                problems.extend(baseline.diff(after))
        except BaseException as error:  # verification must never throw
            problems.append(f"fingerprint capture failed: {error!r}")
        result.rollback_verified = not problems
        if problems:
            obs.emit(
                "update.rollback_divergence",
                severity="error",
                problems="; ".join(problems[:8]),
            )

    # -- transaction helpers ------------------------------------------------------

    def _quiesce_with_retry(self, result: UpdateResult) -> None:
        """Wait for the barrier; on timeout, back off and retry (bounded)."""
        max_retries = getattr(self.config, "quiescence_max_retries", 0)
        backoff_ns = getattr(self.config, "quiescence_backoff_ns", 0)
        while True:
            try:
                self.old_session.quiescence.wait(self.old_root, config=self.config)
                return
            except QuiescenceTimeout:
                if result.retries >= max_retries:
                    raise
                result.retries += 1
                obs.emit(
                    "update.quiescence_retry",
                    severity="warn",
                    attempt=result.retries,
                    backoff_ns=backoff_ns,
                )
                # Give in-flight work time to drain before the next wait.
                if backoff_ns:
                    self.kernel.clock.advance(backoff_ns)
                    backoff_ns *= 2

    def _derive_failure_site(self, root: "obs.Span") -> Optional[str]:
        """Deepest errored span of the update trace = the failing phase."""
        site = None
        for span in root.walk():
            if span is root or span.name == "rollback":
                continue
            if span.status == STATUS_ERROR:
                site = span.name
        return site

    def _verify_rollback(
        self,
        result: UpdateResult,
        checkpoint_fp: Optional[TreeFingerprint],
        entry_fp: Optional[TreeFingerprint],
        entry_steps: int,
    ) -> None:
        baseline = checkpoint_fp
        if baseline is None and self.kernel.steps_executed == entry_steps:
            baseline = entry_fp
        if baseline is None:
            return  # old threads ran since capture: nothing comparable
        try:
            after = TreeFingerprint.capture(self.kernel, self.old_root)
            problems = baseline.diff(after)
        except BaseException as error:  # verification must never throw
            problems = [f"fingerprint capture failed: {error!r}"]
        result.rollback_verified = not problems
        if problems:
            obs.emit(
                "update.rollback_divergence",
                severity="error",
                problems="; ".join(problems[:8]),
            )

    def _record_blackbox(
        self,
        result: UpdateResult,
        recorder: "obs.SpanRecorder",
        reason: str,
    ) -> None:
        """Dump the flight recorder into ``result.blackbox`` (post-mortem).

        Runs on every failed update — rollback or contained commit fault.
        The artifact bundles the last N events (including any injected
        fault), the currently open span stack, periodic gauge samples,
        and a fingerprint summary of the surviving tree.  Written to
        ``config.blackbox_path`` when set; a write failure is reported,
        never raised.
        """
        collector = obs.ACTIVE
        if collector is None:  # pragma: no cover - private install covers this
            return
        survivor = result.new_root if self._past_point_of_no_return else self.old_root
        fingerprint = None
        try:
            if survivor is not None:
                fingerprint = TreeFingerprint.capture(self.kernel, survivor).summary()
        except BaseException:  # the dump must never make a failure worse
            fingerprint = None
        result.blackbox = collector.recorder.dump(
            reason,
            failure_site=result.failure_site,
            open_spans=[span.name for span in recorder._stack],
            fingerprint=fingerprint,
            error=repr(result.error),
            program=self.new_program.name,
            to_version=self.new_program.version,
        )
        # Deterministic replay hook: when this update ran under a
        # ``repro.replay`` recording, the black box carries the trace
        # reference (scenario spec + trace file path), so the post-mortem
        # artifact alone is enough to re-execute the run to this failure
        # (``python -m repro replay blackbox.json --to-failure``).
        active_trace = replay_trace.ACTIVE
        if active_trace is not None:
            result.blackbox["trace"] = active_trace.reference()
        path = getattr(self.config, "blackbox_path", None)
        if path:
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(result.blackbox, handle, indent=2, sort_keys=True)
                result.blackbox_path = str(path)
            except OSError as error:
                obs.emit(
                    "update.blackbox_write_failed",
                    severity="warn",
                    path=str(path),
                    error=repr(error),
                )

    def _emit_finished(self, result: UpdateResult) -> None:
        fields: dict = {
            "committed": result.committed,
            "rolled_back": result.rolled_back,
            "total_ns": result.total_ns,
            "retries": result.retries,
            "mode": result.mode,
        }
        if result.error is not None:
            fields["error"] = type(result.error).__name__
            if isinstance(result.error, ConflictError):
                fields["conflict_origin"] = result.error.origin
                fields["conflict_subject"] = result.error.subject
        if result.failure_site is not None:
            fields["failure_site"] = result.failure_site
        if result.rolled_back:
            fields["rollback_verified"] = result.rollback_verified
            fields["rollback_failed"] = result.rollback_failed
        obs.emit(
            "update.finished",
            severity="info" if result.committed and result.error is None
            else "error" if result.rollback_failed
            else "warn",
            **fields,
        )

    # -- stages ------------------------------------------------------------------

    def _offline_analysis(self) -> GlobalRealloc:
        plan = GlobalRealloc()
        annotations = getattr(self.old_session.program, "annotations", None)
        for process in self.old_root.tree():
            trace = apply_invariants(
                GraphBuilder(process, self.config, annotations=annotations).build()
            )
            for name in immutable_static_symbols(trace):
                symbol = process.symbols.get(name)
                if symbol is not None and symbol.section != "text":
                    # Function addresses are never pinned: each version
                    # lays out its own code; code pointers remap by symbol.
                    plan.pin_symbol(name, symbol.address)
            plan.add_heap_spans(process.pid, immutable_heap_spans(trace))
        for lib_name, lib in getattr(self.old_root, "libs", {}).items():
            plan.pin_library(lib_name, lib.base)
        # Feed the relink outputs into the new program's loader inputs.
        self.new_program.pinned_symbols.update(plan.pinned_symbols)
        self.new_program.lib_bases.update(plan.lib_bases)
        return plan

    def _restart(self, plan: GlobalRealloc) -> Process:
        fire(self.config, "restart.spawn")
        session = MCRSession(
            self.kernel, self.new_program, self.build, self.config, role="restart"
        )
        self.new_session = session
        inventory = ImmutableInventory.collect(
            self.old_root,
            {
                pid: self.old_session.startup_log.startup_fds(pid)
                for pid in self.old_session.startup_log.pids()
            },
        )
        stash = FdStash()
        session.stash = stash
        self.old_session.startup_log.reset_consumption()
        session.replay_engine = ReplayEngine(
            session,
            self.old_session.startup_log,
            inventory,
            stash,
            match_strategy=self.match_strategy,
        )
        self._inventory = inventory
        # Pre-request quiescence so no thread consumes a fresh event.
        session.quiescence.request()
        # Global inheritance: ship every old descriptor over a Unix socket.
        receiver, sender = self.kernel.net.socketpair()
        self._boot_channel = (receiver, sender)
        for entry in inventory.fd_entries:
            fire(self.config, "restart.fd_handoff")
            header = f"{entry.src_pid}:{entry.src_fd}".encode()
            sender.sendmsg(header, [entry.obj])
        sender.closed = True

        program_main = self.new_program.main
        expected = len(inventory.fd_entries)

        # Deliberately NOT a @sim_function: the bootstrap must be invisible
        # to call-stack IDs, or every replayed syscall would carry an extra
        # frame and never match the old version's records.
        def mcr_bootstrap(sys):
            boot_fd = sys.process.fdtable.install(receiver)
            for _ in range(expected):
                data, fds = yield from sys.raw(
                    "recvmsg", {"fd": boot_fd, "install_reserved": True}
                )
                src_pid, src_fd = (int(x) for x in data.decode().split(":"))
                stash.add(src_pid, src_fd, fds[0])
            yield from sys.raw("close", {"fd": boot_fd})
            result = yield from program_main(sys)
            return result

        namespace = PidNamespace(first_pid=1000)
        namespace.force_next_pid(self.old_root.pid)
        new_root = load_program(
            self.kernel,
            self.new_program,
            build=self.build,
            session=session,
            namespace=namespace,
            main_override=mcr_bootstrap,
            name=f"{self.new_program.name}-v{self.new_program.version}",
        )
        # Global reallocation: reserve the union of all superobjects in the
        # root heap; fork propagates the reservations tree-wide.
        plan.apply_union_to_heap(new_root.heap)
        return new_root

    def _run_control_migration(self, new_root: Process) -> None:
        session = self.new_session
        self.kernel.run(
            until=lambda: session.quiescence.is_quiescent(new_root),
            max_ns=self.config.quiescence_deadline_ns,
        )
        if not session.quiescence.is_quiescent(new_root):
            laggards = [
                f"{t.process.name}:{t.name}@{t.top_function()}"
                for t in tree_live_threads(new_root)
                if not t.at_barrier
            ]
            raise MCRError(
                f"control migration did not converge; laggards: {', '.join(laggards)}"
            )
        session.replay_engine.finish(new_root)

    def _run_post_startup_handlers(self, new_root: Process) -> None:
        annotations = getattr(self.new_program, "annotations", None)
        if annotations is None:
            return
        for handler in annotations.handlers_for_stage("post_startup"):
            fire(self.config, "restore.handlers")
            handler.handler(RestoreContext(self, new_root))

    def _converge_volatile(self, new_root: Process) -> None:
        """Drive freshly recreated threads/processes to the barrier."""
        session = self.new_session
        if session.quiescence.is_quiescent(new_root):
            return
        self.kernel.run(
            until=lambda: session.quiescence.is_quiescent(new_root),
            max_ns=self.config.quiescence_deadline_ns,
        )
        if not session.quiescence.is_quiescent(new_root):
            raise MCRError("volatile quiescent states did not converge")

    def _restore_runtime_fds(
        self, new_root: Process, only: Optional[List[Process]] = None
    ) -> None:
        """Install post-startup descriptors (open connections) in pairs.

        ``only`` restricts the restore to a subset of old processes: the
        rolling loop restores each batch's descriptors at the batch's own
        quiesce point, so still-changing connections are never copied.
        """
        transfer = StateTransfer(
            self.old_root, new_root, self.new_program, only_processes=only
        )
        restored = 0
        for old_proc, new_proc in transfer.pair_processes():
            for fd, obj in old_proc.fdtable.items():
                if fd in new_proc.fdtable:
                    continue
                fire(self.config, "restore.fds")
                acquire = getattr(obj, "acquire", None)
                if acquire is not None:
                    acquire()
                new_proc.fdtable.install(obj, fd=fd)
                if obj.kind == "listener":
                    self.kernel.net.adopt_listener(obj)
                restored += 1
        self.kernel.clock.advance(restored * self.cost.per_fd_restore_ns)

    def _commit_prepare(self, new_root: Process) -> None:
        """Everything commit needs that can still fail safely.

        Validates the new tree is in a committable state (quiescent, with
        a live session) while the old tree is still intact: a fault here
        rolls back like any earlier phase.
        """
        fire(self.config, "commit.prepare")
        session = self.new_session
        if session is None:
            raise MCRError("commit without a restarted session")
        if not session.quiescence.is_quiescent(new_root):
            raise MCRError("commit attempted before the new tree quiesced")

    def _commit_critical(self, new_root: Process) -> None:
        """The critical section: destroying the old tree is irreversible.

        Any fault past this point is contained by ``run_update`` rolling
        *forward* — re-running the idempotent ``_finish_commit`` so the
        new version always ends up serving.
        """
        self.kernel.terminate_tree(self.old_root)
        fire(self.config, "commit.critical")
        self._finish_commit()

    def _finish_commit(self) -> None:
        """Idempotent tail of commit: release barriers, flip the phase."""
        self.old_session.quiescence.release()
        self.new_session.phase = PHASE_NORMAL
        self.new_session.quiescence.release()

    def _commit(self, new_root: Process) -> None:
        """Single-shot commit (kept for direct callers/tests)."""
        self._commit_prepare(new_root)
        self._past_point_of_no_return = True
        self._commit_critical(new_root)

    def _rollback(self, new_root: Optional[Process]) -> None:
        """Atomic reversal: destroy the new tree, resume the old version.

        Idempotent and double-fault-safe: each teardown step runs under
        its own guard, so one faulting step (including an injected
        ``rollback`` fault) never prevents the remaining steps — the old
        version is *always* resumed.  Step failures are recorded in
        ``_rollback_failures`` and surfaced as ``update.rollback_failed``
        events, never raised.
        """
        if self._rolled_back:
            return
        self._rolled_back = True
        self._rollback_step("fault-injection", lambda: fire(self.config, "rollback"))
        self._rollback_step("drain-boot-channel", self._drain_boot_channel)
        if new_root is not None:
            self._rollback_step(
                "terminate-new-tree",
                lambda: self.kernel.terminate_tree(new_root),
            )
        self._rollback_step("readopt-listeners", self._readopt_old_listeners)
        self._rollback_step(
            "reset-startup-log", self.old_session.startup_log.reset_consumption
        )
        self._rollback_step(
            "release-quiescence", self.old_session.quiescence.release
        )

    def _rollback_step(self, label: str, action: Callable[[], None]) -> None:
        try:
            action()
        except BaseException as error:
            self._rollback_failures.append(f"{label}: {error!r}")
            obs.emit(
                "update.rollback_failed",
                severity="error",
                step=label,
                error=repr(error),
            )

    def _drain_boot_channel(self) -> None:
        """Discard in-flight fd-handoff messages (handoff died mid-stream).

        The messages hold references to old-version kernel objects; the
        old fd tables still own them, so dropping the queue copies leaks
        nothing — but leaving them queued would pin a one-sided channel.
        """
        if self._boot_channel is None:
            return
        receiver, sender = self._boot_channel
        self._boot_channel = None
        for endpoint in (receiver, sender):
            close = getattr(endpoint, "close", None)
            if close is not None:
                close()
            else:  # pragma: no cover - defensive for stub endpoints
                endpoint.closed = True

    def _readopt_old_listeners(self) -> None:
        """Ensure every old-tree listener is registered and open.

        Normally a no-op: the new tree only ever shared the old listener
        objects, and terminating it drops shares without releasing ports.
        But if a partially-restarted tree closed or displaced a listener,
        re-adoption restores the old version's network identity; anything
        we had to repair is reported.
        """
        net = self.kernel.net
        for process in self.old_root.tree():
            for _fd, obj in process.fdtable.items():
                if getattr(obj, "kind", None) != "listener":
                    continue
                if obj.closed or net._listeners.get(obj.port) is not obj:
                    net.adopt_listener(obj)
                    obs.emit(
                        "update.listener_readopted",
                        severity="warn",
                        port=obj.port,
                    )
