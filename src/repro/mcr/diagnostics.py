"""Human-readable diagnostics for MCR operators.

The paper's workflow leans on conflicts being *actionable* ("Adding
annotations was also greatly simplified by the conflicts flagged by
mutable reinitialization and mutable tracing").  This module renders what
an operator needs when that happens:

* ``describe_trace``   — per-process object-graph summary (counts by
  region, invariants, top conservative containers);
* ``describe_update``  — the full story of one update attempt: timings,
  per-process transfer statistics, and — on rollback — a diagnosis of the
  conflict with the paper's suggested remediation;
* ``explain_conflict`` — maps a ``ConflictError`` to the annotation or
  design change that resolves it (paper §3/§7).
"""

from __future__ import annotations

from typing import List, Optional

from repro.clock import ns_to_ms
from repro.errors import ConflictError, QuiescenceTimeout
from repro.kernel.process import Process
from repro.mcr.tracing.graph import GraphBuilder, TraceResult
from repro.mcr.tracing.invariants import apply_invariants, invariant_counts
from repro.obs.spans import render_tree


def describe_trace(trace: TraceResult, top: int = 5) -> str:
    """Summarize one process's traced object graph."""
    records = list(trace.objects.values())
    by_region = {}
    for record in records:
        by_region[record.region] = by_region.get(record.region, 0) + 1
    counts = invariant_counts(trace)
    lines = [
        f"process {trace.process.name} (pid {trace.process.pid}):",
        f"  objects: {counts['objects']} "
        f"(static {by_region.get('static', 0)}, "
        f"dynamic {by_region.get('dynamic', 0)}, "
        f"lib {by_region.get('lib', 0)})",
        f"  pointers: {len(trace.precise_pointers)} precise, "
        f"{len(trace.likely_pointers)} likely "
        f"({trace.dangling_precise} dangling)",
        f"  invariants: {counts['immutable']} immutable, "
        f"{counts['nonupdatable']} nonupdatable, "
        f"{counts['conservative']} conservatively traversed",
    ]
    conservative = sorted(
        (r for r in records if r.conservatively_traversed),
        key=lambda r: r.size,
        reverse=True,
    )[:top]
    if conservative:
        lines.append("  largest conservative containers:")
        for record in conservative:
            label = record.name or record.site or "(anonymous)"
            lines.append(
                f"    0x{record.base:x} +{record.size:<7} {label}"
            )
    return "\n".join(lines)


def describe_process_tree(root: Process) -> str:
    """Trace and summarize every process in a (quiesced) tree."""
    sections = []
    for process in root.tree():
        trace = apply_invariants(GraphBuilder(process).build())
        sections.append(describe_trace(trace))
    return "\n\n".join(sections)


def explain_conflict(error: BaseException) -> str:
    """Suggest the remediation the paper prescribes for a conflict."""
    if isinstance(error, QuiescenceTimeout):
        return (
            "Quiescence did not converge: a long-lived thread is blocked at "
            "a call site that was never profiled as a quiescent point. "
            "Re-run the quiescence profiler with a workload that drives the "
            "program into this stall state (paper §4/§7)."
        )
    if isinstance(error, ConflictError):
        if error.origin == "reinit":
            if "argument mismatch" in (error.detail or ""):
                return (
                    "Startup replay found a matching operation whose "
                    "arguments changed between versions. If the change is "
                    "intentional, add an MCR_ADD_REINIT_HANDLER that "
                    "resolves the operation (paper §5: semantics changes "
                    "between versions need user replay extensions)."
                )
            if "never replayed" in (error.detail or ""):
                return (
                    "The new version's startup omitted an operation that "
                    "created an inherited immutable object (e.g. a listening "
                    "socket). Either the omission is a bug in the update, or "
                    "an MCR_ADD_REINIT_HANDLER must release/recreate the "
                    "object explicitly (paper §5, conservative matching)."
                )
            if "sequential mismatch" in (error.detail or ""):
                return (
                    "The sequential matching ablation flagged a reordering "
                    "that the default call-stack-ID strategy tolerates; use "
                    "match_strategy='callstack' (paper §5)."
                )
            return (
                "Mutable reinitialization could not complete control "
                "migration; inspect the startup log against the new "
                "version's startup code (paper §5)."
            )
        if error.origin == "tracing":
            if "type of conservatively-handled object changed" in str(error):
                return (
                    "The update changes the type of an object that mutable "
                    "tracing can only handle conservatively (it is the "
                    "target of likely pointers or has ambiguous type "
                    "information). Add an MCR_ADD_OBJ_HANDLER or an "
                    "encoded-pointer annotation so the object can be traced "
                    "precisely (paper §6: trade annotation effort against "
                    "update-induced transformations)."
                )
            if "no new-version counterpart" in str(error):
                return (
                    "Live state points to an object the new version no "
                    "longer defines (deleted global/type). The update needs "
                    "a state-transfer handler that migrates or drops this "
                    "state (paper §8: 793 LOC of ST code across updates)."
                )
            return (
                "Mutable tracing flagged a state object it cannot remap; "
                "add a traversal handler for it (paper §6)."
            )
    return f"Unrecognized failure ({type(error).__name__}): {error}"


def describe_update(result) -> str:
    """Render one UpdateResult as an operator-facing report."""
    lines = ["live update report", "=" * 19]
    status = "COMMITTED" if result.committed else "ROLLED BACK"
    lines.append(f"status: {status}")
    if result.failure_site:
        lines.append(f"failure site: {result.failure_site}")
    if result.retries:
        lines.append(f"quiescence retries: {result.retries}")
    if result.rolled_back:
        verdict = {
            True: "verified intact",
            False: "DIVERGED from checkpoint",
            None: "not checked",
        }[result.rollback_verified]
        lines.append(f"old-version fingerprint: {verdict}")
        if result.rollback_failed:
            lines.append(
                "rollback degraded: one or more rollback steps failed "
                "(see update.rollback_failed events)"
            )
    if result.blackbox_path:
        lines.append(f"black box: {result.blackbox_path}")
    lines.append(f"quiescence:        {ns_to_ms(result.quiescence_ns):8.2f} ms")
    lines.append(f"control migration: {ns_to_ms(result.control_migration_ns):8.2f} ms")
    lines.append(f"volatile restore:  {ns_to_ms(result.restore_ns):8.2f} ms")
    lines.append(f"state transfer:    {ns_to_ms(result.transfer_ns):8.2f} ms")
    lines.append(f"total:             {ns_to_ms(result.total_ns):8.2f} ms")
    if result.spans is not None:
        # The breakdown above is *derived from* this tree, so the two
        # views can never disagree.
        lines.append("")
        lines.append("phase timeline:")
        lines.extend("  " + line for line in render_tree(result.spans).splitlines())
    report = result.transfer_report
    if report is not None:
        lines.append("")
        lines.append(
            f"transfer: {len(report.per_process)} process pair(s), "
            f"{sum(s.objects_transferred for s in report.per_process)} objects "
            f"transferred, "
            f"{sum(s.objects_skipped_clean for s in report.per_process)} skipped "
            f"clean ({report.aggregate_reduction():.0%} of bytes)"
        )
        for stats in report.per_process:
            lines.append(
                f"  pid {stats.pid}: {stats.objects_traced} traced, "
                f"{stats.objects_transferred} transferred, "
                f"{stats.bytes_copied} B copied, "
                f"{stats.pointers_fixed} pointers fixed, "
                f"{stats.transforms} type transforms"
            )
    client = getattr(result, "client", None)
    if client is not None:
        summary = client.to_dict()
        lines.append("")
        lines.append("client-perceived:")
        lines.append(
            f"  latency: p50 {summary['p50_ms']:.2f} ms, "
            f"p95 {summary['p95_ms']:.2f} ms, "
            f"p99 {summary['p99_ms']:.2f} ms, "
            f"max {summary['max_ms']:.2f} ms "
            f"({summary['requests']} requests)"
        )
        lines.append(
            f"  blackout: {summary['blackout_ms']:.2f} ms "
            f"(budget {summary['downtime_budget_ms']:.0f} ms)"
        )
        lines.append(
            "  SLO: met" if summary["slo_ok"] else "  SLO: VIOLATED"
        )
    if result.error is not None:
        lines.append("")
        lines.append(f"failure: {result.error}")
        lines.append(f"advice:  {explain_conflict(result.error)}")
    return "\n".join(lines)
