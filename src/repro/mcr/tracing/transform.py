"""Cross-version type transformations (paper §6).

Given an old object with type T_old and its new-version counterpart typed
T_new, produce the new object's field contents:

* fields matched **by name**: value carried over (pointers via the address
  translation callback, scalars converted/truncated C-style);
* fields only in T_new: default-initialized (zero) — the ``new`` field of
  the paper's Figure 2;
* fields only in T_old: dropped;
* a same-name field whose type changed incompatibly (struct vs scalar,
  pointer vs non-pointer) is a conflict the caller must resolve with an
  object handler.

The transformer works on *decoded* values (the codec's dict/list/int
representation) so it composes with user traversal handlers, which receive
and may rewrite the same representation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConflictError
from repro.types.descriptors import (
    ArrayType,
    CharType,
    FuncType,
    IntType,
    OpaqueType,
    PointerType,
    StructType,
    TypeDesc,
    UnionType,
)

PointerTranslator = Callable[[int], int]


def default_value(type_: TypeDesc) -> Any:
    """The zero value of a type (used for fields new in this version)."""
    if isinstance(type_, (IntType, CharType, PointerType, FuncType)):
        return 0
    if isinstance(type_, StructType):
        return {f.name: default_value(f.type) for f in type_.fields}
    if isinstance(type_, ArrayType):
        if type_.is_opaque():
            return b"\x00" * type_.size
        return [default_value(type_.element) for _ in range(type_.count)]
    return b"\x00" * type_.size


def transform_value(
    old_type: TypeDesc,
    new_type: TypeDesc,
    value: Any,
    translate_pointer: PointerTranslator,
    subject: str = "<value>",
) -> Any:
    """Map a decoded old value onto the new type."""
    if isinstance(old_type, PointerType) and isinstance(new_type, PointerType):
        return translate_pointer(int(value))
    if isinstance(old_type, FuncType) and isinstance(new_type, FuncType):
        # Code addresses are never copied: the translator remaps them by
        # function symbol (or they dangle into the old text image).
        return translate_pointer(int(value)) if value else 0
    if isinstance(old_type, IntType) and isinstance(new_type, IntType):
        return value  # codec re-wraps on write
    if isinstance(old_type, CharType) and isinstance(new_type, CharType):
        return value
    if isinstance(old_type, StructType) and isinstance(new_type, StructType):
        return transform_struct(old_type, new_type, value, translate_pointer, subject)
    if isinstance(old_type, ArrayType) and isinstance(new_type, ArrayType):
        return _transform_array(old_type, new_type, value, translate_pointer, subject)
    if isinstance(old_type, (UnionType, OpaqueType)) and isinstance(
        new_type, (UnionType, OpaqueType)
    ):
        if new_type.size < old_type.size:
            raise ConflictError(
                "tracing", subject, "opaque region shrank; cannot transform blindly"
            )
        return bytes(value).ljust(new_type.size, b"\x00")
    raise ConflictError(
        "tracing",
        subject,
        f"incompatible retyping {old_type.name} -> {new_type.name}",
    )


def transform_struct(
    old_type: StructType,
    new_type: StructType,
    value: Dict[str, Any],
    translate_pointer: PointerTranslator,
    subject: str = "<struct>",
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for field in new_type.fields:
        if old_type.has_field(field.name):
            old_field = old_type.field(field.name)
            out[field.name] = transform_value(
                old_field.type,
                field.type,
                value[field.name],
                translate_pointer,
                subject=f"{subject}.{field.name}",
            )
        else:
            out[field.name] = default_value(field.type)
    return out


def _transform_array(
    old_type: ArrayType,
    new_type: ArrayType,
    value: Any,
    translate_pointer: PointerTranslator,
    subject: str,
) -> Any:
    if old_type.is_opaque() or new_type.is_opaque():
        data = bytes(value) if isinstance(value, (bytes, bytearray)) else bytes(value)
        if new_type.size < len(data):
            data = data[: new_type.size]
        return data.ljust(new_type.size, b"\x00")
    count = min(old_type.count, new_type.count)
    out = [
        transform_value(
            old_type.element,
            new_type.element,
            value[i],
            translate_pointer,
            subject=f"{subject}[{i}]",
        )
        for i in range(count)
    ]
    out.extend(default_value(new_type.element) for _ in range(new_type.count - count))
    return out


def types_compatible(old_type: TypeDesc, new_type: TypeDesc) -> bool:
    """Can ``transform_value`` map between these without a conflict?"""
    try:
        transform_value(old_type, new_type, default_value(old_type), lambda p: p)
        return True
    except ConflictError:
        return False
