"""Mutable tracing (paper §6).

A hybrid precise/conservative GC-style traversal of the old version's
memory, followed by state transfer into the new version:

* ``precise``      — typed pointer-slot enumeration from data-type tags;
* ``conservative`` — likely-pointer scanning of opaque regions;
* ``graph``        — object records, per-process address resolution, and
  the hybrid walk driver;
* ``invariants``   — immutability / nonupdatability assignment;
* ``dirty``        — soft-dirty-based dirty-object filtering;
* ``transform``    — cross-version type transformations;
* ``handlers``     — user traversal handlers (``MCR_ADD_OBJ_HANDLER``);
* ``transfer``     — the state-transfer engine (pairing, relocation,
  pointer fixup, parallel multiprocess accounting).
"""

from repro.mcr.tracing.graph import GraphBuilder, ObjectRecord, PointerSlot, TraceResult
from repro.mcr.tracing.dirty import DirtyFilter
from repro.mcr.tracing.invariants import apply_invariants
from repro.mcr.tracing.transfer import StateTransfer, TransferReport

__all__ = [
    "GraphBuilder",
    "ObjectRecord",
    "PointerSlot",
    "TraceResult",
    "DirtyFilter",
    "apply_invariants",
    "StateTransfer",
    "TransferReport",
]
