"""Dirty-page-incremental conservative scanning.

One live update traces every old-version process **twice**: once during
offline analysis (to compute the immutable set and the reallocation plan)
and once during state transfer.  Between the two sweeps the old tree is
quiesced — nothing writes its memory — so the second sweep's conservative
scans are byte-for-byte repeats of the first.  CRIU-style systems exploit
exactly this with page-granular incremental dumps (pre-dump + soft-dirty
tracking); the analogue here is a per-process **scan cache**:

* every ``scan_range`` result is remembered, keyed by ``(start, size)``,
  together with the ``PageTracker.write_seq`` at scan time;
* a repeated scan whose pages were **not** written since that sequence
  number (``range_written_since``) reuses the cached likely-pointer list
  and word count — identical output, none of the work;
* any write to an overlapping page, or any change to the process's
  resolution state (allocations, frees, tag churn, mapping changes — the
  *resolution fingerprint*), falls back to a full scan.  Correctness
  never depends on the cache; it is a pure memoization with a
  conservative validity test.

The sequencing lives beside, not inside, the soft-dirty bits: the
update-time dirty filter owns ``clear()``/``_dirty`` and must not be
perturbed by scan bookkeeping (see ``PageTracker.write_seq``).

Accounting note: a cache hit still reports the cached ``words_scanned``,
so the cost model charges identical virtual time and every Table 2/3 and
Figure 3 number is unchanged.  The savings are host wall time only —
which is what ``bench scanperf`` measures.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.mcr.tracing.conservative import LikelyPointer


class _CacheEntry:
    """One remembered scan: its result plus everything needed to trust it."""

    __slots__ = ("found", "words_scanned", "tracker", "seq")

    def __init__(self, found: List[LikelyPointer], words_scanned: int, tracker, seq: int) -> None:
        self.found = found
        self.words_scanned = words_scanned
        self.tracker = tracker
        self.seq = seq


def resolution_fingerprint(process) -> Tuple:
    """A cheap digest of everything address resolution depends on.

    If any component changes, a word that previously resolved may now
    miss (or vice versa) even though the scanned bytes are untouched —
    e.g. a freshly malloc'd chunk makes old integer words "resolve".
    The cache treats any fingerprint change as a full invalidation.
    """
    heap = process.heap
    tags = process.tags
    symbols = getattr(process, "symbols", None)
    space = process.space
    return (
        tags.register_count,
        len(tags),
        heap.malloc_count,
        heap.free_count,
        tuple(sorted(heap.reserved_ranges().items())),
        len(symbols) if symbols is not None else 0,
        tuple((m.base, m.size) for m in space.mappings(kind="lib")),
        sum(1 for _ in space.mappings()),
    )


class ScanCache:
    """Per-process memo of conservative ``scan_range`` results."""

    def __init__(self, process) -> None:
        self._process_ref = weakref.ref(process)
        self._entries: Dict[Tuple[int, int], _CacheEntry] = {}
        self._fingerprint: Optional[Tuple] = None
        self.hits = 0
        self.misses = 0
        self.words_skipped = 0

    def begin_round(self) -> None:
        """Start one trace sweep: revalidate against the live process.

        Any resolution-state drift since the previous sweep empties the
        cache (the conservative fallback the design requires).
        """
        process = self._process_ref()
        if process is None:  # pragma: no cover - process died under us
            self._entries.clear()
            return
        fingerprint = resolution_fingerprint(process)
        if fingerprint != self._fingerprint:
            self._entries.clear()
            self._fingerprint = fingerprint

    def lookup(self, start: int, size: int) -> Optional[Tuple[List[LikelyPointer], int]]:
        """The cached (found, words_scanned) if still valid, else None."""
        entry = self._entries.get((start, size))
        if entry is None:
            self.misses += 1
            return None
        process = self._process_ref()
        if process is None:  # pragma: no cover - process died under us
            return None
        mapping = process.space.mapping_at(start)
        if mapping is None or mapping.tracker is not entry.tracker:
            # Mapping replaced since the scan: never trust the entry.
            del self._entries[(start, size)]
            self.misses += 1
            return None
        if entry.tracker.range_written_since(start, size, entry.seq):
            del self._entries[(start, size)]
            self.misses += 1
            return None
        self.hits += 1
        self.words_skipped += entry.words_scanned
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("scan.cache_hits")
            collector.counters.incr("scan.words_from_cache", entry.words_scanned)
        return entry.found, entry.words_scanned

    def store(self, start: int, size: int, found: List[LikelyPointer], words_scanned: int) -> None:
        process = self._process_ref()
        if process is None:  # pragma: no cover - process died under us
            return
        mapping = process.space.mapping_at(start)
        if mapping is None:
            return
        self._entries[(start, size)] = _CacheEntry(
            found, words_scanned, mapping.tracker, mapping.tracker.write_seq
        )


class SharedScanCache:
    """Cross-process memo of conservative ``scan_range`` results.

    Rolling updates trace workers one batch at a time, but forked workers
    share their startup-time layout: the same read-only pages, the same
    allocator history up to the fork, the same tag registrations.  A scan
    of such a range in worker N+1 is byte-for-byte the scan already done
    in worker N, so the rolling controller threads one ``SharedScanCache``
    through every per-worker ``GraphBuilder``.

    Validity is self-evident from the key: ``(start, size, crc32 of the
    bytes, resolution fingerprint)``.  Conservative scan output is a pure
    function of the scanned bytes and the resolution state, so two
    processes with equal keys get equal results.  A hit still reports the
    cached ``words_scanned`` (identical virtual-time accounting); only
    host wall time is saved.  Whole-tree updates never construct one, so
    their counters stay byte-identical.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, Tuple[List[LikelyPointer], int]] = {}
        self._fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0
        self.words_skipped = 0

    def begin_process(self, process) -> None:
        """Cache the per-process fingerprint once per trace, not per range."""
        self._fingerprints[process] = resolution_fingerprint(process)

    def _key(self, process, start: int, size: int) -> Optional[Tuple]:
        import zlib

        try:
            data = process.space.view(start, size)
        except Exception:
            return None
        fingerprint = self._fingerprints.get(process)
        if fingerprint is None:
            fingerprint = resolution_fingerprint(process)
            self._fingerprints[process] = fingerprint
        return (start, size, zlib.crc32(bytes(data)), fingerprint)

    def lookup(self, process, start: int, size: int) -> Optional[Tuple[List[LikelyPointer], int]]:
        key = self._key(process, start, size)
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        found, words_scanned = entry
        self.hits += 1
        self.words_skipped += words_scanned
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("scan.shared_hits")
            collector.counters.incr("scan.words_from_shared", words_scanned)
        return found, words_scanned

    def store(self, process, start: int, size: int, found: List[LikelyPointer], words_scanned: int) -> None:
        key = self._key(process, start, size)
        if key is None:
            return
        self._entries[key] = (found, words_scanned)


# One cache per process, lifetime-tied to it (dies with the process).
_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def cache_for(process) -> ScanCache:
    """The process's scan cache, created on first use."""
    cache = _CACHES.get(process)
    if cache is None:
        cache = ScanCache(process)
        _CACHES[process] = cache
    return cache
