"""User traversal handlers: the ``MCR_ADD_OBJ_HANDLER`` machinery.

A traversal handler intervenes in the transfer of one object — the escape
hatch for everything mutable tracing cannot infer (paper §3/§6):

* pointers hidden behind special encodings (nginx stores metadata in the
  two least-significant bits of some pointers);
* semantic state transformations (e.g. re-deriving an index structure);
* objects whose bytes must be synthesized rather than copied.

The handler receives a ``TraversalContext`` and either leaves
``ctx.transformed`` as produced by the default transformer (possibly
editing it in place) or replaces it wholesale.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mcr.tracing.graph import ObjectRecord


class TraversalContext:
    """What an object handler sees during state transfer."""

    def __init__(
        self,
        record: ObjectRecord,
        old_value: Any,
        transformed: Any,
        translate_pointer: Callable[[int], int],
        old_type,
        new_type,
    ) -> None:
        self.record = record
        self.old_value = old_value
        self.transformed = transformed
        self.translate_pointer = translate_pointer
        self.old_type = old_type
        self.new_type = new_type
        self.skip = False  # handler may suppress the transfer entirely
        # Set by the transfer engine for typed objects: handlers doing
        # semantic transformations may need to read surrounding state.
        self.old_proc = None
        self.new_proc = None

    # -- helpers for common encodings --------------------------------------------

    def translate_tagged_pointer(self, word: int, tag_bits: int = 0x3) -> int:
        """Translate a pointer that hides metadata in its low bits.

        This is exactly the nginx case from the paper's evaluation: "22 LOC
        to annotate a number of global pointers using special data
        encoding — storing metadata in the 2 least significant bits".
        """
        tags = word & tag_bits
        address = word & ~tag_bits
        if address == 0:
            return word
        return self.translate_pointer(address) | tags

    def replace(self, value: Any) -> None:
        self.transformed = value

    def suppress(self) -> None:
        self.skip = True
