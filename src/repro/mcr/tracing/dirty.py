"""Dirty-object filtering from soft-dirty page bits (paper §6).

Soft-dirty bits were cleared when startup completed; at update time the
bits tell us which pages were written since.  An object is *dirty* when any
page overlapping its extent is dirty.  Clean objects reachable through the
graph were (by definition) fully reinitialized by the new version's own
startup code and are skipped by state transfer — the 68–86% reduction the
paper reports.

Page granularity makes the filter conservative in the safe direction: a
clean object sharing a page with a dirty one is transferred redundantly,
never the other way around.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.process import Process
from repro.mcr.tracing.graph import ObjectRecord, TraceResult


class DirtyFilter:
    """Classify traced objects of one process as dirty or clean."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.pages_scanned = 0

    def is_dirty(self, record: ObjectRecord) -> bool:
        size = max(record.size, 1)
        self.pages_scanned += (size + 4095) // 4096
        return self.process.space.range_dirty(record.base, size)

    def partition(self, result: TraceResult) -> Tuple[List[ObjectRecord], List[ObjectRecord]]:
        """Split the graph into (dirty, clean) object lists."""
        dirty: List[ObjectRecord] = []
        clean: List[ObjectRecord] = []
        for record in result.objects.values():
            (dirty if self.is_dirty(record) else clean).append(record)
        return dirty, clean

    def reduction_stats(self, result: TraceResult) -> Dict[str, float]:
        """Dirty/clean split over *transferable* state.

        Shared-library objects are excluded: they are never transferred by
        default (the new version reinitializes library state itself), so
        counting them would inflate the dirty-tracking reduction.
        """
        dirty, clean = self.partition(result)
        dirty = [o for o in dirty if o.region != "lib"]
        clean = [o for o in clean if o.region != "lib"]
        total_bytes = sum(o.size for o in dirty) + sum(o.size for o in clean) or 1
        clean_bytes = sum(o.size for o in clean)
        return {
            "objects_total": len(dirty) + len(clean),
            "objects_dirty": len(dirty),
            "objects_clean": len(clean),
            "bytes_total": total_bytes,
            "bytes_clean": clean_bytes,
            "reduction": clean_bytes / total_bytes,
        }
