"""Invariant assignment for traced objects (paper §6).

The conservative analysis derives two invariants:

* **immutability** — the object cannot be relocated in the new version
  (it must reappear at the same virtual address);
* **nonupdatability** — the object cannot be type-transformed (a type
  change detected for it is a conflict).

Rules applied here (the graph walk already set target/container flags as
likely pointers were found):

1. likely-pointer targets: immutable + nonupdatable;
2. likely-pointer containers: nonupdatable;
3. conservatively-traversed objects (no usable type information):
   immutable — their interior pointers cannot be fixed up precisely, so
   the bytes must stay put — and nonupdatable;
4. shared-library objects: immutable (the prelinked image is remapped at
   the same base; its state is not transformed).

The resulting immutable set feeds the offline relink step: pinned static
symbols, library bases, and heap superobject spans for global reallocation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mcr.tracing.graph import REGION_DYNAMIC, REGION_LIB, REGION_STATIC, TraceResult


def apply_invariants(result: TraceResult) -> TraceResult:
    """Finalize immutability/nonupdatability over a built graph."""
    for record in result.objects.values():
        if record.conservatively_traversed:
            record.immutable = True
            record.nonupdatable = True
        if record.region == REGION_LIB:
            record.immutable = True
            record.nonupdatable = True
    return result


def immutable_static_symbols(result: TraceResult) -> List[str]:
    """Names of immutable static objects (to pin via linker script)."""
    names: List[str] = []
    for record in result.objects.values():
        if record.immutable and record.region == REGION_STATIC and record.name:
            names.append(record.name)
    return names


def immutable_heap_spans(result: TraceResult) -> List[Tuple[int, int]]:
    """(address, size) spans of immutable dynamic objects (superobjects)."""
    spans: List[Tuple[int, int]] = []
    heap = result.process.heap
    for record in result.objects.values():
        if not record.immutable or record.region != REGION_DYNAMIC:
            continue
        chunk = heap.find_chunk(record.base)
        if chunk is not None:
            # Reserve the whole chunk (header included) so the new heap
            # cannot interleave allocations with the superobject.
            spans.append((chunk.base, chunk.total_size))
        else:
            spans.append((record.base, record.size))
    return spans


def invariant_counts(result: TraceResult) -> Dict[str, int]:
    records = list(result.objects.values())
    return {
        "objects": len(records),
        "immutable": sum(1 for r in records if r.immutable),
        "nonupdatable": sum(1 for r in records if r.nonupdatable),
        "conservative": sum(1 for r in records if r.conservatively_traversed),
    }
