"""Span-coalescing memory writer for the transfer engine.

``codec.write_value`` emits one small ``write_bytes`` per leaf field — a
struct with forty scalar members costs forty mapping lookups, forty slice
assignments, and forty page-tracker updates to materialize one object.
:class:`SpanWriter` sits between the codec and the destination address
space (it satisfies the same ``MemoryView`` protocol) and coalesces every
run of contiguous writes into a single span, emitted with one real
``write_bytes`` (one slice assignment + one ``note_write``).

Correctness is positional, not semantic: a write that is not exactly
adjacent to the pending span flushes the span first, so the destination
receives the same bytes in the same order as the per-word path —
byte-for-byte identical final memory, identical dirty-page transitions
(the union of bytes written is unchanged), property-tested in
``tests/test_scan_vectorized.py``.
"""

from __future__ import annotations

from repro import obs


class SpanWriter:
    """Coalesce contiguous ``write_bytes`` calls into bulk spans."""

    __slots__ = ("_space", "_start", "_buf", "writes_absorbed", "spans_emitted", "bytes_written")

    def __init__(self, space) -> None:
        self._space = space
        self._start: int = 0
        self._buf: bytearray = bytearray()
        self.writes_absorbed = 0
        self.spans_emitted = 0
        self.bytes_written = 0

    # -- MemoryView protocol ------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        # Reads bypass coalescing; the codec's write path never reads back
        # what it wrote, so no flush is needed for consistency here.
        return self._space.read_bytes(address, size)

    def write_bytes(self, address: int, data: bytes) -> None:
        self.writes_absorbed += 1
        buf = self._buf
        if buf and address == self._start + len(buf):
            buf += data
            return
        self.flush()
        self._start = address
        self._buf = bytearray(data)

    # -- span emission ------------------------------------------------------------

    def flush(self) -> None:
        """Emit the pending span (if any) as one real write."""
        if not self._buf:
            return
        self._space.write_bytes(self._start, bytes(self._buf))
        self.spans_emitted += 1
        self.bytes_written += len(self._buf)
        self._buf = bytearray()

    def close(self) -> None:
        """Flush and publish span-level counters to the active collector."""
        self.flush()
        collector = obs.ACTIVE
        if collector is None:
            return
        counters = collector.counters
        counters.incr("transfer.span_writes_absorbed", self.writes_absorbed)
        counters.incr("transfer.spans_emitted", self.spans_emitted)
        counters.incr("transfer.span_bytes", self.bytes_written)
