"""Precise tracing support: what a data-type tag lets us see.

Given a type descriptor, classify every byte of the object into:

* **typed pointer slots** — offsets the tracer follows precisely;
* **opaque ranges**       — unions, char arrays, embedded opaque members:
  handed to the conservative scanner;
* **integer-word slots**  — pointer-sized integers, which the default
  run-time policy also treats as opaque words ("pointers as integers",
  paper §6/§7).

The classification is purely structural; policy (whether int64s are
scanned) is applied by the caller from ``MCRConfig``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.types.descriptors import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    TypeDesc,
    UnionType,
    OpaqueType,
    WORD_SIZE,
)


def pointer_slots(type_: TypeDesc) -> List[Tuple[int, PointerType]]:
    """Typed pointer offsets within a value of ``type_``."""
    return list(type_.pointer_offsets())


def opaque_ranges(type_: TypeDesc) -> List[Tuple[int, int]]:
    """(offset, size) ranges precise tracing cannot interpret."""
    if type_.is_opaque():
        return [(0, type_.size)]
    if isinstance(type_, (StructType, ArrayType)):
        return list(type_.opaque_ranges())
    return []


def _int_word_offsets(type_: TypeDesc, base: int = 0) -> Iterator[int]:
    if isinstance(type_, IntType) and type_.size == WORD_SIZE:
        yield base
        return
    if isinstance(type_, StructType):
        for field in type_.fields:
            yield from _int_word_offsets(field.type, base + field.offset)
        return
    if isinstance(type_, ArrayType) and not type_.is_opaque():
        for index in range(type_.count):
            yield from _int_word_offsets(type_.element, base + index * type_.element.size)


def int_word_slots(type_: TypeDesc) -> List[int]:
    """Offsets of pointer-sized integers (policy-dependent opaque words)."""
    return list(_int_word_offsets(type_))


def is_fully_precise(type_: TypeDesc) -> bool:
    """True when the type exposes no opaque bytes at all."""
    return not opaque_ranges(type_) and not isinstance(type_, (UnionType, OpaqueType))
