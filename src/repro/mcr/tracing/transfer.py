"""The state-transfer engine (paper §6).

For each quiesced new-version process, paired with its old-version
counterpart by creation-time call-stack ID:

1. **Trace** the old process (hybrid precise/conservative graph).
2. **Filter** by soft-dirty bits: clean mutable objects were already
   reinitialized by the new version's startup code and are skipped.
3. **Pair & allocate**: statics by symbol name; startup-time dynamic
   objects by allocation-site call-stack ID (they were re-created by
   mutable reinitialization); immutable objects by identity (their
   superobjects were pre-reserved); remaining dirty dynamic objects are
   freshly allocated in the new heap with the *new* type.
4. **Copy & transform**: typed objects go through the type transformer
   with pointer translation; conservatively-traversed objects are copied
   verbatim (their likely-pointer targets are immutable, so their bytes
   remain valid); nonupdatable objects whose type changed raise a
   conflict unless a user object handler resolves it.

The engine accounts every work item against ``TransferCostModel`` so the
update-time evaluation (Figure 3) is deterministic: total virtual time =
coordinator bring-up + serial per-process channel setup + the *max* of
per-process work (state transfer parallelizes across the hierarchy).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.clock import ns_to_ms
from repro.errors import ConflictError, StateTransferError
from repro.kernel.process import Process
from repro.mcr.config import MCRConfig, TransferCostModel
from repro.mcr.faults import fire
from repro.mcr.tracing.dirty import DirtyFilter
from repro.mcr.tracing.graph import (
    GraphBuilder,
    ObjectRecord,
    REGION_DYNAMIC,
    REGION_LIB,
    REGION_STATIC,
    TraceResult,
)
from repro.mcr.tracing.handlers import TraversalContext
from repro.mcr.tracing.invariants import apply_invariants
from repro.mcr.tracing.spans import SpanWriter
from repro.mcr.tracing.transform import transform_value
from repro.mem.tags import ORIGIN_HEAP
from repro.types import codec
from repro.types.descriptors import TypeDesc


class ProcessTransferStats:
    """Work-item counts for one process pair."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.objects_traced = 0
        self.objects_transferred = 0
        self.objects_skipped_clean = 0
        self.bytes_copied = 0
        self.pointers_fixed = 0
        self.transforms = 0
        self.words_scanned = 0
        self.pages_scanned = 0
        self.reduction = 0.0
        self.bytes_traced_total = 0
        self.bytes_clean = 0

    def work_ns(self, cost: TransferCostModel) -> int:
        return (
            self.objects_traced * cost.per_object_visit_ns
            + self.bytes_copied * cost.per_byte_copy_ns
            + self.pointers_fixed * cost.per_pointer_fixup_ns
            + self.transforms * cost.per_transform_ns
            + self.words_scanned * cost.per_likely_scan_word_ns
            + self.pages_scanned * cost.per_page_scan_ns
        )


class TransferReport:
    """Aggregate outcome of one state transfer."""

    def __init__(self) -> None:
        self.per_process: List[ProcessTransferStats] = []
        self.trace_results: Dict[int, TraceResult] = {}
        self.total_ns = 0
        self.conflicts: List[str] = []

    def total_ms(self) -> float:
        return ns_to_ms(self.total_ns)

    # Publishes through ``obs`` under "transfer.<field>".
    _PUBLISHED_FIELDS = (
        "objects_traced",
        "objects_transferred",
        "objects_skipped_clean",
        "bytes_copied",
        "pointers_fixed",
        "transforms",
        "words_scanned",
        "pages_scanned",
    )

    def publish(self) -> None:
        """Feed aggregate work-item counts into the active collector."""
        collector = obs.ACTIVE
        if collector is None:
            return
        for field in self._PUBLISHED_FIELDS:
            collector.counters.incr(
                "transfer." + field,
                sum(getattr(s, field) for s in self.per_process),
            )
        collector.counters.incr("transfer.processes", len(self.per_process))
        collector.counters.incr("transfer.conflicts", len(self.conflicts))

    def serial_total_ns(self, cost) -> int:
        """What the transfer would cost WITHOUT cross-process parallelism
        (ablation of the paper's "parallel state transfer strategy")."""
        base = cost.base_coordination_ns
        base += len(self.per_process) * cost.process_channel_setup_ns
        return base + sum(s.work_ns(cost) for s in self.per_process)

    def aggregate_table2(self) -> Dict[str, Dict[str, int]]:
        keys = (
            "ptr",
            "src_static",
            "src_dynamic",
            "src_lib",
            "targ_static",
            "targ_dynamic",
            "targ_lib",
        )
        out = {
            "precise": {k: 0 for k in keys},
            "likely": {k: 0 for k in keys},
        }
        for result in self.trace_results.values():
            row = result.table2_row()
            for kind in ("precise", "likely"):
                for key in keys:
                    out[kind][key] += row[kind][key]
        return out

    def mean_reduction(self) -> float:
        if not self.per_process:
            return 0.0
        return sum(s.reduction for s in self.per_process) / len(self.per_process)

    def aggregate_reduction(self) -> float:
        """Fraction of traced *bytes* skipped as clean, across the tree
        (the paper's 68-86% figure is state-weighted, not per-process)."""
        total = sum(s.bytes_traced_total for s in self.per_process)
        clean = sum(s.bytes_clean for s in self.per_process)
        return clean / total if total else 0.0


class _AddressIndex:
    """Containing-object lookup over a trace result."""

    def __init__(self, result: TraceResult) -> None:
        self._bases = sorted(result.objects)
        self._objects = result.objects

    def find(self, address: int) -> Optional[ObjectRecord]:
        index = bisect.bisect_right(self._bases, address) - 1
        # Objects can nest (tagged sub-objects inside a container block):
        # prefer the innermost (closest base), walking back as needed.
        while index >= 0:
            record = self._objects[self._bases[index]]
            if record.base <= address < record.end:
                return record
            if record.end <= address and record.base + (1 << 24) < address:
                break  # far past any plausible container
            index -= 1
        return None


class StateTransfer:
    """Transfer state from an old (quiesced) tree to a new one."""

    def __init__(
        self,
        old_root: Process,
        new_root: Process,
        new_program,
        config: Optional[MCRConfig] = None,
        cost: Optional[TransferCostModel] = None,
        use_dirty_filter: bool = True,
        only_processes: Optional[List[Process]] = None,
        shared_cache=None,
        include_base_cost: bool = True,
    ) -> None:
        self.old_root = old_root
        self.new_root = new_root
        self.new_program = new_program
        self.config = config or MCRConfig()
        self.cost = cost or TransferCostModel()
        # Ablation switch: with dirty filtering off, every paired mutable
        # object is transferred (what a non-incremental MCR would do).
        self.use_dirty_filter = use_dirty_filter
        # Rolling updates transfer one worker batch at a time: restrict
        # the pairing to this subset of old processes, share conservative
        # scan results across the batches, and charge the coordinator
        # bring-up only once (with the first batch).
        self.only_processes = set(only_processes) if only_processes is not None else None
        self.shared_cache = shared_cache
        self.include_base_cost = include_base_cost
        self.report = TransferReport()

    # -- top level -----------------------------------------------------------------

    def run(self) -> TransferReport:
        pairs = self.pair_processes()
        process_work_ns: List[int] = []
        for old_proc, new_proc in pairs:
            stats = self._transfer_process(old_proc, new_proc)
            self.report.per_process.append(stats)
            process_work_ns.append(stats.work_ns(self.cost))
        total = self.cost.base_coordination_ns if self.include_base_cost else 0
        total += len(pairs) * self.cost.process_channel_setup_ns
        total += max(process_work_ns) if process_work_ns else 0
        self.report.total_ns = total
        self.report.publish()
        return self.report

    def pair_processes(self) -> List[Tuple[Process, Process]]:
        """Match old/new processes by creation-time call-stack ID.

        pids were forced to match during mutable reinitialization, so the
        pid is checked as a secondary invariant.
        """
        new_by_stack: Dict[int, List[Process]] = {}
        for process in self.new_root.tree():
            new_by_stack.setdefault(process.creation_stack_id, []).append(process)
        pairs: List[Tuple[Process, Process]] = []
        old_procs = [
            p
            for p in self.old_root.tree()
            if self.only_processes is None or p in self.only_processes
        ]
        for old_proc in old_procs:
            candidates = new_by_stack.get(old_proc.creation_stack_id, [])
            match = None
            for candidate in candidates:
                if candidate.pid == old_proc.pid:
                    match = candidate
                    break
            if match is None and candidates:
                match = candidates[0]
            if match is None:
                raise StateTransferError(
                    f"no new-version counterpart for process {old_proc.name} "
                    f"(pid {old_proc.pid}, stack {'/'.join(old_proc.creation_stack)})"
                )
            candidates.remove(match)
            pairs.append((old_proc, match))
        return pairs

    # -- per-process transfer -----------------------------------------------------------

    def _transfer_process(self, old_proc: Process, new_proc: Process) -> ProcessTransferStats:
        stats = ProcessTransferStats(old_proc.pid)
        annotations = getattr(self.new_program, "annotations", None)
        trace = apply_invariants(
            GraphBuilder(
                old_proc,
                self.config,
                annotations=annotations,
                shared_cache=self.shared_cache,
            ).build()
        )
        self.report.trace_results[old_proc.pid] = trace
        stats.objects_traced = len(trace.objects)
        stats.words_scanned = trace.words_scanned
        dirty_filter = DirtyFilter(old_proc)
        reduction = dirty_filter.reduction_stats(trace)
        stats.pages_scanned = dirty_filter.pages_scanned
        stats.reduction = reduction["reduction"]
        stats.bytes_traced_total = reduction["bytes_total"]
        stats.bytes_clean = reduction["bytes_clean"]
        index = _AddressIndex(trace)
        # Pass 1: pair every traced object with a new-version address.
        addr_map, to_transfer = self._pair_objects(trace, old_proc, new_proc, dirty_filter, stats)

        def translate(old_ptr: int) -> int:
            if old_ptr == 0:
                return 0
            record = index.find(old_ptr)
            if record is None:
                raise ConflictError(
                    "tracing", f"0x{old_ptr:x}", "pointer into untraced memory"
                )
            new_base = addr_map.get(record.base)
            if new_base is None:
                raise ConflictError(
                    "tracing",
                    record.name or f"0x{record.base:x}",
                    "pointer to an object with no new-version counterpart",
                )
            stats.pointers_fixed += 1
            return new_base + (old_ptr - record.base)

        # Pass 2: copy/transform contents.
        for record in to_transfer:
            self._transfer_object(record, addr_map[record.base], old_proc, new_proc, translate, stats)
        return stats

    def _pair_objects(
        self,
        trace: TraceResult,
        old_proc: Process,
        new_proc: Process,
        dirty_filter: DirtyFilter,
        stats: ProcessTransferStats,
    ) -> Tuple[Dict[int, int], List[ObjectRecord]]:
        addr_map: Dict[int, int] = {}
        to_transfer: List[ObjectRecord] = []
        new_symbols = getattr(new_proc, "symbols", None)
        startup_pool = self._startup_pool(new_proc)
        stack_pool = self._stack_pool(new_proc)
        for record in trace.objects.values():
            dirty = dirty_filter.is_dirty(record) if self.use_dirty_filter else True
            if record.immutable:
                # Identity mapping; contents always refreshed (the new
                # version never re-created these bytes at this address).
                addr_map[record.base] = record.base
                to_transfer.append(record)
                continue
            if record.region == REGION_STATIC and record.name:
                if new_symbols is not None and record.name in new_symbols:
                    symbol = new_symbols.lookup(record.name)
                    addr_map[record.base] = symbol.address
                    if dirty:
                        to_transfer.append(record)
                    else:
                        stats.objects_skipped_clean += 1
                # Deleted globals stay unmapped; a pointer reaching one
                # later raises a conflict (the update dropped live state).
                continue
            if record.region == REGION_DYNAMIC and record.startup:
                counterpart = self._pop_startup_match(startup_pool, record)
                if counterpart is not None:
                    addr_map[record.base] = counterpart
                    if dirty:
                        to_transfer.append(record)
                    else:
                        stats.objects_skipped_clean += 1
                    continue
                # No startup counterpart (the new version no longer
                # allocates it): fall through to fresh reallocation.
            if record.region == REGION_STATIC and not record.name:
                # Stack variable (tracked via overlay metadata).
                counterpart = self._pop_stack_match(stack_pool, record, old_proc)
                if counterpart is not None:
                    addr_map[record.base] = counterpart
                    if dirty:
                        to_transfer.append(record)
                    else:
                        stats.objects_skipped_clean += 1
                continue
            # Mutable dynamic object: reallocate in the new heap with the
            # new version's type.
            new_type = self._new_type_for(record)
            address = new_proc.heap.malloc(new_type.size)
            new_proc.tags.register(address, new_type, ORIGIN_HEAP, site=record.site)
            addr_map[record.base] = address
            to_transfer.append(record)
        return addr_map, to_transfer

    def _transfer_object(
        self,
        record: ObjectRecord,
        new_base: int,
        old_proc: Process,
        new_proc: Process,
        translate,
        stats: ProcessTransferStats,
    ) -> None:
        # Per-object injection points: nth-hit arming picks which object's
        # copy (memory fault) or reallocation (allocator fault) dies.
        fire(self.config, "transfer.memory")
        fire(self.config, "transfer.allocator")
        annotations = getattr(self.new_program, "annotations", None)
        if record.region == REGION_LIB and not self.config.transfer_shared_libs:
            # Library state is reinitialized by the new version itself.
            return
        old_type = record.type
        new_type = self._new_type_for(record)
        type_changed = (
            old_type is not None and old_type.signature() != new_type.signature()
        )
        handler = None
        if annotations is not None:
            handler = annotations.obj_handler_for(
                record.name, old_type.name if old_type else ""
            )
        if record.nonupdatable and type_changed and handler is None:
            conflict = ConflictError(
                "tracing",
                record.name or f"0x{record.base:x}",
                f"type of conservatively-handled object changed "
                f"({old_type.name}); annotation required",
            )
            self.report.conflicts.append(str(conflict))
            raise conflict
        if old_type is None or record.conservatively_traversed:
            if record.gap_ranges is not None:
                # Container block with precisely-traced sub-objects: copy
                # only the untagged gaps; the sub-objects transfer through
                # their own (typed) records.
                for gap_offset, gap_size in record.gap_ranges:
                    data = old_proc.space.read_bytes(record.base + gap_offset, gap_size)
                    new_proc.space.write_bytes(new_base + gap_offset, data)
                    stats.bytes_copied += gap_size
                stats.objects_transferred += 1
                return
            # Verbatim copy: targets of its interior pointers are immutable.
            data = old_proc.space.read_bytes(record.base, record.size)
            if handler is not None:
                context = TraversalContext(record, data, data, translate, old_type, new_type)
                handler.handler(context)
                if context.skip:
                    return
                data = bytes(context.transformed)
            new_proc.space.write_bytes(new_base, data)
            stats.bytes_copied += record.size
            stats.objects_transferred += 1
            return
        if annotations is not None and record.name in annotations.encoded_pointers:
            # Re-encode an annotated tagged pointer: translate the address
            # bits of the leading word, preserve the metadata bits and any
            # trailing buffer content.
            mask = annotations.encoded_pointers[record.name]
            data = bytearray(old_proc.space.read_bytes(record.base, record.size))
            word = int.from_bytes(data[:8], "little")
            address = word & ~mask
            if address:
                word = translate(address) | (word & mask)
            data[:8] = word.to_bytes(8, "little")
            new_proc.space.write_bytes(new_base, bytes(data))
            stats.bytes_copied += record.size
            stats.objects_transferred += 1
            return
        old_value = codec.read_value(old_proc.space, record.base, old_type)
        transformed = transform_value(
            old_type,
            new_type,
            old_value,
            translate,
            subject=record.name or old_type.name,
        )
        if type_changed:
            stats.transforms += 1
        if handler is not None:
            context = TraversalContext(
                record, old_value, transformed, translate, old_type, new_type
            )
            context.old_proc = old_proc
            context.new_proc = new_proc
            handler.handler(context)
            if context.skip:
                return
            transformed = context.transformed
        # Batched emission: the codec's per-leaf-field writes coalesce into
        # contiguous spans, so one object lands in O(spans) real writes.
        writer = SpanWriter(new_proc.space)
        codec.write_value(writer, new_base, new_type, transformed)
        writer.close()
        stats.bytes_copied += new_type.size
        stats.objects_transferred += 1

    # -- pairing pools ---------------------------------------------------------------------

    def _startup_pool(self, new_proc: Process) -> Dict[str, List[int]]:
        """New-version startup allocations, FIFO per allocation site.

        Includes instrumented custom-allocator (region) objects: their
        containing block is a startup heap chunk, and their tag carries
        the allocation-site call stack just like a malloc's.
        """
        pool: Dict[str, List[int]] = {}
        for origin in (ORIGIN_HEAP, "region"):
            for tag in new_proc.tags.tags(origin=origin):
                chunk = new_proc.heap.find_chunk(tag.address)
                if chunk is not None and chunk.startup:
                    pool.setdefault(tag.site, []).append(tag.address)
        for addresses in pool.values():
            addresses.sort()
        return pool

    def _pop_startup_match(self, pool: Dict[str, List[int]], record: ObjectRecord) -> Optional[int]:
        site = record.tag.site if record.tag is not None else record.site
        addresses = pool.get(site)
        if addresses:
            return addresses.pop(0)
        return None

    def _stack_pool(self, new_proc: Process) -> Dict[Tuple[int, str], int]:
        """New-version stack variables keyed by (thread class, var name)."""
        pool: Dict[Tuple[int, str], int] = {}
        crt = getattr(new_proc, "crt", None)
        if crt is None:
            return pool
        for thread in new_proc.live_threads():
            area = crt._stacks.get(thread.tid)
            if area is None:
                continue
            for name, address, _type in area.overlay:
                pool[(thread.creation_stack_id, name)] = address
        return pool

    def _pop_stack_match(
        self, pool: Dict[Tuple[int, str], int], record: ObjectRecord, old_proc: Process
    ) -> Optional[int]:
        if record.tag is None or not record.tag.name:
            return None
        crt = getattr(old_proc, "crt", None)
        if crt is None:
            return None
        for thread in old_proc.live_threads():
            area = crt._stacks.get(thread.tid)
            if area is None:
                continue
            for name, address, _type in area.overlay:
                if address == record.base:
                    return pool.get((thread.creation_stack_id, name))
        return None

    # -- helpers ----------------------------------------------------------------------------

    def _new_type_for(self, record: ObjectRecord) -> TypeDesc:
        if record.type is None:
            from repro.types.descriptors import OpaqueType

            return OpaqueType(record.size)
        new_type = self.new_program.types.get(record.type.name)
        return new_type if new_type is not None else record.type
