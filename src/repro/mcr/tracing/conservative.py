"""Conservative tracing: likely-pointer scanning of opaque memory.

"MCR operates similarly to a conservative garbage collector, scanning
opaque (i.e., type-ambiguous) memory areas looking for likely pointers —
that is, aligned memory words that point to a valid live object in
memory" (§6).  Two refinements from the paper are implemented:

* when the pointed-to object carries a data-type tag, unaligned candidates
  (with respect to the target's alignment) are rejected;
* interior pointers are accepted and recorded as such (the offset into the
  target is preserved at fixup time).

The scanner never *writes*; it only reports candidate words.  Resolution
of a word to a live object is delegated to the caller's ``resolve``
callable so the same scanner serves heap chunks, region blocks, statics,
and library areas.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.mem.address_space import AddressSpace
from repro.types.descriptors import WORD_SIZE


class LikelyPointer:
    """One aligned word that resolves to a live object."""

    __slots__ = ("slot_address", "value", "target_base", "interior")

    def __init__(self, slot_address: int, value: int, target_base: int, interior: bool) -> None:
        self.slot_address = slot_address
        self.value = value
        self.target_base = target_base
        self.interior = interior

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "interior" if self.interior else "base"
        return f"<LikelyPointer @0x{self.slot_address:x} -> 0x{self.value:x} ({kind})>"


def scan_range(
    space: AddressSpace,
    start: int,
    size: int,
    resolve: Callable[[int], Optional[Tuple[int, int, Optional[int]]]],
) -> Tuple[List[LikelyPointer], int]:
    """Scan ``[start, start+size)`` for likely pointers.

    ``resolve(value)`` returns ``(target_base, target_size, target_align)``
    when ``value`` falls inside a live object (``target_align`` of ``None``
    means no tag — accept any alignment), else ``None``.

    Returns the likely pointers found and the number of words scanned
    (cost-model input).
    """
    found: List[LikelyPointer] = []
    # Words must themselves be aligned in memory.
    first = (start + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE
    end = start + size
    words_scanned = 0
    cursor = first
    while cursor + WORD_SIZE <= end:
        value = space.read_word(cursor)
        words_scanned += 1
        cursor += WORD_SIZE
        if value == 0:
            continue
        resolved = resolve(value)
        if resolved is None:
            continue
        target_base, _target_size, target_align = resolved
        if target_align is not None and (value - target_base) % target_align != 0:
            # Tag-assisted rejection of illegal (unaligned) candidates.
            continue
        found.append(
            LikelyPointer(cursor - WORD_SIZE, value, target_base, value != target_base)
        )
    return found, words_scanned


def scan_words(
    space: AddressSpace,
    offsets: Iterator[int],
    base: int,
    resolve: Callable[[int], Optional[Tuple[int, int, Optional[int]]]],
) -> Tuple[List[LikelyPointer], int]:
    """Scan specific word offsets (the pointer-sized-integer policy)."""
    found: List[LikelyPointer] = []
    words_scanned = 0
    for offset in offsets:
        slot = base + offset
        value = space.read_word(slot)
        words_scanned += 1
        if value == 0:
            continue
        resolved = resolve(value)
        if resolved is None:
            continue
        target_base, _target_size, target_align = resolved
        if target_align is not None and (value - target_base) % target_align != 0:
            continue
        found.append(LikelyPointer(slot, value, target_base, value != target_base))
    return found, words_scanned
